"""Storage-mode resolution and pin-policy coercion."""

import pytest

from repro.storage import PinPolicy, resolve_storage_mode
from repro.storage.stats import STORAGE_MODE_ENV, StorageStats


class TestResolveStorageMode:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(STORAGE_MODE_ENV, "mapped")
        assert resolve_storage_mode("ram") == "ram"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(STORAGE_MODE_ENV, "mapped")
        assert resolve_storage_mode(None) == "mapped"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(STORAGE_MODE_ENV, raising=False)
        assert resolve_storage_mode(None) == "auto"

    def test_empty_environment_value_means_auto(self, monkeypatch):
        monkeypatch.setenv(STORAGE_MODE_ENV, "")
        assert resolve_storage_mode(None) == "auto"

    def test_case_and_whitespace_are_forgiven(self):
        assert resolve_storage_mode(" MAPPED ") == "mapped"

    @pytest.mark.parametrize("bad", ["disk", "lazy", "0", "true"])
    def test_unknown_mode_raises(self, bad):
        with pytest.raises(ValueError, match="unknown storage mode"):
            resolve_storage_mode(bad)

    def test_bad_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv(STORAGE_MODE_ENV, "sideways")
        with pytest.raises(ValueError, match="unknown storage mode"):
            resolve_storage_mode(None)


class TestPinPolicy:
    def test_defaults(self):
        policy = PinPolicy()
        assert policy.nodes == 64
        assert policy.terms == 16

    def test_coerce_none_gives_defaults(self):
        assert PinPolicy.coerce(None) == PinPolicy()

    def test_coerce_dict(self):
        policy = PinPolicy.coerce({"nodes": 4, "terms": 1})
        assert (policy.nodes, policy.terms) == (4, 1)

    def test_coerce_passthrough(self):
        policy = PinPolicy(nodes=7)
        assert PinPolicy.coerce(policy) is policy

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="pin counts"):
            PinPolicy(nodes=-1)

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError, match="pin_policy"):
            PinPolicy.coerce(42)


class TestStorageStats:
    def test_counters_accumulate(self):
        stats = StorageStats(mode="mapped", path="x")
        stats.note_row(3)
        stats.note_row(0)
        stats.note_postings(5)
        assert stats.row_faults == 2
        assert stats.posting_faults == 1
        assert stats.resident_bytes == (
            3 * StorageStats.EDGE_ESTIMATE + 5 * StorageStats.POSTING_ESTIMATE
        )

    def test_snapshot_is_json_safe_and_complete(self):
        stats = StorageStats(mode="mapped", path="p")
        stats.mapped_bytes = 10
        view = stats.snapshot()
        assert view["mode"] == "mapped"
        assert view["path"] == "p"
        assert view["mapped_bytes"] == 10
        assert set(view) == {
            "mode", "path", "mapped_bytes", "row_faults", "posting_faults",
            "pinned_nodes", "pinned_terms", "pinned_bytes", "resident_bytes",
        }
