"""Unit + property tests for per-query accounting primitives:
fingerprints, the explain store, and the space-saving workload sketch.

The property suite pins the sketch's three counter invariants —
``true <= est``, ``est - err <= true``, and absent keys bounded by
``absent_bound()`` — across arbitrary streams *and* arbitrary replica
splits folded back with :func:`merge_sketch_exports`, because the
supervisor's ``/debug/queries`` is exactly that merge.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.accounting import (
    ExplainStore,
    SpaceSavingSketch,
    WorkloadAnalytics,
    merge_sketch_exports,
    query_fingerprint,
)


class TestFingerprint:
    def test_term_order_folded_away(self):
        assert query_fingerprint(["paper", "stream"]) == query_fingerprint(
            ["stream", "paper"]
        )

    def test_case_and_whitespace_folded_away(self):
        assert query_fingerprint(["Paper", " stream "]) == query_fingerprint(
            ["paper", "stream"]
        )

    def test_algorithm_distinguishes(self):
        assert query_fingerprint(
            ["a"], algorithm="bidirectional"
        ) != query_fingerprint(["a"], algorithm="si-backward")

    def test_params_distinguish(self):
        assert query_fingerprint(["a"], params={"k": 5}) != query_fingerprint(
            ["a"], params={"k": 10}
        )

    def test_human_scannable_shape(self):
        fingerprint = query_fingerprint(
            ["stream", "paper"], algorithm="bidirectional"
        )
        algorithm, terms, digest = fingerprint.split("|")
        assert algorithm == "bidirectional"
        assert terms == "paper stream"
        assert len(digest) == 8

    def test_string_query_kept_whole(self):
        assert query_fingerprint("paper stream").split("|")[1] == "paper stream"


class TestExplainStore:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            ExplainStore(0)

    def test_put_get_roundtrip(self):
        store = ExplainStore(4)
        store.put("req-1", {"canonical": {"algorithm": "bidirectional"}})
        assert store.get("req-1") == {
            "canonical": {"algorithm": "bidirectional"}
        }
        assert store.get("unknown") is None

    def test_keeps_last_n(self):
        store = ExplainStore(3)
        for i in range(5):
            store.put(f"req-{i}", {"i": i})
        assert len(store) == 3
        assert store.ids() == ["req-2", "req-3", "req-4"]
        assert store.get("req-0") is None
        assert store.get("req-4") == {"i": 4}

    def test_rewrite_refreshes_recency(self):
        store = ExplainStore(2)
        store.put("a", {})
        store.put("b", {})
        store.put("a", {"v": 2})  # refreshed: "b" is now the oldest
        store.put("c", {})
        assert store.get("b") is None
        assert store.get("a") == {"v": 2}


class TestSketchUnit:
    def test_exact_under_capacity(self):
        sketch = SpaceSavingSketch(8)
        for key, count in [("a", 3), ("b", 1)]:
            for _ in range(count):
                sketch.offer(key, elapsed=0.5, costs={"pops_in": 10})
        (top, second) = sketch.top()
        assert top == {
            "key": "a",
            "count": 3,
            "error": 0,
            "elapsed_total": pytest.approx(1.5),
            "costs": {"pops_in": 30},
        }
        assert second["key"] == "b"
        assert sketch.total == 4
        assert sketch.absent_bound() == 0  # not full: absent means zero seen

    def test_eviction_inherits_victim_count(self):
        sketch = SpaceSavingSketch(2)
        for _ in range(5):
            sketch.offer("a")
        sketch.offer("b")
        sketch.offer("c")  # evicts "b" (min est 1): c enters with est 2
        assert "b" not in sketch
        (entry,) = [row for row in sketch.top() if row["key"] == "c"]
        assert entry["count"] == 2
        assert entry["error"] == 1
        assert sketch.absent_bound() >= 1

    def test_export_roundtrip(self):
        sketch = SpaceSavingSketch(4)
        sketch.offer("a", elapsed=0.25, costs={"heap_ops": 7})
        restored = SpaceSavingSketch.from_dict(sketch.to_dict())
        assert restored.to_dict() == sketch.to_dict()

    def test_merge_sums_aggregates(self):
        left, right = SpaceSavingSketch(4), SpaceSavingSketch(4)
        left.offer("a", elapsed=1.0, costs={"pops_in": 5})
        right.offer("a", elapsed=2.0, costs={"pops_in": 7, "pops_out": 1})
        right.offer("b")
        left.merge(right)
        assert left.total == 3
        (a_row,) = [row for row in left.top() if row["key"] == "a"]
        assert a_row["count"] == 2
        assert a_row["elapsed_total"] == pytest.approx(3.0)
        assert a_row["costs"] == {"pops_in": 12, "pops_out": 1}

    def test_merge_exports_empty(self):
        merged = merge_sketch_exports([])
        assert merged["total"] == 0
        assert merged["entries"] == []

    def test_analytics_is_locked_facade(self):
        analytics = WorkloadAnalytics(capacity=4)
        analytics.record("fp", elapsed=0.1, costs={"pops_in": 2})
        export = analytics.export()
        assert export["total"] == 1
        assert analytics.top(1)[0]["key"] == "fp"


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
KEYS = st.sampled_from([f"q{i}" for i in range(12)])
streams = st.lists(KEYS, min_size=0, max_size=120)


def _check_invariants(sketch_dict: dict, true_counts: Counter) -> None:
    tracked = {row["key"]: row for row in sketch_dict["entries"]}
    assert sketch_dict["total"] == sum(true_counts.values())
    absent_bound = max(
        [sketch_dict["floor"]]
        + ([min(row["count"] for row in tracked.values())] if len(tracked) >= sketch_dict["capacity"] else [])
    )
    for key, true in true_counts.items():
        row = tracked.get(key)
        if row is None:
            assert true <= absent_bound, (
                f"{key}: true {true} > absent bound {absent_bound}"
            )
        else:
            assert true <= row["count"], f"{key}: underestimated"
            assert row["count"] - row["error"] <= true, f"{key}: bad error bound"
    # No phantom mass: a tracked key never existed in no stream at all
    # unless it inherited an eviction floor (error covers it).
    for key, row in tracked.items():
        assert true_counts.get(key, 0) >= row["count"] - row["error"]


class TestSketchProperties:
    @settings(max_examples=150, deadline=None)
    @given(stream=streams, capacity=st.integers(min_value=1, max_value=6))
    def test_single_sketch_invariants(self, stream, capacity):
        sketch = SpaceSavingSketch(capacity)
        for key in stream:
            sketch.offer(key)
        _check_invariants(sketch.to_dict(), Counter(stream))

    @settings(max_examples=150, deadline=None)
    @given(
        stream=streams,
        cuts=st.lists(st.integers(min_value=0), min_size=0, max_size=3),
        capacity=st.integers(min_value=1, max_value=6),
    )
    def test_merged_replica_invariants(self, stream, cuts, capacity):
        """Split the stream across replicas, sketch each independently,
        fold the exports — the fleet view keeps every guarantee."""
        bounds = sorted(cut % (len(stream) + 1) for cut in cuts)
        replicas, start = [], 0
        for cut in bounds + [len(stream)]:
            replicas.append(stream[start:cut])
            start = cut
        exports = []
        for part in replicas:
            sketch = SpaceSavingSketch(capacity)
            for key in part:
                sketch.offer(key)
            exports.append(sketch.to_dict())
        _check_invariants(merge_sketch_exports(exports), Counter(stream))

    @settings(max_examples=100, deadline=None)
    @given(stream=streams, capacity=st.integers(min_value=1, max_value=6))
    def test_merge_matches_single_stream_total_and_heaviest(
        self, stream, capacity
    ):
        """Merging per-replica sketches never loses a heavy hitter that
        a single sketch of the whole stream would have kept: any key
        whose true count exceeds the merged absent bound is tracked."""
        half = len(stream) // 2
        exports = []
        for part in (stream[:half], stream[half:]):
            sketch = SpaceSavingSketch(capacity)
            for key in part:
                sketch.offer(key)
            exports.append(sketch.to_dict())
        merged = merge_sketch_exports(exports)
        tracked = {row["key"] for row in merged["entries"]}
        bound = max(
            [merged["floor"]]
            + (
                [min(row["count"] for row in merged["entries"])]
                if len(merged["entries"]) >= merged["capacity"]
                else []
            )
        )
        for key, true in Counter(stream).items():
            if true > bound:
                assert key in tracked, (
                    f"heavy hitter {key} (true {true} > bound {bound}) lost"
                )
