"""FIG5: the sample-query table (paper Figure 5).

Ten queries across the three datasets, each mirroring the origin-size
profile and relevant-answer size of a paper query (DQ1..UQ5).  Real
terms differ (synthetic data), so each profile is instantiated by the
workload generator as a band combination; for every query we report the
paper's columns: MI/SI output-time ratio, SI/Bidir nodes-explored /
nodes-touched / generation-time / output-time ratios, absolute SI and
Bidirectional times, and the Sparse-LB time with its CN count.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    Bench,
    Report,
    build_bench,
    fmt,
    run_measured,
    safe_ratio,
    workload_rng,
)
from repro.sparse.sparse_search import SparseSearch
from repro.workload.generator import WorkloadQuery

__all__ = ["QUERY_PROFILES", "run_fig5"]

#: (query id, dataset, band combo, relevant answer size) mirroring the
#: paper's Figure 5 rows: e.g. DQ1 pairs a nearly unique author with a
#: frequent title word; DQ9 is a 6-keyword query with 4 rare terms.
QUERY_PROFILES: tuple[tuple[str, str, tuple[str, ...], int], ...] = (
    ("DQ1", "dblp", ("T", "L"), 3),
    ("DQ3", "dblp", ("T", "S"), 5),
    ("DQ5", "dblp", ("S", "L", "L", "L"), 3),
    ("DQ7", "dblp", ("T", "T", "L", "L"), 5),
    ("DQ9", "dblp", ("T", "T", "T", "T", "L", "L"), 7),
    ("IQ1", "imdb", ("T", "M", "L"), 3),
    ("IQ2", "imdb", ("T", "S", "L"), 7),
    ("UQ1", "patents", ("T", "L"), 2),
    ("UQ3", "patents", ("S", "S"), 3),
    ("UQ5", "patents", ("S", "L"), 3),
)

#: Band downgrade chain used when a combo cannot be instantiated on a
#: small scaled dataset (e.g. no Medium terms co-occurring).
_DOWNGRADE = {"L": "M", "M": "S", "S": "T", "T": "T"}


def _sample_profile(
    bench: Bench, combo: tuple[str, ...], result_size: int, seed: int
) -> Optional[WorkloadQuery]:
    rng = workload_rng(seed)
    attempt = tuple(combo)
    for _ in range(4):
        query = bench.generator.sample_query(
            rng,
            n_keywords=len(attempt),
            result_size=result_size,
            band_combo=attempt,
        )
        if query is not None:
            return query
        attempt = tuple(_DOWNGRADE[code] for code in attempt)
    return None


def run_fig5(*, scale: float = 0.4, seed: int = 100) -> Report:
    report = Report(
        experiment="FIG5",
        title="Bidirectional vs Backward search on sample queries",
        headers=[
            "query",
            "#kw nodes",
            "rel",
            "size",
            "MI/SI time",
            "SI/Bidir expl",
            "SI/Bidir touch",
            "gen time r",
            "out time r",
            "SI s",
            "Bidir s",
            "Sparse-LB s (#CN)",
        ],
    )
    sparse_cache: dict[str, SparseSearch] = {}
    for offset, (qid, dataset, combo, result_size) in enumerate(QUERY_PROFILES):
        bench = build_bench(dataset, scale)
        query = _sample_profile(bench, combo, result_size, seed + offset)
        if query is None:
            report.rows.append([qid] + ["-"] * (len(report.headers) - 1))
            continue
        relevant_count, points = run_measured(
            bench,
            query.keywords,
            ("mi-backward", "si-backward", "bidirectional"),
            result_size=result_size,
        )
        mi = points.get("mi-backward")
        si = points.get("si-backward")
        bi = points.get("bidirectional")

        sparse = sparse_cache.get(dataset)
        if sparse is None:
            sparse = SparseSearch(bench.db)
            sparse_cache[dataset] = sparse
        # CN enumeration cost grows combinatorially with network size;
        # capping at 5 keeps this a (smaller) lower bound, consistent
        # with the paper reporting Sparse in *minutes* on large-CN rows.
        sparse_out = sparse.lower_bound_time(
            list(query.keywords), relevant_size=min(result_size, 5)
        )

        report.rows.append(
            [
                f"{qid} {' '.join(query.keywords)}"[:40],
                "(" + ",".join(str(s) for s in query.origin_sizes) + ")",
                fmt(relevant_count),
                fmt(result_size),
                fmt(safe_ratio(mi.out_time if mi else None, si.out_time if si else None)),
                fmt(safe_ratio(si.out_pops if si else None, bi.out_pops if bi else None)),
                fmt(
                    safe_ratio(
                        si.out_touched if si else None, bi.out_touched if bi else None
                    )
                ),
                fmt(safe_ratio(si.gen_time if si else None, bi.gen_time if bi else None)),
                fmt(safe_ratio(si.out_time if si else None, bi.out_time if bi else None)),
                fmt(si.out_time if si else None, 3),
                fmt(bi.out_time if bi else None, 3),
                f"{fmt(sparse_out.elapsed, 3)} ({sparse_out.num_networks})",
            ]
        )
    report.notes.append(
        "ratios > 1 mean the left algorithm is slower, as in the paper; "
        "absolute seconds are pure-Python on scaled-down synthetic data"
    )
    report.notes.append(
        "paper: MI/SI 2.7-16.7x; SI/Bidir nodes explored up to ~25x, "
        "out-time 1.2-18.5x; Sparse-LB slower than Bidir on all rows"
    )
    return report
