"""Public facade: keyword search over a graph + index pair.

Ties together the search graph, the inverted index, the scorer and the
three algorithms behind one call::

    engine = KeywordSearchEngine.from_database(db)
    result = engine.search("gray transaction", algorithm="bidirectional")

Query syntax: whitespace-separated keywords; double quotes group a
multi-word keyword (the paper's DQ1 ``"David Fernandez" parametric``),
which matches nodes containing *all* of its words.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Optional, Sequence, Union

from repro.core.answer import SearchResult
from repro.core.backward_mi import BackwardExpandingSearch
from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.cancellation import CancellationToken
from repro.core.exhaustive import exhaustive_answers
from repro.core.params import SearchParams
from repro.core.scoring import Scorer
from repro.errors import EmptyQueryError, KeywordNotFoundError
from repro.index.tokenizer import tokenize
from repro.telemetry.trace import current_span, use_span

__all__ = ["KeywordSearchEngine", "parse_query", "ALGORITHMS"]

#: Short stage names used in span labels (``expand[bidir]``).
_SPAN_ALGO = {
    "bidirectional": "bidir",
    "si-backward": "si",
    "mi-backward": "mi",
}

_QUERY_TOKEN_RE = re.compile(r'"([^"]*)"|(\S+)')

#: Algorithm name -> search class.
ALGORITHMS = {
    "bidirectional": BidirectionalSearch,
    "si-backward": SingleIteratorBackwardSearch,
    "mi-backward": BackwardExpandingSearch,
}


def parse_query(query: Union[str, Sequence[str]]) -> tuple[str, ...]:
    """Split a query string into keywords, honouring double quotes.

    A sequence of keywords passes through unchanged (stripped).
    """
    if isinstance(query, str):
        keywords = [
            quoted if quoted else bare
            for quoted, bare in _QUERY_TOKEN_RE.findall(query)
        ]
    else:
        keywords = [str(keyword) for keyword in query]
    keywords = [keyword.strip() for keyword in keywords if keyword.strip()]
    if not keywords:
        raise EmptyQueryError("query contains no keywords")
    return tuple(keywords)


class KeywordSearchEngine:
    """Search facade over a frozen graph and its keyword index.

    The graph and index never change after construction ("index is
    frozen"), so the engine memoizes derived state freely: scorers per
    ``lambda`` and resolved keyword sets per query string.  Both caches
    are lock-protected — :meth:`search_many` and the service layer run
    searches from many threads against one engine.
    """

    #: Bound on the resolve cache; far above any benchmark's distinct
    #: query count, small enough to never matter for memory.
    _RESOLVE_CACHE_SIZE = 4096

    def __init__(self, graph, index, *, params: Optional[SearchParams] = None) -> None:
        self.graph = graph
        self.index = index
        self.params = params if params is not None else SearchParams()
        self.scorer = Scorer(graph, self.params.lam)
        self._cache_lock = threading.Lock()
        self._scorers: dict[float, Scorer] = {self.params.lam: self.scorer}
        self._resolve_cache: "OrderedDict[tuple, tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    @classmethod
    def from_database(
        cls,
        db,
        *,
        params: Optional[SearchParams] = None,
        compute_prestige: bool = True,
    ) -> "KeywordSearchEngine":
        """Build graph, prestige and index from a relational database."""
        from repro.graph.builder import build_search_graph
        from repro.index.inverted import build_index

        graph = build_search_graph(db, compute_prestige=compute_prestige)
        index = build_index(db, graph)
        return cls(graph, index, params=params)

    # ------------------------------------------------------------------
    def resolve(
        self, query: Union[str, Sequence[str]]
    ) -> tuple[tuple[str, ...], list[frozenset[int]]]:
        """Parse the query and resolve each keyword to its node set ``S_i``.

        A multi-word keyword matches the intersection of its words'
        postings.  Raises :class:`KeywordNotFoundError` for a keyword
        with no matches (AND semantics admit no answer then).

        Resolutions are cached (LRU, successful lookups only): the index
        is frozen, so a keyword's node set can never change and no
        invalidation is needed — repeated queries skip index lookups
        entirely.
        """
        keywords = parse_query(query)
        with self._cache_lock:
            hit = self._resolve_cache.get(keywords)
            if hit is not None:
                self._resolve_cache.move_to_end(keywords)
                return keywords, list(hit)
        keyword_sets: list[frozenset[int]] = []
        for keyword in keywords:
            words = list(tokenize(keyword))
            if not words:
                raise KeywordNotFoundError(keyword)
            nodes = self.index.lookup(words[0])
            for word in words[1:]:
                nodes = nodes & self.index.lookup(word)
            if not nodes:
                raise KeywordNotFoundError(keyword)
            keyword_sets.append(frozenset(nodes))
        with self._cache_lock:
            self._resolve_cache[keywords] = tuple(keyword_sets)
            self._resolve_cache.move_to_end(keywords)
            while len(self._resolve_cache) > self._RESOLVE_CACHE_SIZE:
                self._resolve_cache.popitem(last=False)
        return keywords, keyword_sets

    def origin_sizes(self, query: Union[str, Sequence[str]]) -> tuple[int, ...]:
        """Per-keyword origin-set sizes (the paper's "#Keyword nodes")."""
        _, keyword_sets = self.resolve(query)
        return tuple(len(nodes) for nodes in keyword_sets)

    # ------------------------------------------------------------------
    def search(
        self,
        query: Union[str, Sequence[str]],
        *,
        algorithm: str = "bidirectional",
        k: Optional[int] = None,
        params: Optional[SearchParams] = None,
        token: Optional[CancellationToken] = None,
        explain: bool = False,
    ) -> SearchResult:
        """Run a keyword search and return its :class:`SearchResult`.

        Parameters
        ----------
        query:
            Query string or keyword sequence.
        algorithm:
            One of ``"bidirectional"``, ``"si-backward"``,
            ``"mi-backward"``.
        k:
            Top-k override (defaults to ``params.max_results``).
        params:
            Full parameter override for this call.
        token:
            Optional :class:`CancellationToken`, ticked once per pop:
            a deadline or an explicit :meth:`~CancellationToken.cancel`
            stops the search at its next check, which returns the
            bound-certified answers released so far with
            ``complete=False`` (never raises).
        explain:
            When True the search collects a sampled expansion timeline
            and the result carries a structured explain report
            (``result.explain``) — seed resolution, scheduling
            decisions, per-answer score decompositions and the cost
            vector; see :mod:`repro.telemetry.accounting`.
        """
        try:
            search_cls = ALGORITHMS[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{sorted(ALGORITHMS)}"
            ) from None
        run_params = params if params is not None else self.params
        if k is not None:
            run_params = run_params.with_(max_results=k)
        parent = current_span()
        if parent is None:
            keywords, keyword_sets = self.resolve(query)
            search = search_cls(
                self.graph,
                keywords,
                keyword_sets,
                params=run_params,
                scorer=self.scorer_for(run_params.lam),
                token=token,
            )
            search.stats.resolve_hits = sum(len(s) for s in keyword_sets)
            if explain:
                search.enable_explain()
            result = search.run()
            if explain:
                result.explain = self._explain_report(
                    search, result, keywords, keyword_sets, run_params
                )
            return result
        return self._traced_search(
            parent, search_cls, query, algorithm, run_params, token, explain
        )

    def _explain_report(
        self, search, result, keywords, keyword_sets, run_params
    ) -> dict:
        from repro.telemetry.accounting import build_explain_report

        return build_explain_report(
            result=result,
            keywords=keywords,
            keyword_sets=keyword_sets,
            params=run_params,
            graph=self.graph,
            timeline=search.explain_events,
        )

    def _traced_search(
        self, parent, search_cls, query, algorithm, run_params, token, explain=False
    ) -> SearchResult:
        """The engine-stage spans: ``resolve`` → ``expand[...]`` →
        ``emit`` as children of the ambient span.

        The ``emit`` span is synthesized from the time the search spent
        scoring and releasing answers — emission interleaves with
        expansion, so it is an accumulated duration, not a wall-clock
        interval.
        """
        resolve_span = parent.child("resolve")
        try:
            keywords, keyword_sets = self.resolve(query)
        except BaseException:
            resolve_span.end(status="error")
            raise
        resolve_span.set_attributes(
            {
                "keywords": len(keywords),
                "origin_nodes": sum(len(nodes) for nodes in keyword_sets),
            }
        )
        resolve_span.end()
        expand_span = parent.child(
            f"expand[{_SPAN_ALGO.get(algorithm, algorithm)}]"
        )
        try:
            with use_span(expand_span):
                search = search_cls(
                    self.graph,
                    keywords,
                    keyword_sets,
                    params=run_params,
                    scorer=self.scorer_for(run_params.lam),
                    token=token,
                )
                search.stats.resolve_hits = sum(len(s) for s in keyword_sets)
                if explain:
                    search.enable_explain()
                result = search.run()
        except BaseException:
            expand_span.end(status="error")
            raise
        expand_span.end()
        if explain:
            result.explain = self._explain_report(
                search, result, keywords, keyword_sets, run_params
            )
        emit_span = parent.child("emit")
        emit_span.set_attributes(
            {
                "answers_generated": result.stats.answers_generated,
                "answers_output": result.stats.answers_output,
                "duplicates_discarded": result.stats.duplicates_discarded,
            }
        )
        emit_span.end(duration=float(getattr(search, "emit_seconds", 0.0)))
        return result

    def scorer_for(self, lam: float) -> Scorer:
        """The memoized :class:`Scorer` for ``lam``.

        Scorers are immutable once built (graph and ``max_prestige`` are
        frozen), so one per distinct ``lambda`` serves every call — an
        ablation sweeping ``lam`` no longer rebuilds a scorer per query.
        """
        with self._cache_lock:
            scorer = self._scorers.get(lam)
            if scorer is None:
                scorer = self._scorers[lam] = Scorer(self.graph, lam)
            return scorer

    # ------------------------------------------------------------------
    def search_many(
        self,
        queries: Sequence[Union[str, Sequence[str]]],
        *,
        algorithm: str = "bidirectional",
        k: Optional[int] = None,
        params: Optional[SearchParams] = None,
        max_workers: int = 8,
        timeout: Optional[float] = None,
    ) -> list[SearchResult]:
        """Run many queries through the service-layer batch executor.

        A convenience wrapper building a throwaway single-engine
        :class:`~repro.service.QueryService` (uncached, so semantics
        match sequential :meth:`search` calls exactly) and fanning the
        queries over its thread pool.  Results come back in query order;
        any per-query failure (absent keyword, deadline) re-raises here,
        matching :meth:`search`.  Long-lived callers wanting caching,
        metrics and structured errors should hold a
        :class:`~repro.service.QueryService` directly.
        """
        from repro.service.service import QueryRequest, QueryService

        service = QueryService(max_workers=max_workers)
        try:
            service.register_engine("default", self)
            responses = service.search_many(
                [
                    QueryRequest(
                        dataset="default",
                        query=query if isinstance(query, str) else tuple(query),
                        algorithm=algorithm,
                        k=k,
                        params=params,
                        timeout=timeout,
                        use_cache=False,
                    )
                    for query in queries
                ]
            )
        finally:
            # Don't join deadline-abandoned searches: a timeout must
            # bound the caller's wall clock, not just relabel the error.
            service.close(wait=False)
        return [response.raise_for_error().result for response in responses]

    # ------------------------------------------------------------------
    def constrained(self, policy) -> "KeywordSearchEngine":
        """An engine over an edge-policy view of the graph (paper
        Section 1: restrict or prioritize search paths by edge type).

        ``policy`` is an :class:`~repro.graph.policy.EdgePolicy` or any
        callable ``(src_table, dst_table, is_forward) -> multiplier|None``.
        The keyword index, prestige and parameters are shared.
        """
        from repro.graph.policy import apply_edge_policy

        view = apply_edge_policy(self.graph, policy)
        return KeywordSearchEngine(view, self.index, params=self.params)

    # ------------------------------------------------------------------
    def near(
        self,
        query: Union[str, Sequence[str]],
        *,
        k: Optional[int] = 10,
        node_budget: int = 1000,
        mu: Optional[float] = None,
    ):
        """Near query (paper footnote 6): rank individual nodes by
        aggregated spreading activation from the query keywords.

        Returns a :class:`~repro.core.near.NearResult` whose ranking
        pairs node ids with proximity scores.
        """
        from repro.core.near import NearSearch

        _, keyword_sets = self.resolve(query)
        search = NearSearch(
            self.graph,
            keyword_sets,
            mu=mu if mu is not None else self.params.mu,
            node_budget=node_budget,
        )
        return search.run(k)

    # ------------------------------------------------------------------
    def exhaustive(
        self,
        query: Union[str, Sequence[str]],
        *,
        max_results: Optional[int] = None,
        max_edge_score: Optional[float] = None,
        token: Optional[CancellationToken] = None,
    ):
        """Oracle enumeration of every answer (small graphs only).

        A fired ``token`` raises
        :class:`~repro.errors.SearchCancelledError` — a half-enumerated
        ground truth has no partial-answer semantics.
        """
        _, keyword_sets = self.resolve(query)
        return exhaustive_answers(
            self.graph,
            keyword_sets,
            self.scorer,
            max_results=max_results,
            max_edge_score=max_edge_score,
            token=token,
        )
