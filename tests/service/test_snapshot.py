"""Snapshot format: round-trip fidelity, versioning, corruption handling."""

import json

import numpy as np
import pytest

from repro.core.engine import KeywordSearchEngine
from repro.errors import SnapshotError
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, Schema, Table
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    load_engine,
    load_snapshot,
    save_engine,
    save_snapshot,
    snapshot_info,
)


@pytest.fixture
def toy_snapshot(toy_engine, tmp_path):
    path = tmp_path / "toy.snap"
    save_engine(path, toy_engine)
    return path


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_graph_structure_is_identical(self, toy_engine, toy_snapshot):
        graph, _ = load_snapshot(toy_snapshot)
        original = toy_engine.graph
        assert graph.num_nodes == original.num_nodes
        assert graph.num_forward_edges == original.num_forward_edges
        assert graph.num_edges == original.num_edges
        for node in original.nodes():
            # Edge *order* matters: search iteration order feeds
            # tie-breaking, so restored adjacency must match verbatim.
            assert graph.out_edges(node) == original.out_edges(node)
            assert graph.in_edges(node) == original.in_edges(node)
            assert graph.label(node) == original.label(node)
            assert graph.table(node) == original.table(node)
            assert graph.ref(node) == original.ref(node)
            assert graph.in_inv_weight_sum(node) == original.in_inv_weight_sum(node)
            assert graph.out_inv_weight_sum(node) == original.out_inv_weight_sum(node)

    def test_prestige_is_bit_identical(self, toy_engine, toy_snapshot):
        graph, _ = load_snapshot(toy_snapshot)
        np.testing.assert_array_equal(graph.prestige, toy_engine.graph.prestige)

    def test_index_answers_identically(self, toy_engine, toy_snapshot):
        _, index = load_snapshot(toy_snapshot)
        original = toy_engine.index
        assert index.vocabulary_size() == original.vocabulary_size()
        assert sorted(index.terms()) == sorted(original.terms())
        for term in original.terms():
            assert index.lookup(term) == original.lookup(term)
        # Relation-name matches survive too.
        assert index.lookup("paper") == original.lookup("paper")
        assert index.terms_by_frequency() == original.terms_by_frequency()

    def test_ref_lookup_and_pk_types_survive(self, toy_engine, toy_snapshot):
        graph, _ = load_snapshot(toy_snapshot)
        node = toy_engine.graph.node_by_ref("author", 1)
        assert graph.node_by_ref("author", 1) == node
        assert graph.ref(node) == ("author", 1)
        assert isinstance(graph.ref(node)[1], int)

    @pytest.mark.parametrize("algorithm", ["bidirectional", "si-backward", "mi-backward"])
    def test_topk_results_identical_per_algorithm(
        self, toy_engine, toy_snapshot, algorithm
    ):
        restored = load_engine(toy_snapshot)
        for query in ("gray transaction", "selinger vldb", '"jim gray" sigmod'):
            base = toy_engine.search(query, algorithm=algorithm, k=5)
            again = restored.search(query, algorithm=algorithm, k=5)
            assert again.scores() == base.scores()
            assert again.signatures() == base.signatures()
            assert [t.root for t in again.trees()] == [t.root for t in base.trees()]
            assert [t.paths for t in again.trees()] == [t.paths for t in base.trees()]

    def test_topk_identical_on_synthetic_dblp(self, dblp_small_engine, tmp_path):
        path = tmp_path / "dblp.snap"
        save_engine(path, dblp_small_engine)
        restored = load_engine(path)
        term, _ = dblp_small_engine.index.terms_by_frequency()[10]
        query = (term, "paper")
        base = dblp_small_engine.search(query, k=10)
        again = restored.search(query, k=10)
        assert again.scores() == base.scores()
        assert again.signatures() == base.signatures()

    def test_string_primary_keys(self, tmp_path):
        schema = Schema(
            tables=(
                Table("person", ("id", "name"), text_columns=("name",)),
                Table("likes", ("id", "who"), pk="id"),
            ),
            foreign_keys=(ForeignKey("likes", "who", "person"),),
        )
        db = Database(schema)
        db.insert_many("person", [{"id": "p1", "name": "Ada"}, {"id": "p2", "name": "Alan"}])
        db.insert_many("likes", [{"id": "l1", "who": "p1"}, {"id": "l2", "who": "p2"}])
        engine = KeywordSearchEngine.from_database(db)
        path = tmp_path / "str.snap"
        save_engine(path, engine)
        graph, _ = load_snapshot(path)
        node = graph.node_by_ref("person", "p1")
        assert graph.ref(node) == ("person", "p1")
        assert isinstance(graph.ref(node)[1], str)


# ----------------------------------------------------------------------
# file format
# ----------------------------------------------------------------------
class TestVersionAndDigest:
    """The live-update fields: epoch version + deterministic digest."""

    def test_default_version_and_digest_present(self, toy_snapshot):
        info = snapshot_info(toy_snapshot)
        assert info["dataset_version"] == 0
        assert isinstance(info["content_digest"], str)
        assert len(info["content_digest"]) == 64  # sha256 hex

    def test_explicit_version_round_trips(self, toy_engine, tmp_path):
        path = save_engine(tmp_path / "v7.snap", toy_engine, version=7)
        assert snapshot_info(path)["dataset_version"] == 7

    def test_digest_is_content_not_file_identity(self, toy_engine, tmp_path):
        """Two saves of the same state digest identically (the reload
        no-op depends on it), even across files and version stamps."""
        a = save_engine(tmp_path / "a.snap", toy_engine, version=1)
        b = save_engine(tmp_path / "b.snap", toy_engine, version=2)
        assert (
            snapshot_info(a)["content_digest"]
            == snapshot_info(b)["content_digest"]
        )

    def test_digest_changes_with_content(self, toy_engine, tmp_path):
        from repro.live import MutableDataset
        from repro.live.mutations import AddNode

        a = save_engine(tmp_path / "a.snap", toy_engine)
        dataset = MutableDataset.from_engine(toy_engine)
        dataset.mutate([AddNode(label="x", text="different now")])
        epoch = dataset.compact()
        b = save_snapshot(tmp_path / "b.snap", epoch.graph, epoch.index)
        assert (
            snapshot_info(a)["content_digest"]
            != snapshot_info(b)["content_digest"]
        )

    def test_pre_digest_snapshot_loads_and_reports_none(
        self, toy_snapshot, tmp_path
    ):
        """Files written before these fields existed stay readable."""
        import io
        import zipfile

        raw = toy_snapshot.read_bytes()
        stripped = tmp_path / "old.snap"
        with zipfile.ZipFile(io.BytesIO(raw)) as archive:
            meta = json.loads(
                np.load(io.BytesIO(archive.read("meta.npy"))).tobytes().decode()
            )
            meta.pop("dataset_version")
            meta.pop("content_digest")
            buffer = io.BytesIO()
            with zipfile.ZipFile(buffer, "w") as out:
                for name in archive.namelist():
                    if name == "meta.npy":
                        meta_buffer = io.BytesIO()
                        np.save(
                            meta_buffer,
                            np.frombuffer(
                                json.dumps(meta).encode("utf-8"), dtype=np.uint8
                            ),
                        )
                        out.writestr(name, meta_buffer.getvalue())
                    else:
                        out.writestr(name, archive.read(name))
        stripped.write_bytes(buffer.getvalue())
        info = snapshot_info(stripped)
        assert info["dataset_version"] is None
        assert info["content_digest"] is None
        graph, _ = load_snapshot(stripped)
        assert graph.num_nodes > 0

    def test_cli_info_prints_version_and_digest(self, toy_engine, tmp_path, capsys):
        from repro.service.snapshot import main

        path = save_engine(tmp_path / "cli.snap", toy_engine, version=3)
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dataset_version = 3" in out
        assert "content_digest = " in out


class TestFormat:
    def test_info(self, toy_engine, toy_snapshot):
        info = snapshot_info(toy_snapshot)
        assert info["version"] == SNAPSHOT_VERSION
        assert info["num_nodes"] == toy_engine.graph.num_nodes
        assert info["num_forward_edges"] == toy_engine.graph.num_forward_edges
        assert info["file_bytes"] > 0

    def test_save_returns_exact_path_no_npz_suffix(self, toy_engine, tmp_path):
        path = tmp_path / "plain-name-no-extension"
        written = save_engine(path, toy_engine)
        assert written == path
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="does not exist"):
            load_snapshot(tmp_path / "nope.snap")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.snap"
        path.write_bytes(b"this is not a snapshot")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_truncated_file(self, toy_snapshot, tmp_path):
        raw = toy_snapshot.read_bytes()
        truncated = tmp_path / "half.snap"
        truncated.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(truncated)

    def test_wrong_format_magic(self, tmp_path):
        path = tmp_path / "other.npz"
        meta = np.frombuffer(
            json.dumps({"format": "something-else", "version": 1}).encode(),
            dtype=np.uint8,
        )
        np.savez(path, meta=meta)
        with pytest.raises(SnapshotError, match="format"):
            load_snapshot(path)

    def test_future_version_rejected(self, toy_engine, tmp_path, toy_snapshot):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode())
        meta["version"] = SNAPSHOT_VERSION + 1
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        future = tmp_path / "future.snap"
        with open(future, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(future)

    def test_out_of_range_node_ids_rejected(self, toy_snapshot, tmp_path):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["out_dst"] = arrays["out_dst"].copy()
        arrays["out_dst"][0] = 10_000  # beyond num_nodes
        bad = tmp_path / "bad-ids.snap"
        with open(bad, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="out-of-range node ids"):
            load_snapshot(bad)

    def test_negative_node_ids_rejected(self, toy_snapshot, tmp_path):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["in_src"] = arrays["in_src"].copy()
        arrays["in_src"][0] = -3  # would silently mis-index, not crash
        bad = tmp_path / "neg-ids.snap"
        with open(bad, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="out-of-range node ids"):
            load_snapshot(bad)

    def test_malformed_indptr_rejected(self, toy_snapshot, tmp_path):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["out_indptr"] = arrays["out_indptr"][:-2]
        bad = tmp_path / "bad-indptr.snap"
        with open(bad, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="malformed out_indptr"):
            load_snapshot(bad)

    def test_corrupt_postings_indptr_rejected(self, toy_snapshot, tmp_path):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["post_indptr"] = arrays["post_indptr"].copy()
        arrays["post_indptr"][1] = -4  # decreasing: would mis-slice silently
        bad = tmp_path / "bad-post.snap"
        with open(bad, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="malformed post_indptr"):
            load_snapshot(bad)

    def test_corrupt_postings_node_ids_rejected(self, toy_snapshot, tmp_path):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["rel_nodes"] = arrays["rel_nodes"].copy()
        arrays["rel_nodes"][0] = 10_000
        bad = tmp_path / "bad-rel.snap"
        with open(bad, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="out-of-range node ids in rel_nodes"):
            load_snapshot(bad)

    def test_corrupt_meta_lengths_raise_snapshot_error(self, toy_snapshot, tmp_path):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode())
        meta["tables"] = meta["tables"][:-1]  # one element short
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        bad = tmp_path / "bad-tables.snap"
        with open(bad, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="bad tables length"):
            load_snapshot(bad)

    def test_missing_arrays_rejected(self, toy_snapshot, tmp_path):
        with np.load(toy_snapshot) as archive:
            arrays = {name: archive[name] for name in archive.files}
        del arrays["prestige"]
        truncated = tmp_path / "truncated.snap"
        with open(truncated, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="missing arrays"):
            load_snapshot(truncated)

    def test_no_stale_tmp_file_left(self, toy_engine, tmp_path):
        path = tmp_path / "clean.snap"
        save_engine(path, toy_engine)
        leftovers = [p for p in tmp_path.iterdir() if p.name != "clean.snap"]
        assert leftovers == []

    def test_load_engine_applies_params(self, toy_snapshot):
        from repro.core.params import SearchParams

        engine = load_engine(toy_snapshot, params=SearchParams(max_results=3))
        assert engine.params.max_results == 3
        result = engine.search("gray transaction")
        assert len(result.answers) <= 3
