"""OutputHeap: buffering, duplicate discard, bounded release."""

import pytest

from repro.core.output_heap import OutputHeap

from tests.core.test_answer import make_tree


def add(heap, tree, pops=0):
    return heap.add(tree, generated_at=0.0, generated_pops=pops)


class TestAdd:
    def test_new_answers_buffered(self):
        heap = OutputHeap()
        assert add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.5)) == "new"
        assert len(heap) == 1

    def test_duplicate_rotation_discarded(self):
        heap = OutputHeap()
        add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.5))
        worse = make_tree(1, [(1, 0), (1, 0, 2)], score=0.3)
        assert add(heap, worse) == "duplicate"
        assert len(heap) == 1

    def test_better_rotation_replaces(self):
        heap = OutputHeap()
        add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.3))
        better = make_tree(1, [(1, 0), (1, 0, 2)], score=0.6)
        assert add(heap, better) == "improved"
        assert heap.peek_best_score() == pytest.approx(0.6)
        assert len(heap) == 1

    def test_released_signature_never_rebuffered(self):
        heap = OutputHeap()
        add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.5))
        list(heap.drain())
        again = make_tree(0, [(0, 1), (0, 2)], score=0.9)
        assert add(heap, again) == "duplicate"
        assert len(heap) == 0


class TestExactRelease:
    def test_releases_only_above_bound(self):
        heap = OutputHeap(mode="exact")
        add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.9))
        add(heap, make_tree(0, [(0, 1), (0, 3)], score=0.4))
        released = list(heap.pop_ready(score_bound=0.5))
        assert [b.tree.score for b in released] == [0.9]
        assert len(heap) == 1

    def test_score_order(self):
        heap = OutputHeap(mode="exact")
        for i, score in enumerate((0.2, 0.9, 0.5)):
            add(heap, make_tree(0, [(0, 1), (0, 2 + i)], score=score))
        released = [b.tree.score for b in heap.pop_ready(score_bound=0.0)]
        assert released == [0.9, 0.5, 0.2]

    def test_none_bound_releases_nothing(self):
        heap = OutputHeap(mode="exact")
        add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.9))
        assert list(heap.pop_ready(score_bound=None)) == []

    def test_superseded_heap_records_skipped(self):
        heap = OutputHeap(mode="exact")
        add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.3))
        add(heap, make_tree(1, [(1, 0), (1, 0, 2)], score=0.6))
        released = list(heap.pop_ready(score_bound=0.0))
        assert len(released) == 1
        assert released[0].tree.score == 0.6


class TestHeuristicRelease:
    def test_releases_by_edge_score(self):
        heap = OutputHeap(mode="heuristic")
        cheap = make_tree(0, [(0, 1), (0, 2)], dists=(1.0, 1.0), score=0.2)
        costly = make_tree(0, [(0, 1), (0, 3)], dists=(3.0, 3.0), score=0.9)
        add(heap, cheap)
        add(heap, costly)
        released = list(heap.pop_ready(edge_bound=2.5))
        assert [b.tree is cheap for b in released] == [True]

    def test_qualifying_sorted_by_relevance(self):
        heap = OutputHeap(mode="heuristic")
        low = make_tree(0, [(0, 1), (0, 2)], dists=(1.0, 1.0), score=0.2)
        high = make_tree(0, [(0, 1), (0, 3)], dists=(1.0, 1.0), score=0.8)
        add(heap, low)
        add(heap, high)
        released = [b.tree.score for b in heap.pop_ready(edge_bound=10.0)]
        assert released == [0.8, 0.2]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            OutputHeap(mode="bogus")


class TestDrain:
    def test_drains_in_score_order_and_empties(self):
        heap = OutputHeap()
        for i, score in enumerate((0.1, 0.7, 0.4)):
            add(heap, make_tree(0, [(0, 1), (0, 2 + i)], score=score))
        drained = [b.tree.score for b in heap.drain()]
        assert drained == [0.7, 0.4, 0.1]
        assert not heap
        assert heap.peek_best_score() is None

    def test_generation_stamps_preserved(self):
        heap = OutputHeap()
        add(heap, make_tree(0, [(0, 1), (0, 2)], score=0.5), pops=42)
        buffered = next(iter(heap.drain()))
        assert buffered.generated_pops == 42
