"""Keyword (inverted) index substrate (S6)."""

from repro.index.inverted import InvertedIndex, build_index
from repro.index.tokenizer import normalize_term, tokenize

__all__ = ["InvertedIndex", "build_index", "tokenize", "normalize_term"]
