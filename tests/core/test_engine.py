"""KeywordSearchEngine facade and query parsing."""

import pytest

from repro.core.engine import KeywordSearchEngine, parse_query
from repro.core.params import SearchParams
from repro.errors import EmptyQueryError, KeywordNotFoundError


class TestParseQuery:
    def test_splits_on_whitespace(self):
        assert parse_query("gray transaction") == ("gray", "transaction")

    def test_quoted_phrase_is_one_keyword(self):
        assert parse_query('"David Fernandez" parametric') == (
            "David Fernandez",
            "parametric",
        )

    def test_sequence_passthrough(self):
        assert parse_query(["a", " b "]) == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(EmptyQueryError):
            parse_query("   ")
        with pytest.raises(EmptyQueryError):
            parse_query([])

    def test_empty_quotes_dropped(self):
        assert parse_query('"" x') == ("x",)


class TestResolve:
    def test_single_word_keywords(self, toy_engine):
        keywords, sets = toy_engine.resolve("gray transaction")
        assert keywords == ("gray", "transaction")
        assert len(sets[0]) == 1
        assert len(sets[1]) == 2

    def test_phrase_keyword_intersects_words(self, toy_engine):
        _, sets = toy_engine.resolve('"jim gray"')
        assert len(sets[0]) == 1

    def test_unknown_keyword_raises(self, toy_engine):
        with pytest.raises(KeywordNotFoundError):
            toy_engine.resolve("gray warphog")

    def test_phrase_with_no_joint_match_raises(self, toy_engine):
        with pytest.raises(KeywordNotFoundError):
            toy_engine.resolve('"jim selinger"')

    def test_origin_sizes(self, toy_engine):
        assert toy_engine.origin_sizes("transaction gray") == (2, 1)


class TestSearch:
    def test_default_algorithm_is_bidirectional(self, toy_engine):
        result = toy_engine.search("gray transaction")
        assert result.algorithm == "bidirectional"
        assert result.answers

    @pytest.mark.parametrize("algorithm", ["bidirectional", "si-backward", "mi-backward"])
    def test_all_algorithms_reachable(self, toy_engine, algorithm):
        result = toy_engine.search("gray transaction", algorithm=algorithm)
        assert result.algorithm == algorithm
        assert result.answers

    def test_unknown_algorithm_rejected(self, toy_engine):
        with pytest.raises(ValueError, match="unknown algorithm"):
            toy_engine.search("gray", algorithm="quantum")

    def test_k_override(self, toy_engine):
        result = toy_engine.search("transaction", k=1)
        assert len(result.answers) == 1

    def test_params_override(self, toy_engine):
        params = SearchParams(max_results=2, dmax=4)
        result = toy_engine.search("transaction", params=params)
        assert len(result.answers) <= 2

    def test_relation_name_query(self, toy_engine):
        # 'paper' matches all paper tuples via the relation name rule.
        result = toy_engine.search("paper vldb", k=3)
        assert result.answers

    def test_lambda_override_rescores(self, toy_engine):
        flat = toy_engine.search("gray transaction", params=SearchParams(lam=0.0))
        steep = toy_engine.search("gray transaction", params=SearchParams(lam=1.0))
        assert flat.answers and steep.answers
        assert flat.best().score != steep.best().score


class TestExhaustiveFacade:
    def test_matches_search(self, toy_engine):
        oracle = toy_engine.exhaustive("gray transaction")
        result = toy_engine.search("gray transaction", k=len(oracle) or 1)
        assert oracle
        assert result.best().score == pytest.approx(oracle[0].score)

    def test_respects_max_results(self, toy_engine):
        answers = toy_engine.exhaustive("transaction", max_results=1)
        assert len(answers) == 1


class TestFromDatabase:
    def test_prestige_computed_by_default(self, toy_db):
        engine = KeywordSearchEngine.from_database(toy_db)
        prestige = engine.graph.prestige
        assert prestige.max() > prestige.min()

    def test_uniform_prestige_option(self, toy_db):
        engine = KeywordSearchEngine.from_database(toy_db, compute_prestige=False)
        prestige = engine.graph.prestige
        assert prestige.max() == pytest.approx(prestige.min())
