"""Quickstart for the observability stack (:mod:`repro.telemetry`).

What one traced query looks like across a process-pool fleet, end to
end:

1. snapshot a small engine and spin up a two-worker
   :class:`repro.ShardedQueryService` (tracing is on by default),
2. run one query carrying a ``request_id``: the supervisor mints the
   trace id, ships it over the wire, and the worker's spans come back
   and stitch into one tree,
3. reconstruct and print the cross-process span tree — supervisor
   ``route``/``queue_wait`` above, worker ``engine`` stages below,
4. flight-record a slow query (threshold 0 records everything) and
   show the ``/debug/slow``-shaped entry,
5. scrape the merged metrics registry as Prometheus text exposition —
   the same bytes ``GET /metrics?format=prometheus`` serves.

Run:  python examples/tracing_quickstart.py
"""

import tempfile
from pathlib import Path

from repro import KeywordSearchEngine, ShardedQueryService
from repro.datasets import DblpConfig, make_dblp
from repro.service.service import QueryRequest
from repro.service.snapshot import save_engine
from repro.telemetry.metrics import render_prometheus
from repro.telemetry.trace import render_span_tree


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        engine = KeywordSearchEngine.from_database(make_dblp(DblpConfig()))
        snapshot = save_engine(Path(tmp) / "dblp.snap", engine)

        with ShardedQueryService(
            {"dblp": snapshot}, num_workers=2, slow_query_threshold=0.0
        ) as cluster:
            cluster.warmup()

            # ----------------------------------------------------------
            # one traced query through the fleet
            # ----------------------------------------------------------
            response = cluster.search(
                QueryRequest("dblp", "paper stream", request_id="quickstart-1")
            )
            response.raise_for_error()
            print(
                f"query ok: request_id={response.request_id} "
                f"trace_id={response.trace_id} "
                f"elapsed={response.elapsed * 1000:.1f} ms"
            )

            # ----------------------------------------------------------
            # the cross-process span tree
            # ----------------------------------------------------------
            tree = cluster.trace(response.trace_id)
            print(f"\nspan tree ({tree['span_count']} spans, one trace id):")
            print(render_span_tree(tree))

            # ----------------------------------------------------------
            # the slow-query log (threshold 0.0 flight-records all)
            # ----------------------------------------------------------
            entry = cluster.slow_queries()[0]
            print(
                f"\nslow log entry: dataset={entry['request']['dataset']} "
                f"elapsed={entry['elapsed'] * 1000:.1f} ms "
                f"spans={entry['span_tree']['span_count']}"
            )

            # ----------------------------------------------------------
            # the Prometheus scrape of the merged registry
            # ----------------------------------------------------------
            merged = cluster.metrics()
            text = render_prometheus(merged["registry"])
            print("\nprometheus scrape (first 12 lines):")
            print("\n".join(text.splitlines()[:12]))
            families = sum(1 for line in text.splitlines() if line.startswith("# TYPE"))
            print(f"... {families} metric families total")


if __name__ == "__main__":
    main()
