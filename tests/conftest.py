"""Shared fixtures: toy databases, engines, scaled synthetic datasets."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets import DblpConfig, make_dblp
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, Schema, Table


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


# ----------------------------------------------------------------------
# toy bibliography database (hand-written, five tables)
# ----------------------------------------------------------------------
TOY_SCHEMA = Schema(
    tables=(
        Table("author", ("id", "name"), text_columns=("name",)),
        Table("conference", ("id", "name"), text_columns=("name",)),
        Table("paper", ("id", "title", "conf_id"), text_columns=("title",)),
        Table("writes", ("id", "author_id", "paper_id")),
        Table("cites", ("id", "citing_id", "cited_id")),
    ),
    foreign_keys=(
        ForeignKey("paper", "conf_id", "conference"),
        ForeignKey("writes", "author_id", "author"),
        ForeignKey("writes", "paper_id", "paper"),
        ForeignKey("cites", "citing_id", "paper"),
        ForeignKey("cites", "cited_id", "paper"),
    ),
)


def make_toy_db() -> Database:
    db = Database(TOY_SCHEMA)
    db.insert_many(
        "author",
        [
            {"id": 1, "name": "Jim Gray"},
            {"id": 2, "name": "Pat Selinger"},
            {"id": 3, "name": "Michael Stonebraker"},
        ],
    )
    db.insert_many(
        "conference",
        [{"id": 1, "name": "VLDB"}, {"id": 2, "name": "SIGMOD"}],
    )
    db.insert_many(
        "paper",
        [
            {"id": 1, "title": "The Transaction Concept", "conf_id": 1},
            {"id": 2, "title": "Access Path Selection", "conf_id": 2},
            {"id": 3, "title": "The Design of Postgres", "conf_id": 2},
            {"id": 4, "title": "Granularity of Locks in a Transaction System", "conf_id": 1},
        ],
    )
    db.insert_many(
        "writes",
        [
            {"id": 1, "author_id": 1, "paper_id": 1},
            {"id": 2, "author_id": 2, "paper_id": 2},
            {"id": 3, "author_id": 3, "paper_id": 3},
            {"id": 4, "author_id": 1, "paper_id": 4},
        ],
    )
    db.insert_many(
        "cites",
        [
            {"id": 1, "citing_id": 2, "cited_id": 1},
            {"id": 2, "citing_id": 3, "cited_id": 1},
            {"id": 3, "citing_id": 3, "cited_id": 2},
        ],
    )
    return db


@pytest.fixture
def toy_db() -> Database:
    return make_toy_db()


@pytest.fixture
def toy_engine(toy_db) -> KeywordSearchEngine:
    return KeywordSearchEngine.from_database(toy_db)


# ----------------------------------------------------------------------
# small synthetic DBLP (session-scoped: building prestige is the cost)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def dblp_small_db() -> Database:
    return make_dblp(DblpConfig().scaled(0.25))


@pytest.fixture(scope="session")
def dblp_small_engine(dblp_small_db) -> KeywordSearchEngine:
    return KeywordSearchEngine.from_database(dblp_small_db)
