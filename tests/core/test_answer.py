"""AnswerTree structure, signatures, minimality."""

import pytest

from repro.core.answer import AnswerTree, is_minimal_rooting


def make_tree(root, paths, dists=None, score=1.0):
    paths = tuple(tuple(p) for p in paths)
    if dists is None:
        dists = tuple(float(len(p) - 1) for p in paths)
    return AnswerTree(
        root=root,
        paths=paths,
        dists=tuple(dists),
        edge_score=float(sum(dists)),
        node_score=1.0,
        score=score,
    )


class TestStructure:
    def test_nodes_edges(self):
        tree = make_tree(0, [(0, 1, 2), (0, 3)])
        assert tree.nodes() == {0, 1, 2, 3}
        assert tree.edges() == {(0, 1), (1, 2), (0, 3)}
        assert tree.size() == 4
        assert tree.num_edges() == 3

    def test_shared_path_prefix_deduplicates_edges(self):
        tree = make_tree(0, [(0, 1, 2), (0, 1, 3)])
        assert tree.edges() == {(0, 1), (1, 2), (1, 3)}

    def test_children_and_leaves(self):
        tree = make_tree(0, [(0, 1, 2), (0, 3)])
        assert tree.children(0) == {1, 3}
        assert tree.children(2) == frozenset()
        assert tree.leaves() == {2, 3}

    def test_single_node_tree(self):
        tree = make_tree(5, [(5,), (5,)], dists=(0.0, 0.0))
        assert tree.nodes() == {5}
        assert tree.leaves() == {5}
        assert tree.edges() == frozenset()
        assert tree.size() == 1

    def test_matched_nodes_in_keyword_order(self):
        tree = make_tree(0, [(0, 1), (0, 2)])
        assert tree.matched_nodes() == (1, 2)

    def test_keyword_matched_at_internal_node(self):
        # Keyword 0 matched at node 1, which is internal on keyword 1's path.
        tree = make_tree(0, [(0, 1), (0, 1, 2)])
        assert tree.leaves() == {2}
        assert tree.matched_nodes() == (1, 2)


class TestSignature:
    def test_rotations_share_signature(self):
        # Same skeleton 1-0-2 rooted at 0 vs rooted at 1.
        rooted_at_0 = make_tree(0, [(0, 1), (0, 2)])
        rooted_at_1 = make_tree(1, [(1, 0), (1, 0, 2)])
        assert rooted_at_0.signature() == rooted_at_1.signature()

    def test_different_trees_differ(self):
        a = make_tree(0, [(0, 1), (0, 2)])
        b = make_tree(0, [(0, 1), (0, 3)])
        assert a.signature() != b.signature()

    def test_single_node_signature_contains_node(self):
        a = make_tree(1, [(1,)], dists=(0.0,))
        b = make_tree(2, [(2,)], dists=(0.0,))
        assert a.signature() != b.signature()


class TestMinimality:
    def test_two_children_minimal(self):
        assert is_minimal_rooting(0, [(0, 1), (0, 2)])

    def test_chain_root_rejected(self):
        # Root 0 has a single child and matches no keyword itself: the
        # subtree without it scores better (paper Section 3).
        assert not is_minimal_rooting(0, [(0, 1), (0, 1, 2)])

    def test_root_matching_keyword_kept(self):
        # Root matches a keyword (path of length 1): keep.
        assert is_minimal_rooting(0, [(0,), (0, 1)])

    def test_single_node_answer_minimal(self):
        assert is_minimal_rooting(0, [(0,), (0,)])

    def test_tree_method_delegates(self):
        assert not make_tree(0, [(0, 1), (0, 1, 2)]).is_minimal()
        assert make_tree(0, [(0, 1), (0, 2)]).is_minimal()


class TestDescribe:
    def test_contains_score_and_paths(self):
        tree = make_tree(0, [(0, 1)], score=0.5)
        text = tree.describe()
        assert "0.5" in text
        assert "0->1" in text
