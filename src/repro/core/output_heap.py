"""Output buffer with duplicate discard and bounded release (Section 4.5).

Answers are not generated in relevance order, so they are buffered here
and released only when the caller-computed bound proves no
still-ungenerated answer could beat them.  Rotations of one tree
(same undirected skeleton, different root) are duplicates; the lower-
scoring one is discarded (Section 4.2.3).

Two release modes mirror the paper:

* ``"exact"``: release answers whose overall score is >= the NRA-style
  score upper bound on future answers;
* ``"heuristic"``: release answers whose raw edge score ``E`` is <= the
  edge-score lower bound ``h(m_1..m_k)`` on future answers, sorted by
  relevance among themselves — cheaper, faster output, possibly out of
  order (quantified by the RP experiment).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.answer import AnswerTree, Signature

__all__ = ["OutputHeap", "BufferedAnswer"]


@dataclass(frozen=True)
class BufferedAnswer:
    """An answer awaiting release, with its generation instant."""

    tree: AnswerTree
    generated_at: float
    generated_pops: int
    generated_touched: int = 0


class OutputHeap:
    """Score-ordered buffer of deduplicated answers."""

    def __init__(self, mode: str = "exact") -> None:
        if mode not in ("exact", "heuristic"):
            raise ValueError(f"mode must be 'exact' or 'heuristic', got {mode!r}")
        self.mode = mode
        self._entries: dict[Signature, BufferedAnswer] = {}
        self._heap: list[tuple[float, int, Signature]] = []
        self._seq = itertools.count()
        self._emitted: set[Signature] = set()

    # ------------------------------------------------------------------
    def add(
        self,
        tree: AnswerTree,
        generated_at: float,
        generated_pops: int,
        generated_touched: int = 0,
    ) -> str:
        """Buffer ``tree``; returns ``"new"``, ``"improved"`` or ``"duplicate"``.

        A rotation already *released* to the user is never re-buffered
        (``"duplicate"``), matching the streaming behaviour: once output,
        an answer is final.
        """
        signature = tree.signature()
        if signature in self._emitted:
            return "duplicate"
        existing = self._entries.get(signature)
        if existing is not None:
            if tree.score <= existing.tree.score:
                return "duplicate"
            status = "improved"
        else:
            status = "new"
        entry = BufferedAnswer(tree, generated_at, generated_pops, generated_touched)
        self._entries[signature] = entry
        heapq.heappush(self._heap, (-tree.score, next(self._seq), signature))
        return status

    # ------------------------------------------------------------------
    def peek_best_score(self) -> Optional[float]:
        self._skim()
        if not self._heap:
            return None
        return -self._heap[0][0]

    def pop_ready(
        self,
        *,
        score_bound: Optional[float] = None,
        edge_bound: Optional[float] = None,
    ) -> Iterator[BufferedAnswer]:
        """Yield buffered answers the current bound allows releasing.

        ``score_bound`` (exact mode): release while the best buffered
        score is >= the bound.  ``edge_bound`` (heuristic mode): release
        every answer with ``edge_score <= edge_bound``, best score first.
        Passing ``None`` for the relevant bound releases nothing.
        """
        if self.mode == "exact":
            if score_bound is None:
                return
            while True:
                self._skim()
                if not self._heap:
                    return
                score = -self._heap[0][0]
                if score < score_bound:
                    return
                yield self._pop_top()
        else:
            if edge_bound is None:
                return
            ready = [
                (signature, entry)
                for signature, entry in self._entries.items()
                if entry.tree.edge_score <= edge_bound
            ]
            ready.sort(key=lambda item: -item[1].tree.score)
            for signature, entry in ready:
                del self._entries[signature]
                self._emitted.add(signature)
                yield entry

    def drain(self) -> Iterator[BufferedAnswer]:
        """Release everything left, best score first (search exhausted)."""
        while True:
            self._skim()
            if not self._heap:
                return
            yield self._pop_top()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    # ------------------------------------------------------------------
    def _skim(self) -> None:
        """Drop stale heap records (superseded or already released)."""
        while self._heap:
            neg_score, _, signature = self._heap[0]
            entry = self._entries.get(signature)
            if entry is not None and entry.tree.score == -neg_score:
                return
            heapq.heappop(self._heap)

    def _pop_top(self) -> BufferedAnswer:
        _, _, signature = heapq.heappop(self._heap)
        entry = self._entries.pop(signature)
        self._emitted.add(signature)
        return entry
