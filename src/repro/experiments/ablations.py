"""ABL1-3: ablations of the design choices DESIGN.md calls out.

ABL1 — spreading activation: sweep the attenuation ``mu`` and compare
against pure distance ordering (SI-Backward), isolating how much of
Bidirectional's win comes from the activation prioritization.

ABL2 — depth cutoff ``dmax``: the termination/quality trade-off of
Section 4.2's "generous default of 8".

ABL3 — output bound: the exact NRA-style bound vs the paper's looser
heuristic (Section 4.5): how much earlier answers are released and how
much output-order quality is given up.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.params import SearchParams
from repro.experiments.common import (
    Report,
    build_bench,
    fmt,
    geomean,
    safe_ratio,
    workload_rng,
)
from repro.workload.metrics import (
    connection_recall,
    measure_at_last_relevant,
    precision_at_full_coverage,
)
from repro.workload.relevance import relevant_answers, relevant_signatures

__all__ = ["run_ablation_activation", "run_ablation_dmax", "run_ablation_bounds"]


def _sample_workload(bench, *, n_queries: int, result_size: int, seed: int):
    rng = workload_rng(seed)
    queries = []
    attempts = 0
    while len(queries) < n_queries and attempts < n_queries * 10:
        attempts += 1
        query = bench.generator.sample_query(
            rng,
            n_keywords=2 + len(queries) % 3,
            result_size=result_size,
            origin_class="large" if len(queries) % 2 else "small",
        )
        if query is not None:
            queries.append(query)
    return queries


def _relevant_for(bench, query, result_size):
    _, keyword_sets = bench.engine.resolve(list(query.keywords))
    return relevant_signatures(
        bench.engine.graph,
        keyword_sets,
        max_tree_size=result_size,
        scorer=bench.engine.scorer,
    )


def _relevant_trees_for(bench, query, result_size):
    _, keyword_sets = bench.engine.resolve(list(query.keywords))
    return relevant_answers(
        bench.engine.graph,
        keyword_sets,
        max_tree_size=result_size,
        scorer=bench.engine.scorer,
    )


def run_ablation_activation(
    *,
    scale: float = 0.4,
    n_queries: int = 5,
    result_size: int = 4,
    mus: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: int = 1100,
) -> Report:
    bench = build_bench("dblp", scale)
    queries = _sample_workload(
        bench, n_queries=n_queries, result_size=result_size, seed=seed
    )
    report = Report(
        experiment="ABL1",
        title="Activation attenuation mu vs distance-only prioritization",
        headers=["configuration", "gen pops (geomean)", "out pops (geomean)", "queries"],
    )
    relevants = [_relevant_for(bench, q, result_size) for q in queries]

    def measure(algorithm: str, params: SearchParams):
        gen_pops: list[float] = []
        out_pops: list[float] = []
        for query, relevant in zip(queries, relevants):
            if not relevant:
                continue
            result = bench.engine.search(
                list(query.keywords), algorithm=algorithm, params=params
            )
            point = measure_at_last_relevant(result, relevant)
            if point is None:
                continue
            gen_pops.append(max(point.gen_pops, 1))
            out_pops.append(max(point.out_pops, 1))
        return gen_pops, out_pops

    for mu in mus:
        gen_pops, out_pops = measure(
            "bidirectional", SearchParams(mu=mu)
        )
        report.rows.append(
            [
                f"bidirectional mu={mu:g}",
                fmt(geomean(gen_pops)),
                fmt(geomean(out_pops)),
                str(len(gen_pops)),
            ]
        )
    gen_pops, out_pops = measure("si-backward", SearchParams())
    report.rows.append(
        [
            "si-backward (distance only)",
            fmt(geomean(gen_pops)),
            fmt(geomean(out_pops)),
            str(len(gen_pops)),
        ]
    )
    report.notes.append(
        "the paper fixes mu=0.5; the sweep shows prioritization is robust "
        "across mu and beats pure distance ordering on generation cost"
    )
    return report


def run_ablation_dmax(
    *,
    scale: float = 0.4,
    n_queries: int = 5,
    result_size: int = 4,
    dmaxes: Sequence[int] = (4, 6, 8, 10),
    seed: int = 1200,
) -> Report:
    bench = build_bench("dblp", scale)
    queries = _sample_workload(
        bench, n_queries=n_queries, result_size=result_size, seed=seed
    )
    relevants = [_relevant_trees_for(bench, q, result_size) for q in queries]
    report = Report(
        experiment="ABL2",
        title="Depth cutoff dmax: recall vs exploration cost (bidirectional)",
        headers=["dmax", "mean recall", "total pops (geomean)", "queries"],
    )
    for dmax in dmaxes:
        params = SearchParams(dmax=dmax, max_results=200)
        recalls: list[float] = []
        pops: list[float] = []
        for query, relevant in zip(queries, relevants):
            if not relevant:
                continue
            result = bench.engine.search(
                list(query.keywords), algorithm="bidirectional", params=params
            )
            recalls.append(connection_recall(result.trees(), relevant))
            pops.append(max(result.stats.nodes_explored, 1))
        report.rows.append(
            [
                str(dmax),
                fmt(sum(recalls) / len(recalls)) if recalls else "-",
                fmt(geomean(pops)),
                str(len(recalls)),
            ]
        )
    report.notes.append(
        "the paper's dmax=8 is 'generous': recall should saturate well "
        "below it while exploration cost keeps growing"
    )
    return report


def run_ablation_bounds(
    *,
    scale: float = 0.4,
    n_queries: int = 5,
    result_size: int = 4,
    seed: int = 1300,
) -> Report:
    bench = build_bench("dblp", scale)
    queries = _sample_workload(
        bench, n_queries=n_queries, result_size=result_size, seed=seed
    )
    relevants = [_relevant_trees_for(bench, q, result_size) for q in queries]
    sig_relevants = [_relevant_for(bench, q, result_size) for q in queries]
    report = Report(
        experiment="ABL3",
        title="Output bound: exact NRA-style vs loose heuristic (Section 4.5)",
        headers=[
            "mode",
            "out/gen pops ratio",
            "mean recall",
            "mean prec@full-recall",
            "queries",
        ],
    )
    for mode in ("exact", "heuristic"):
        params = SearchParams(output_mode=mode, max_results=200)
        lag_ratios: list[float] = []
        recalls: list[float] = []
        precisions: list[float] = []
        for query, relevant, sig_relevant in zip(queries, relevants, sig_relevants):
            if not relevant or len(relevant) > params.max_results:
                continue
            result = bench.engine.search(
                list(query.keywords), algorithm="bidirectional", params=params
            )
            point = measure_at_last_relevant(result, sig_relevant)
            if point is not None:
                ratio = safe_ratio(max(point.out_pops, 1), max(point.gen_pops, 1))
                if ratio is not None:
                    lag_ratios.append(ratio)
            trees = result.trees()
            recalls.append(connection_recall(trees, relevant))
            precision = precision_at_full_coverage(trees, relevant)
            if precision is not None:
                precisions.append(precision)
        report.rows.append(
            [
                mode,
                fmt(geomean(lag_ratios)),
                fmt(sum(recalls) / len(recalls)) if recalls else "-",
                fmt(sum(precisions) / len(precisions)) if precisions else "-",
                str(len(recalls)),
            ]
        )
    report.notes.append(
        "paper Section 5.3/5.5: answers are generated long before the "
        "exact bound lets them out; the heuristic releases earlier at a "
        "small order-quality risk (Section 5.7 found it rarely matters)"
    )
    return report
