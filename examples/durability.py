"""Durability quickstart: commit -> kill -9 -> recover (:mod:`repro.wal`).

PR 4 made datasets mutable under live traffic; this demo shows the
other half — mutations that *survive the process*:

1. build a DBLP engine, snapshot it to disk,
2. in a **separate process**: warm a ``QueryService`` from the
   snapshot, attach the sibling write-ahead log
   (``QueryService.attach_wal``), commit three live inserts... then
   ``kill -9`` itself mid-flight — no drain, no atexit, no goodbye,
3. inspect the snapshot from the shell
   (``python -m repro.service.snapshot info``): the sibling WAL shows
   three unsnapshotted commits,
4. in this process: register the same snapshot, ``attach_wal`` again —
   the log replays and the service lands on exactly the last durable
   epoch; the killed process's inserts answer queries,
5. ``save_snapshot`` over the serving snapshot rotates it in place and
   truncates the now-covered log segments (saving to any *other* path
   — a backup — deliberately leaves the log alone).

The ``"batched"`` sync default flushes every commit to the OS page
cache, so a process ``kill -9`` loses nothing; ``sync="commit"`` adds
an fsync per commit to survive whole-machine crashes too.

Run:  python examples/durability.py
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import repro
from repro import KeywordSearchEngine, QueryService
from repro.datasets import DblpConfig, make_dblp
from repro.service.snapshot import main as snapshot_cli
from repro.service.snapshot import save_engine
from repro.wal import MutationLog, default_wal_path

#: What the doomed writer process runs: warm from the snapshot, attach
#: the WAL, commit three inserts, then SIGKILL itself.
WRITER = """
import os, signal, sys
from repro.service import QueryService

snapshot = sys.argv[1]
service = QueryService()
service.register_snapshot("dblp", snapshot)
service.attach_wal("dblp")  # sibling <snapshot>.wal, sync="batched"
for i in range(3):
    result = service.apply("dblp", [
        {"op": "add_node", "label": f"Durable Paper {i}", "table": "paper",
         "text": f"durapaper{i} write ahead logging"},
        {"op": "add_edge", "u": -1, "v": 0},
    ])
    print(f"writer: committed version {result.version}", flush=True)
os.kill(os.getpid(), signal.SIGKILL)  # crash: nothing gets to clean up
"""


def main() -> None:
    # ------------------------------------------------------------------
    # 1. snapshot a warm DBLP engine
    # ------------------------------------------------------------------
    engine = KeywordSearchEngine.from_database(make_dblp(DblpConfig()))
    tmp = Path(tempfile.mkdtemp(prefix="repro-durability-"))
    snapshot = save_engine(tmp / "dblp.snap", engine)
    print(
        f"snapshot: {snapshot} ({engine.graph.num_nodes} nodes, "
        f"{engine.graph.num_forward_edges} forward edges)"
    )

    # ------------------------------------------------------------------
    # 2. a separate process commits three inserts, then kill -9's itself
    # ------------------------------------------------------------------
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", WRITER, str(snapshot)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    print(completed.stdout, end="")
    assert completed.returncode == -signal.SIGKILL, (
        f"writer should die by SIGKILL, exited {completed.returncode}: "
        f"{completed.stderr}"
    )
    print(f"writer: killed -9 (exit {completed.returncode})")

    # ------------------------------------------------------------------
    # 3. the operator's view: snapshot info shows unsnapshotted commits
    # ------------------------------------------------------------------
    print("\n$ python -m repro.service.snapshot info dblp.snap")
    snapshot_cli(["info", str(snapshot)])

    # ------------------------------------------------------------------
    # 4. recover: attach_wal replays to the last durable epoch
    # ------------------------------------------------------------------
    service = QueryService()
    service.register_snapshot("dblp", snapshot)
    outcome = service.attach_wal("dblp")
    print(
        f"\nrecovered: replayed {outcome['replayed']} WAL records -> "
        f"version {outcome['version']} (wal seq {outcome['wal_seq']})"
    )
    response = service.search("dblp", "durapaper2 logging")
    response.raise_for_error()
    current = service.engine("dblp").graph
    print(
        f"search 'durapaper2 logging' -> "
        f"{current.label(response.result.answers[0].tree.root)!r} "
        f"(an insert the killed process never got to snapshot)"
    )

    # ------------------------------------------------------------------
    # 5. rotate the serving snapshot in place; covered segments die
    # ------------------------------------------------------------------
    recovered_snap = service.save_snapshot("dblp", snapshot)
    stats = MutationLog.peek(default_wal_path(snapshot))
    print(
        f"\nrotated {recovered_snap} (now dataset_version 3); WAL "
        f"truncated to {stats['records']} records (seq stays at "
        f"{stats['last_seq']} — the log only needs to reach back to "
        f"the newest snapshot)"
    )
    service.close()


if __name__ == "__main__":
    main()
