"""SearchStats counters and timers."""

import time

from repro.core.stats import SearchStats


class TestCounters:
    def test_initial_state(self):
        stats = SearchStats()
        assert stats.nodes_explored == 0
        assert stats.nodes_touched == 0
        assert stats.edges_explored == 0
        assert stats.finished_at is None

    def test_increments(self):
        stats = SearchStats()
        stats.explore()
        stats.explore()
        stats.touch()
        stats.touch(3)
        stats.explore_edge()
        stats.explore_edge(5)
        assert stats.nodes_explored == 2
        assert stats.nodes_touched == 4
        assert stats.edges_explored == 6

    def test_as_dict(self):
        stats = SearchStats()
        stats.explore()
        d = stats.as_dict()
        assert d["nodes_explored"] == 1
        assert "elapsed" in d


class TestTimers:
    def test_elapsed_grows_until_finish(self):
        stats = SearchStats()
        first = stats.elapsed
        time.sleep(0.002)
        assert stats.elapsed > first

    def test_finish_freezes_elapsed(self):
        stats = SearchStats()
        stats.finish()
        frozen = stats.elapsed
        time.sleep(0.002)
        assert stats.elapsed == frozen

    def test_finish_idempotent(self):
        stats = SearchStats()
        stats.finish()
        first = stats.finished_at
        stats.finish()
        assert stats.finished_at == first

    def test_now_is_monotone(self):
        stats = SearchStats()
        a = stats.now()
        b = stats.now()
        assert b >= a >= 0.0
