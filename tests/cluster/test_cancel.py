"""Cancellation across the process boundary: cancel ring, deadlines,
sibling isolation, and the HTTP cancel/disconnect surface."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import ShardedQueryService
from repro.cluster.http import make_server, status_for_error
from repro.cluster.pool import WorkerPool
from repro.core.answer import SearchResult
from repro.core.params import SearchParams
from repro.core.stats import SearchStats
from repro.errors import DeadlineExceededError, SearchCancelledError
from repro.service.service import QueryRequest, QueryService
from repro.service.snapshot import save_engine


@pytest.fixture(scope="session")
def dblp_snapshot(tmp_path_factory, dblp_small_engine):
    """A dataset big enough that ``mi-backward`` runs for seconds —
    long enough for a deadline to fire genuinely mid-search."""
    path = tmp_path_factory.mktemp("cancel") / "dblp.snap"
    return save_engine(path, dblp_small_engine)


# ----------------------------------------------------------------------
# pool-level: the cancel ring
# ----------------------------------------------------------------------
class TestPoolCancel:
    def test_cancel_queued_request_never_searches(self, toy_snapshot):
        with WorkerPool({0: {"toy": toy_snapshot}}) as pool:
            pool.warmup()
            # Occupy the worker, then queue a request behind it and
            # cancel the queued request — deterministically cancelled
            # *before* execution.
            sleeper = pool.submit(0, "sleep", 0.6)
            queued = pool.request(
                0, {"dataset": "toy", "query": "gray transaction"}
            )
            assert pool.cancel(queued.job_id) is True
            payload = queued.result(timeout=10.0)
            assert payload["error_type"] == SearchCancelledError.__name__
            assert "before execution" in payload["error"]
            assert sleeper.result(timeout=10.0)["slept"] == 0.6
            # The worker is unharmed: the next request is served.
            follow_up = pool.request(
                0, {"dataset": "toy", "query": "gray transaction"}
            ).result(timeout=10.0)
            assert follow_up["error"] is None
            assert follow_up["result"]["answers"]
            assert pool.restarts() == {0: 0}

    def test_cancel_unknown_job_is_false(self, toy_snapshot):
        with WorkerPool({0: {"toy": toy_snapshot}}) as pool:
            pool.warmup()
            assert pool.cancel(987654) is False


# ----------------------------------------------------------------------
# sharded-service level
# ----------------------------------------------------------------------
class TestShardedCancel:
    def test_cancel_leaves_sibling_requests_untouched(self, toy_snapshot):
        """Cancelling one in-flight request must not perturb its
        neighbours on the same worker — not their results, and not the
        worker process itself."""
        with ShardedQueryService(
            {"toy": toy_snapshot}, num_workers=1, health_interval=0.2
        ) as service:
            service.warmup()
            baseline = service.search("toy", "gray transaction", use_cache=False)
            assert baseline.ok

            # Occupy the single worker so the cancellable request is
            # deterministically still pending when cancel() lands.
            sleeper = service.pool.submit(0, "sleep", 0.5)
            box = {}

            def run():
                box["response"] = service.search(
                    QueryRequest(
                        "toy",
                        "gray transaction",
                        use_cache=False,
                        request_id="doomed",
                        allow_partial=True,
                    )
                )

            thread = threading.Thread(target=run)
            thread.start()
            cancelled = False
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not cancelled:
                cancelled = service.cancel("doomed")
                time.sleep(0.01)
            assert cancelled
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert box["response"].error_type == SearchCancelledError.__name__

            sleeper.result(timeout=10.0)
            sibling = service.search("toy", "gray transaction", use_cache=False)
            assert sibling.ok
            assert sibling.result.scores() == baseline.result.scores()
            assert sibling.result.complete
            assert service.pool.restarts() == {0: 0}

    def test_mid_search_deadline_returns_partial_from_worker(
        self, dblp_snapshot
    ):
        with ShardedQueryService(
            {"dblp": dblp_snapshot}, num_workers=1, health_interval=0.2
        ) as service:
            service.warmup()
            start = time.monotonic()
            response = service.search(
                QueryRequest(
                    "dblp",
                    "database james john",
                    algorithm="mi-backward",  # runs for seconds uncancelled
                    use_cache=False,
                    timeout=0.2,
                    allow_partial=True,
                    params=SearchParams(cancel_check_interval=1),
                )
            )
            elapsed = time.monotonic() - start
            assert response.error_type == DeadlineExceededError.__name__
            assert response.result is not None
            assert response.result.complete is False
            # Whichever source fired first — the worker's own deadline
            # token or the supervisor's ring cancel — the *cause* is
            # surfaced as DeadlineExceededError above.
            assert response.result.cancel_reason in ("deadline", "cancelled")
            # The shard was freed near the deadline, not after the
            # multi-second search it would have run to completion.
            assert elapsed < 1.5
            # And the fleet keeps serving, unrestarted.
            assert service.search("dblp", "database query").ok
            assert service.pool.restarts() == {0: 0}
            # The worker-side service recorded the cancellation in the
            # merged cluster metrics (under whichever reason won the
            # race between deadline token and ring cancel).
            cancellations = service.metrics()["cancellations"]
            assert (
                cancellations["deadline_exceeded"] + cancellations["cancelled"]
                >= 1
            )

    def test_deadline_expired_while_queued_never_searches(self, toy_snapshot):
        with ShardedQueryService(
            {"toy": toy_snapshot}, num_workers=1, health_interval=0.2
        ) as service:
            service.warmup()
            response = service.search(
                QueryRequest(
                    "toy",
                    "gray transaction",
                    use_cache=False,
                    timeout=1e-6,
                    allow_partial=True,
                )
            )
            # The supervisor's backstop killed it through the cancel
            # ring before the worker ever started searching; the cause
            # (deadline) is surfaced, not the mechanism.
            assert response.error_type == DeadlineExceededError.__name__
            assert service.search("toy", "gray transaction").ok

    def test_cancel_unknown_request_id_is_false(self, sharded):
        assert sharded.cancel("nobody-home") is False

    def test_non_cooperative_mode_refuses_to_claim_cancellation(
        self, toy_snapshot
    ):
        """With cooperative_cancellation=False the workers discard
        their cancel rings; cancel() must say so rather than pretend."""
        with ShardedQueryService(
            {"toy": toy_snapshot},
            num_workers=1,
            health_interval=0.2,
            cooperative_cancellation=False,
        ) as service:
            service.warmup()
            sleeper = service.pool.submit(0, "sleep", 0.3)
            box = {}

            def run():
                box["response"] = service.search(
                    QueryRequest(
                        "toy",
                        "gray transaction",
                        use_cache=False,
                        request_id="uncancellable",
                    )
                )

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.05)  # request dispatched, queued behind sleep
            assert service.cancel("uncancellable") is False
            sleeper.result(timeout=10.0)
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert box["response"].ok  # ran to completion, as promised


# ----------------------------------------------------------------------
# HTTP: DELETE /search/<id>, 499 mapping, disconnect watcher plumbing
# ----------------------------------------------------------------------
class GatedEngine:
    def __init__(self):
        self.params = SearchParams(cancel_check_interval=1)
        self.gate = threading.Event()
        self.started = threading.Event()

    def search(self, query, *, algorithm, params, token=None):
        self.started.set()
        result = SearchResult(
            algorithm=algorithm, keywords=("slow",), stats=SearchStats()
        )
        while not self.gate.is_set():
            if token is not None and token.tick():
                result.complete = False
                result.cancel_reason = token.reason
                break
            time.sleep(0.002)
        result.stats.finish()
        return result


@pytest.fixture
def gated_server(toy_engine_session):
    engine = GatedEngine()
    service = QueryService()
    service.register_engine("toy", toy_engine_session)
    service.register_engine("slow", engine)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, engine
    engine.gate.set()
    server.shutdown()
    server.server_close()
    service.close(wait=False)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _request(server, path, method, obj=None):
    data = json.dumps(obj).encode("utf-8") if obj is not None else None
    request = urllib.request.Request(
        _url(server, path),
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHTTPCancel:
    def test_status_mapping(self):
        assert status_for_error(SearchCancelledError.__name__) == 499

    def test_delete_unknown_id_reports_not_cancelled(self, gated_server):
        server, _ = gated_server
        status, body = _request(server, "/search/no-such-id", "DELETE")
        assert status == 200
        assert body == {"request_id": "no-such-id", "cancelled": False}

    def test_delete_route_requires_id(self, gated_server):
        server, _ = gated_server
        status, body = _request(server, "/search/", "DELETE")
        assert status == 404

    def test_delete_cancels_inflight_search(self, gated_server):
        server, engine = gated_server
        box = {}

        def run():
            box["status"], box["body"] = _request(
                server,
                "/search",
                "POST",
                {
                    "dataset": "slow",
                    "query": "anything",
                    "request_id": "http-doomed",
                    "allow_partial": True,
                },
            )

        thread = threading.Thread(target=run)
        thread.start()
        assert engine.started.wait(5.0)
        deadline = time.monotonic() + 5.0
        cancelled = False
        while time.monotonic() < deadline and not cancelled:
            _, body = _request(server, "/search/http-doomed", "DELETE")
            cancelled = body["cancelled"]
            time.sleep(0.01)
        assert cancelled
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert box["status"] == 499
        assert box["body"]["error_type"] == SearchCancelledError.__name__
        assert box["body"]["result"]["complete"] is False
