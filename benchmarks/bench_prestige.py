"""PRES bench: node-prestige precomputation cost (Section 5.1)."""

from repro.experiments.memory import run_prestige

from conftest import as_float, run_report


def test_prestige_cost_scales(benchmark):
    report = run_report(benchmark, run_prestige)
    assert len(report.rows) == 4
    seconds = [as_float(row[3]) for row in report.rows]
    nodes = [as_float(row[1]) for row in report.rows]
    # Near-linear growth: 8x the nodes must not cost 100x the time.
    assert nodes[-1] > nodes[0]
    assert seconds[-1] <= max(seconds[0], 0.01) * 100
