"""Cooperative cancellation for the search stack (ROADMAP follow-up).

The paper's algorithms are *anytime*: their main loops pop one cursor
at a time, so they are naturally interruptible — yet until this module
existed, a deadline-missed query kept burning its thread (or worker
process) until the full search finished.  A :class:`CancellationToken`
threads a stop signal through every layer: the core expansion loops
tick it once per pop, the engine forwards it per query, the service
tier arms one from each request's deadline, and the cluster tier drives
it from a supervisor-side control channel.

Design constraints, in order:

* **The hot loop must not slow down.**  :meth:`CancellationToken.tick`
  is one method call per pop; the *full* check (deadline clock read,
  parent walk, external probe — the cluster tier's probe takes a
  multiprocessing lock) runs only every ``check_every`` ticks.  A fired
  token short-circuits immediately.
* **Cancellation is a request, not preemption.**  The search notices at
  its next check and returns what it has; callers therefore observe a
  bounded overrun of at most one check interval of pops.
* **Sources compose.**  A deadline, an explicit :meth:`cancel` from
  another thread, a ``parent`` token (the service wraps a caller's
  token with its own deadline token) and an ``external_check`` callable
  (the cluster worker's shared-memory cancel ring) all feed one token;
  whichever fires first wins and records its ``reason``.

Two consumption styles:

* anytime algorithms (the searches) call :meth:`tick` and, when it
  returns True, stop and mark their partial result ``complete=False``;
* all-or-nothing code (the exhaustive oracle) calls
  :meth:`raise_if_cancelled`, which raises
  :class:`~repro.errors.SearchCancelledError`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import SearchCancelledError

__all__ = ["CancellationToken", "REASON_CANCELLED", "REASON_DEADLINE"]

#: Reason recorded by an explicit :meth:`CancellationToken.cancel`.
REASON_CANCELLED = "cancelled"
#: Reason recorded when the token's deadline passes.
REASON_DEADLINE = "deadline"


class CancellationToken:
    """A composable stop signal checked cooperatively every N ticks.

    Parameters
    ----------
    deadline:
        Absolute ``time.monotonic()`` instant after which the token
        fires with reason ``"deadline"`` (use :meth:`with_timeout` for
        the relative spelling).
    check_every:
        Full checks (clock, parent, external probe) run once per this
        many :meth:`tick` calls; a cancelled search returns within at
        most ~2 check intervals of pops.  ``SearchParams.
        cancel_check_interval`` is the per-query spelling the service
        layers forward here.
    parent:
        Another token consulted on full checks; a fired parent fires
        this token with the parent's reason.  The service tier wraps a
        caller-supplied token with its own deadline token this way.
    external_check:
        Zero-argument callable probed on full checks; truthy means
        "cancel now" with reason ``"cancelled"``.  The cluster worker
        wires its shared-memory cancel ring in through this.
    cancel_at_tick:
        Fire (reason ``"cancelled"``) once this many ticks have
        elapsed.  Checked on *every* tick, so tests and tick-budget
        callers get deterministic, exact cut points.
    """

    __slots__ = (
        "deadline",
        "check_every",
        "parent",
        "external_check",
        "cancel_at_tick",
        "_ticks",
        "_fired",
        "_reason",
        "_fired_at",
        "_lock",
    )

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        check_every: int = 32,
        parent: Optional["CancellationToken"] = None,
        external_check: Optional[Callable[[], bool]] = None,
        cancel_at_tick: Optional[int] = None,
    ) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every!r}")
        if cancel_at_tick is not None and cancel_at_tick < 0:
            raise ValueError(
                f"cancel_at_tick must be >= 0, got {cancel_at_tick!r}"
            )
        self.deadline = deadline
        self.check_every = check_every
        self.parent = parent
        self.external_check = external_check
        self.cancel_at_tick = cancel_at_tick
        self._ticks = 0
        self._fired = False
        self._reason: Optional[str] = None
        self._fired_at: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def with_timeout(cls, seconds: float, **kwargs) -> "CancellationToken":
        """A token whose deadline is ``seconds`` from now."""
        if seconds <= 0:
            raise ValueError(f"timeout must be positive, got {seconds!r}")
        return cls(deadline=time.monotonic() + seconds, **kwargs)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def cancel(self, reason: str = REASON_CANCELLED) -> None:
        """Request cancellation (thread-safe, idempotent: first reason
        wins).  The running search notices at its next check."""
        self._fire(reason)

    def _fire(self, reason: str) -> None:
        with self._lock:
            if not self._fired:
                self._fired = True
                self._reason = reason
                self._fired_at = time.monotonic()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def fired(self) -> bool:
        """True once the token has fired (no sources re-probed)."""
        return self._fired

    @property
    def reason(self) -> Optional[str]:
        """Why the token fired (``"cancelled"`` / ``"deadline"``), or
        None while live."""
        return self._reason

    @property
    def fired_at(self) -> Optional[float]:
        """``time.monotonic()`` instant the token fired, or None."""
        return self._fired_at

    @property
    def ticks(self) -> int:
        """Ticks consumed so far (pops, for the search loops)."""
        return self._ticks

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None without one; floored at 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """Count one loop iteration; True once the token has fired.

        The hot-loop entry point: a fired token and the
        ``cancel_at_tick`` budget are checked every call, the expensive
        sources (clock, parent, external probe) only every
        ``check_every`` calls.
        """
        if self._fired:
            return True
        self._ticks += 1
        if self.cancel_at_tick is not None and self._ticks >= self.cancel_at_tick:
            self._fire(REASON_CANCELLED)
            return True
        if self._ticks % self.check_every:
            return False
        return self.check()

    def tick_many(self, n: int) -> int:
        """Consume up to ``n`` ticks at once; returns how many were granted.

        The batched expansion engines' entry point: one call covers a
        whole batch of pops.  A return of ``n`` means the batch may run
        in full; anything smaller means the token fired and only that
        many pops may still be performed (matching :meth:`tick`'s exact
        ``cancel_at_tick`` semantics, where the ``T``-th tick observes
        the cut and its pop is skipped, i.e. ``T - 1`` pops complete).
        The expensive sources are probed once whenever the span crosses
        a ``check_every`` boundary, so callers capping their batch at
        ``check_every`` keep the legacy ~2-check-interval overrun bound.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n!r}")
        if self._fired:
            return 0
        start = self._ticks
        cut = self.cancel_at_tick
        if cut is not None and cut <= start + n:
            granted = max(0, cut - 1 - start)
            self._ticks = cut
            self._fire(REASON_CANCELLED)
            return granted
        if (start + n) // self.check_every > start // self.check_every:
            if self.check():
                return 0
        self._ticks = start + n
        return n

    def check(self) -> bool:
        """Probe every source now (ungated); True once fired."""
        if self._fired:
            return True
        if self.parent is not None and self.parent.check():
            self._fire(self.parent.reason or REASON_CANCELLED)
            return True
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self._fire(REASON_DEADLINE)
            return True
        if self.external_check is not None and self.external_check():
            self._fire(REASON_CANCELLED)
            return True
        return False

    def raise_if_cancelled(self) -> None:
        """Raise :class:`SearchCancelledError` if a full check fires.

        The consumption style for code with no partial answer to return
        (the exhaustive oracle, bulk index builds): unwind instead of
        flagging.
        """
        if self.check():
            raise SearchCancelledError(self._reason or REASON_CANCELLED)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"fired={self._reason!r}" if self._fired else "live"
        return (
            f"CancellationToken({state}, ticks={self._ticks}, "
            f"check_every={self.check_every})"
        )
