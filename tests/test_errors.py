"""Exception hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_lookup_errors_are_catchable_generically(self):
        # Library KeyError/ValueError subclasses keep stdlib semantics.
        assert issubclass(errors.UnknownNodeError, KeyError)
        assert issubclass(errors.UnknownTableError, KeyError)
        assert issubclass(errors.UnknownColumnError, KeyError)
        assert issubclass(errors.EmptyQueryError, ValueError)
        assert issubclass(errors.KeywordNotFoundError, LookupError)

    def test_keyword_not_found_carries_keyword(self):
        exc = errors.KeywordNotFoundError("warphog")
        assert exc.keyword == "warphog"
        assert "warphog" in str(exc)

    def test_integrity_is_schema_error(self):
        assert issubclass(errors.IntegrityError, errors.SchemaError)

    def test_frozen_is_graph_error(self):
        assert issubclass(errors.GraphFrozenError, errors.GraphError)


class TestPublicSurface:
    def test_package_reexports(self):
        import repro

        assert repro.ReproError is errors.ReproError
        assert repro.KeywordNotFoundError is errors.KeywordNotFoundError

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
