"""Tie-invariant relevance matching (connection_key / coverage)."""

import pytest

from repro.workload.metrics import (
    connection_key,
    connection_recall,
    coverage_curve,
    precision_at_full_coverage,
)

from tests.core.test_answer import make_tree


class TestConnectionKey:
    def test_same_root_same_dists_match(self):
        a = make_tree(0, [(0, 1), (0, 2)], dists=(1.0, 2.0))
        b = make_tree(0, [(0, 3), (0, 4)], dists=(2.0, 1.0))  # tie variant
        assert connection_key(a) == connection_key(b)

    def test_different_root_differs(self):
        a = make_tree(0, [(0, 1)], dists=(1.0,))
        b = make_tree(5, [(5, 1)], dists=(1.0,))
        assert connection_key(a) != connection_key(b)

    def test_different_dists_differ(self):
        a = make_tree(0, [(0, 1)], dists=(1.0,))
        b = make_tree(0, [(0, 1)], dists=(2.0,))
        assert connection_key(a) != connection_key(b)


class TestConnectionRecall:
    def test_exact_match_counts(self):
        t = make_tree(0, [(0, 1), (0, 2)])
        assert connection_recall([t], [t]) == 1.0

    def test_tie_variant_counts(self):
        relevant = make_tree(0, [(0, 1), (0, 2)], dists=(1.0, 1.0))
        variant = make_tree(0, [(0, 3), (0, 4)], dists=(1.0, 1.0))
        assert connection_recall([variant], [relevant]) == 1.0

    def test_miss_counts_zero(self):
        relevant = make_tree(0, [(0, 1)], dists=(1.0,))
        other = make_tree(9, [(9, 8)], dists=(3.0,))
        assert connection_recall([other], [relevant]) == 0.0

    def test_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            connection_recall([], [])


class TestCoverageCurve:
    def test_perfect_prefix(self):
        relevant = [
            make_tree(0, [(0, 1), (0, 2)]),
            make_tree(5, [(5, 6), (5, 7)]),
        ]
        curve = coverage_curve(relevant, relevant)
        assert curve[-1] == (1.0, 1.0)
        assert precision_at_full_coverage(relevant, relevant) == 1.0

    def test_irrelevant_interleaved(self):
        relevant = [make_tree(0, [(0, 1), (0, 2)])]
        noise = make_tree(9, [(9, 8), (9, 7)])
        output = [noise, relevant[0]]
        curve = coverage_curve(output, relevant)
        assert curve[0] == (0.0, 0.0)
        assert curve[1] == (1.0, 0.5)
        assert precision_at_full_coverage(output, relevant) == 0.5

    def test_never_full_coverage(self):
        relevant = [make_tree(0, [(0, 1)], dists=(1.0,))]
        output = [make_tree(9, [(9, 8)], dists=(2.0,))]
        assert precision_at_full_coverage(output, relevant) is None
