"""Overlay/index ``lookup`` memo invalidation across mutation
interleavings, against both RAM and mapped snapshot bases.

Each committed epoch builds a fresh immutable ``OverlayIndex`` with its
own lookup memo; these tests pin that a memoized answer from epoch N
never leaks into epoch N+1 after ``remove_edge`` / ``update_text``
interleavings — and that the mapped tier (whose *base* postings
materialize lazily) behaves exactly like the RAM tier throughout.
"""

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.live.dataset import MutableDataset
from repro.service.snapshot import save_engine
from repro.storage import MappedSearchGraph

MODES = ("ram", "mapped")


@pytest.fixture
def snapshot_path(toy_engine, tmp_path):
    path = tmp_path / "base.snap"
    save_engine(path, toy_engine)
    return path


def make_dataset(snapshot_path, mode) -> MutableDataset:
    ds = MutableDataset.from_snapshot(snapshot_path, storage_mode=mode)
    assert isinstance(ds.graph, MappedSearchGraph) == (mode == "mapped")
    return ds


@pytest.mark.parametrize("mode", MODES)
class TestLookupMemoInvalidation:
    def test_update_text_invalidates_memoized_lookup(self, snapshot_path, mode):
        ds = make_dataset(snapshot_path, mode)
        victim = sorted(ds.index.lookup("transaction"))[0]
        before = ds.index.lookup("transaction")  # memoized in this epoch
        assert ds.index.lookup("transaction") == before
        ds.update_text(victim, "completely different words")
        ds.commit()
        after = ds.index.lookup("transaction")
        assert victim not in after
        assert after == before - {victim}
        assert victim in ds.index.lookup("completely")

    def test_readded_term_reappears(self, snapshot_path, mode):
        ds = make_dataset(snapshot_path, mode)
        victim = sorted(ds.index.lookup("transaction"))[0]
        original_text = ds.graph.label(victim)
        ds.update_text(victim, "placeholder")
        ds.commit()
        assert victim not in ds.index.lookup("transaction")
        ds.update_text(victim, original_text)
        ds.commit()
        assert victim in ds.index.lookup("transaction")

    def test_remove_edge_between_text_updates(self, snapshot_path, mode):
        """Interleave graph and index mutations in one epoch and across
        epochs; lookups and adjacency must both track the latest commit."""
        ds = make_dataset(snapshot_path, mode)
        # Pick a forward edge whose endpoints both carry text.
        u = next(
            n for n in ds.graph.nodes()
            if any(fwd for _, _, fwd in ds.graph.out_edges(n))
        )
        v = next(t for t, _, fwd in ds.graph.out_edges(u) if fwd)
        ds.index.lookup("gray")  # warm this epoch's memo
        degree_before = len(ds.graph.out_edges(u))

        ds.remove_edge(u, v)
        ds.update_text(u, "interleaved mutation probe")
        ds.commit()

        assert len(ds.graph.out_edges(u)) < degree_before
        assert u in ds.index.lookup("interleaved")
        assert all(
            not (t == v and fwd) for t, _, fwd in ds.graph.out_edges(u)
        )

        # Second epoch: move the text again; the first epoch's memo for
        # "interleaved" must not survive.
        assert u in ds.index.lookup("interleaved")  # memoize pre-mutation
        ds.update_text(u, "settled")
        ds.commit()
        assert u not in ds.index.lookup("interleaved")
        assert u in ds.index.lookup("settled")

    def test_uncommitted_stage_not_visible_then_visible(self, snapshot_path, mode):
        ds = make_dataset(snapshot_path, mode)
        node = sorted(ds.index.lookup("postgres"))[0]
        ds.update_text(node, "renamed entirely")
        # Staged but uncommitted: the serving epoch still answers old.
        assert node in ds.index.lookup("postgres")
        ds.commit()
        assert node not in ds.index.lookup("postgres")
        assert node in ds.index.lookup("renamed")


@pytest.mark.parametrize("mode", MODES)
def test_search_tracks_interleaved_mutations(snapshot_path, mode):
    """End-to-end: the per-epoch engine over an overlay answers from the
    latest epoch for both base tiers, identically."""
    ds = make_dataset(snapshot_path, mode)
    node = sorted(ds.index.lookup("transaction"))[0]
    ds.update_text(node, "xyzzyterm probe")
    ds.commit()
    engine = ds.engine
    assert isinstance(engine, KeywordSearchEngine)
    result = engine.search("xyzzyterm", k=3)
    assert result.answers
    assert any(node in answer.tree.nodes() for answer in result.answers)


def test_modes_agree_after_identical_interleavings(snapshot_path):
    """The same mutation script applied over a RAM base and a mapped
    base must leave byte-identical logical state."""
    datasets = [make_dataset(snapshot_path, mode) for mode in MODES]
    for ds in datasets:
        victim = sorted(ds.index.lookup("transaction"))[0]
        u = next(
            n for n in ds.graph.nodes()
            if any(fwd for _, _, fwd in ds.graph.out_edges(n))
        )
        v = next(t for t, _, fwd in ds.graph.out_edges(u) if fwd)
        ds.remove_edge(u, v)
        ds.update_text(victim, "rewritten after removal")
        ds.commit()
    ram, mapped = datasets
    assert ram.version == mapped.version
    for node in ram.graph.nodes():
        assert ram.graph.out_edges(node) == mapped.graph.out_edges(node)
        assert ram.graph.in_edges(node) == mapped.graph.in_edges(node)
    for term in ("transaction", "rewritten", "gray", "paper"):
        assert ram.index.lookup(term) == mapped.index.lookup(term)
    a = ram.engine.search("rewritten removal", k=5)
    b = mapped.engine.search("rewritten removal", k=5)
    assert a.scores() == b.scores()
    assert a.signatures() == b.signatures()
