"""Batch-expansion candidate kernels (scalar / numpy / numba).

A batch step gathers the frontier batch's edges from the CSR arrays
(:func:`gather_in` / :func:`gather_out`) and computes *candidates* —
the (edge, keyword) pairs whose tentative value beats a snapshot of the
state taken at batch start:

* :func:`dist_candidates` — relaxations ``nd = dist[i][src] + w``
  that would improve ``dist[i][tgt]``;
* :func:`spread_candidates` — activation contributions
  ``mu * a(src, i) * (1/w) / norm(src)`` that would raise
  ``a(tgt, i)`` (max mode) or clear the contribution floor (sum mode).

The snapshot prefilter is sound: distances only decrease and (max-mode)
activations only increase, so a candidate that fails against the
snapshot also fails against any later state; improvements enabled
mid-batch are delivered by the cascades in
:mod:`repro.core.kernels.state`, which flow through the batch's
upfront-registered parent links.

Every backend returns candidates in one canonical order — edge-major,
keyword-minor — and identical IEEE float64 arithmetic, so downstream
application (shared scalar code) is bit-identical across backends.
The numba variants compile lazily on first use; callers never reach
them unless :func:`repro.core.kernels.backend.resolve_backend` said
numba is importable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.kernels.csr import GraphCSR

__all__ = [
    "gather_in",
    "gather_out",
    "dist_candidates",
    "spread_candidates",
]

_EMPTY_I = np.zeros(0, dtype=np.int64)
_EMPTY_F = np.zeros(0, dtype=np.float64)


def _gather(
    indptr: np.ndarray, nbr: np.ndarray, w: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if len(nodes) == 0:
        return _EMPTY_I, _EMPTY_I, _EMPTY_F
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I, _EMPTY_I, _EMPTY_F
    edge_index = np.concatenate(
        [np.arange(s, s + c) for s, c in zip(starts.tolist(), counts.tolist())]
    )
    rep = np.repeat(nodes, counts).astype(np.int64, copy=False)
    return nbr[edge_index].astype(np.int64, copy=False), rep, w[edge_index]


def gather_in(
    csr: GraphCSR, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """In-edges of the batch: ``(neighbour, expanding_node, weight)``
    per edge ``(neighbour -> expanding_node)``, graph order."""
    return _gather(csr.in_indptr, csr.in_src, csr.in_w, nodes)


def gather_out(
    csr: GraphCSR, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Out-edges of the batch: ``(neighbour, expanding_node, weight)``
    per edge ``(expanding_node -> neighbour)``, graph order."""
    return _gather(csr.out_indptr, csr.out_dst, csr.out_w, nodes)


# ----------------------------------------------------------------------
# distance relaxation candidates
# ----------------------------------------------------------------------
def dist_candidates(
    backend: str,
    dist: np.ndarray,
    tgt: np.ndarray,
    src: np.ndarray,
    w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(e_idx, i_idx, nd)`` of relaxations beating the snapshot."""
    if len(w) == 0:
        return _EMPTY_I, _EMPTY_I, _EMPTY_F
    if backend == "vectorized":
        nd_all = dist[:, src] + w[None, :]
        better = nd_all < dist[:, tgt]
        e_idx, i_idx = np.nonzero(better.T)
        return e_idx, i_idx, nd_all[i_idx, e_idx]
    if backend == "numba":
        kernels = _numba_kernels()
        cap = len(w) * dist.shape[0]
        e_out = np.empty(cap, dtype=np.int64)
        i_out = np.empty(cap, dtype=np.int64)
        nd_out = np.empty(cap, dtype=np.float64)
        count = kernels[0](dist, tgt, src, w, e_out, i_out, nd_out)
        return e_out[:count], i_out[:count], nd_out[:count]
    # scalar reference: same arrays, same arithmetic, python loops
    k = dist.shape[0]
    src_l = src.tolist()
    tgt_l = tgt.tolist()
    w_l = w.tolist()
    e_acc: list[int] = []
    i_acc: list[int] = []
    nd_acc: list[float] = []
    for e in range(len(w_l)):
        s = src_l[e]
        t = tgt_l[e]
        wt = w_l[e]
        for i in range(k):
            nd = dist[i, s] + wt
            if nd < dist[i, t]:
                e_acc.append(e)
                i_acc.append(i)
                nd_acc.append(float(nd))
    return (
        np.array(e_acc, dtype=np.int64),
        np.array(i_acc, dtype=np.int64),
        np.array(nd_acc, dtype=np.float64),
    )


# ----------------------------------------------------------------------
# activation spread candidates
# ----------------------------------------------------------------------
def spread_candidates(
    backend: str,
    act: np.ndarray,
    tgt: np.ndarray,
    src: np.ndarray,
    w: np.ndarray,
    norm: np.ndarray,
    mu: float,
    combine: str,
    min_contribution: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(e_idx, i_idx, contribution)`` of spreads worth applying.

    ``norm`` is the per-source activation normalizer ``sum(1/w)``
    gathered per edge.
    """
    if len(w) == 0:
        return _EMPTY_I, _EMPTY_I, _EMPTY_F
    want_sum = combine == "sum"
    if backend == "vectorized":
        contr = (mu * act[:, src]) * (1.0 / w)[None, :] / norm[None, :]
        if want_sum:
            better = contr > min_contribution
        else:
            better = contr > act[:, tgt]
        e_idx, i_idx = np.nonzero(better.T)
        return e_idx, i_idx, contr[i_idx, e_idx]
    if backend == "numba":
        kernels = _numba_kernels()
        cap = len(w) * act.shape[0]
        e_out = np.empty(cap, dtype=np.int64)
        i_out = np.empty(cap, dtype=np.int64)
        c_out = np.empty(cap, dtype=np.float64)
        count = kernels[1](
            act, tgt, src, w, norm, mu, want_sum, min_contribution,
            e_out, i_out, c_out,
        )
        return e_out[:count], i_out[:count], c_out[:count]
    k = act.shape[0]
    src_l = src.tolist()
    tgt_l = tgt.tolist()
    w_l = w.tolist()
    norm_l = norm.tolist()
    e_acc: list[int] = []
    i_acc: list[int] = []
    c_acc: list[float] = []
    for e in range(len(w_l)):
        s = src_l[e]
        t = tgt_l[e]
        wt = w_l[e]
        nm = norm_l[e]
        for i in range(k):
            contribution = (mu * act[i, s]) * (1.0 / wt) / nm
            if want_sum:
                ok = contribution > min_contribution
            else:
                ok = contribution > act[i, t]
            if ok:
                e_acc.append(e)
                i_acc.append(i)
                c_acc.append(float(contribution))
    return (
        np.array(e_acc, dtype=np.int64),
        np.array(i_acc, dtype=np.int64),
        np.array(c_acc, dtype=np.float64),
    )


# ----------------------------------------------------------------------
# numba backend (lazy compile; guarded by resolve_backend upstream)
# ----------------------------------------------------------------------
_NUMBA_CACHE: Optional[tuple] = None


def _numba_kernels() -> tuple:
    global _NUMBA_CACHE
    if _NUMBA_CACHE is not None:
        return _NUMBA_CACHE
    import numba

    @numba.njit(cache=False)
    def dist_kernel(dist, tgt, src, w, e_out, i_out, nd_out):  # pragma: no cover
        count = 0
        k = dist.shape[0]
        for e in range(w.shape[0]):
            s = src[e]
            t = tgt[e]
            wt = w[e]
            for i in range(k):
                nd = dist[i, s] + wt
                if nd < dist[i, t]:
                    e_out[count] = e
                    i_out[count] = i
                    nd_out[count] = nd
                    count += 1
        return count

    @numba.njit(cache=False)
    def spread_kernel(  # pragma: no cover
        act, tgt, src, w, norm, mu, want_sum, floor, e_out, i_out, c_out
    ):
        count = 0
        k = act.shape[0]
        for e in range(w.shape[0]):
            s = src[e]
            t = tgt[e]
            wt = w[e]
            nm = norm[e]
            for i in range(k):
                contribution = (mu * act[i, s]) * (1.0 / wt) / nm
                if want_sum:
                    ok = contribution > floor
                else:
                    ok = contribution > act[i, t]
                if ok:
                    e_out[count] = e
                    i_out[count] = i
                    c_out[count] = contribution
                    count += 1
        return count

    _NUMBA_CACHE = (dist_kernel, spread_kernel)
    return _NUMBA_CACHE
