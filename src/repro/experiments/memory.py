"""MEM + PRES: Section 5.1's infrastructure measurements.

Memory: the paper's compact in-memory graph index takes
``16|V| + 8|E|`` bytes; our CSR (int64 indptr + float64 prestige per
vertex, int32 target + float32 weight per combined edge) matches the
same formula, validated here on all three datasets.

Prestige: the paper reports "about a minute" to compute node prestige
on its (2M-node) graphs; we time our biased PageRank across scales to
show the same near-linear growth.
"""

from __future__ import annotations

import time

from repro.experiments.common import Report, build_bench, fmt
from repro.graph.prestige import compute_prestige

__all__ = ["run_memory", "run_prestige"]


def run_memory(*, scales: tuple[float, ...] = (0.5, 1.0, 2.0)) -> Report:
    report = Report(
        experiment="MEM",
        title="Compact graph index footprint vs the paper's 16|V|+8|E| bytes",
        headers=[
            "dataset",
            "nodes",
            "edges",
            "measured bytes",
            "16V+8E",
            "measured/formula",
        ],
    )
    for dataset in ("dblp", "imdb", "patents"):
        for scale in scales:
            bench = build_bench(dataset, scale)
            graph = bench.engine.graph
            measured = graph.compact_nbytes()
            formula = 16 * graph.num_nodes + 8 * graph.num_edges
            report.rows.append(
                [
                    f"{dataset} x{scale:g}",
                    fmt(graph.num_nodes),
                    fmt(graph.num_edges),
                    fmt(measured),
                    fmt(formula),
                    fmt(measured / formula if formula else None),
                ]
            )
    report.notes.append(
        "edges counts forward+backward; the +8 bytes slack per graph is "
        "the CSR indptr's extra terminating slot"
    )
    return report


def run_prestige(*, scales: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)) -> Report:
    report = Report(
        experiment="PRES",
        title="Node-prestige (biased PageRank) precomputation cost",
        headers=["dataset", "nodes", "edges", "seconds"],
    )
    for scale in scales:
        bench = build_bench("dblp", scale)
        graph = bench.engine.graph
        start = time.perf_counter()
        compute_prestige(graph)
        elapsed = time.perf_counter() - start
        report.rows.append(
            [
                f"dblp x{scale:g}",
                fmt(graph.num_nodes),
                fmt(graph.num_edges),
                fmt(elapsed, 3),
            ]
        )
    report.notes.append(
        "paper: about one minute at 2M nodes (Java, 2.4GHz P4); growth "
        "here should look near-linear in graph size"
    )
    return report
