"""ShardedQueryService end-to-end: parity with the in-process engine,
structured errors, caching affinity, metrics aggregation, warmup."""

import pytest

from repro.cluster import ShardedQueryService
from repro.errors import DeadlineExceededError, SnapshotError
from repro.service.service import QueryRequest


def test_search_matches_local_engine(sharded, toy_engine_session):
    response = sharded.search("alpha", "gray transaction", k=3)
    assert response.ok, response.error
    local = toy_engine_session.search("gray transaction", k=3)
    assert response.result.scores() == local.scores()
    assert response.result.signatures() == local.signatures()
    assert response.request.dataset == "alpha"


def test_search_accepts_request_object_and_rejects_overrides(sharded):
    request = QueryRequest("alpha", "gray transaction", k=2)
    response = sharded.search(request)
    assert response.ok
    assert response.request is request  # identity, not a wire copy
    with pytest.raises(ValueError, match="not both"):
        sharded.search(request, k=5)
    with pytest.raises(ValueError, match="query is required"):
        sharded.search("alpha")


def test_repeat_query_hits_worker_cache(sharded):
    first = sharded.search("beta", "selinger access", k=3)
    assert first.ok
    # Deterministic routing sends the same logical query (whatever its
    # whitespace) to the same replica, where the result cache holds it.
    second = sharded.search("beta", "selinger   access", k=3)
    assert second.ok
    assert second.cached is True
    assert second.result.scores() == first.result.scores()


def test_search_many_mixed_batch_in_order(sharded, toy_engine_session):
    batch = [
        ("alpha", "gray transaction"),
        QueryRequest("beta", "postgres stonebraker", algorithm="si-backward"),
        ("alpha", "gray transaction", "mi-backward"),
        ("missing-dataset", "x"),
        ("alpha", "zzz-no-such-keyword"),
        ("alpha", "gray", "bogus-algorithm"),  # malformed: bad algorithm
    ]
    responses = sharded.search_many(batch)
    assert len(responses) == len(batch)
    ok = [r.ok for r in responses]
    assert ok == [True, True, True, False, False, False]
    assert responses[3].error_type == "UnknownDatasetError"
    assert responses[4].error_type == "KeywordNotFoundError"
    assert responses[5].error_type == "ValueError"
    assert responses[5].request is None  # malformed before dispatch

    local = toy_engine_session.search("gray transaction")
    assert responses[0].result.scores() == local.scores()
    mi = toy_engine_session.search("gray transaction", algorithm="mi-backward")
    assert responses[2].result.scores() == mi.scores()


def test_deadline_miss_is_structured(sharded):
    # A sleep on one worker holds it busy; a routed request then misses
    # a tight supervisor-side deadline but must not raise or hang.
    worker_id = sharded.router.route("alpha", (("gray",), "bidirectional"))
    sleep_future = sharded.pool.submit(worker_id, "sleep", 1.2)
    response = sharded.search("alpha", "gray", timeout=0.2)
    assert not response.ok
    assert response.error_type == DeadlineExceededError.__name__
    with pytest.raises(DeadlineExceededError):
        response.raise_for_error()
    sleep_future.result(timeout=30)  # drain before the next test


def test_warmup_reports_every_dataset(sharded):
    timings = sharded.warmup()
    assert sorted(timings) == ["alpha", "beta"]
    assert all(seconds >= 0.0 for seconds in timings.values())
    only = sharded.warmup(["alpha"])
    assert sorted(only) == ["alpha"]


def test_datasets_and_health(sharded):
    assert sharded.datasets() == ["alpha", "beta"]
    health = sharded.health()
    assert health["workers"] == 2
    assert health["alive"] == 2
    assert health["datasets"] == ["alpha", "beta"]


def test_warmup_from_corrupt_snapshot_raises_snapshot_error(tmp_path):
    corrupt = tmp_path / "corrupt.snap"
    corrupt.write_bytes(b"this is not a snapshot")
    with ShardedQueryService(
        {"bad": corrupt}, num_workers=1, health_interval=0.2
    ) as service:
        # The worker's SnapshotError crosses the boundary as an error
        # payload and is re-raised here with its original type — never
        # mistaken for a timings dict.
        with pytest.raises(SnapshotError, match="cannot read snapshot"):
            service.warmup()


def test_metrics_merge_cluster_view(sharded):
    sharded.search("alpha", "gray transaction")
    sharded.search("beta", "postgres design")
    metrics = sharded.metrics()
    assert metrics["requests_total"] >= 2
    assert "bidirectional" in metrics["algorithms"]
    entry = metrics["algorithms"]["bidirectional"]
    assert "latency_samples" not in entry  # stripped by default
    assert entry["latency_p50"] is not None
    cluster = metrics["cluster"]
    assert cluster["workers"] == 2
    assert cluster["alive"] == 2
    assert set(cluster["assignments"]) == {"0", "1"}
    assert set(cluster["per_worker"]) <= {"0", "1"}
    # Registered datasets union across workers.
    assert metrics["datasets"]["registered"] == ["alpha", "beta"]

    with_samples = sharded.metrics(include_samples=True)
    samples = with_samples["algorithms"]["bidirectional"]["latency_samples"]
    assert isinstance(samples, list) and samples
