"""Property tests: search invariants on random graphs.

The heavyweight correctness property — emitted trees are valid, the
best score matches the exhaustive oracle, duplicates never surface —
checked across hypothesis-generated graphs and keyword sets for all
three algorithms.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.backward_mi import BackwardExpandingSearch
from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.exhaustive import exhaustive_answers
from repro.core.params import SearchParams
from repro.graph.digraph import DataGraph

from tests.helpers import validate_answer_tree

EXHAUST = SearchParams(max_results=300, dmax=30, max_combos_per_node=256)


@st.composite
def search_cases(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    edge_candidates = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.2, max_value=4.0, allow_nan=False),
            ),
            min_size=n - 1,
            max_size=3 * n,
        )
    )
    edges = {}
    for u, v, w in edge_candidates:
        if u != v and (u, v) not in edges:
            edges[(u, v)] = w
    k = draw(st.integers(min_value=1, max_value=3))
    keyword_sets = [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=3,
                )
            )
        )
        for _ in range(k)
    ]
    return n, edges, keyword_sets


def build_graph_from(n, edges):
    dg = DataGraph()
    for i in range(n):
        dg.add_node(f"n{i}")
    for (u, v), w in edges.items():
        dg.add_edge(u, v, w)
    return dg.freeze()


@pytest.mark.parametrize(
    "cls",
    [BidirectionalSearch, SingleIteratorBackwardSearch, BackwardExpandingSearch],
)
@given(case=search_cases())
@settings(max_examples=40, deadline=None)
def test_search_invariants(cls, case):
    n, edges, keyword_sets = case
    graph = build_graph_from(n, edges)
    keywords = tuple(f"k{i}" for i in range(len(keyword_sets)))
    result = cls(graph, keywords, keyword_sets, params=EXHAUST).run()
    oracle = exhaustive_answers(graph, keyword_sets)

    # 1. Existence agreement: answers exist iff the oracle has some.
    assert bool(result.answers) == bool(oracle)

    # 2. Structural validity + score consistency of every answer.
    for answer in result.answers:
        validate_answer_tree(graph, keyword_sets, answer.tree)

    # 3. No duplicate skeletons in the output.
    signatures = result.signatures()
    assert len(signatures) == len(set(signatures))

    # 4. Top answer at least as good as the oracle's (equal for the
    #    single-iterator model; MI may exceed it, see Section 4.6).
    if oracle:
        assert result.best().score >= oracle[0].score - 1e-9

    # 5. Stats sanity.
    assert result.stats.answers_output == len(result.answers)
    assert result.stats.nodes_explored <= result.stats.nodes_touched + n


# The pinned example: node 2 reaches both keywords through two
# equal-cost paths; Bidirectional's table used to pick the chain
# through node 1 for both, the minimality filter discarded it, and the
# oracle's equally-scored star through nodes 0 and 1 never surfaced.
# Found by hypothesis; kept as a permanent regression example for the
# canonical tie-decomposition emission (repro.core.ties).
@example(
    case=(
        3,
        {(0, 1): 1.0, (0, 2): 1.0, (1, 2): 1.0},
        [frozenset({0, 1}), frozenset({1})],
    )
)
@given(case=search_cases())
@settings(max_examples=30, deadline=None)
def test_oracle_answers_covered(case):
    """Every oracle tree (the final best-per-root tree) is emitted by
    both single-iterator algorithms at exhaustion.  Their outputs may
    additionally contain superseded-path trees — emission fires on
    every path-length update (Figure 3), and activation ordering can
    discover a worse path before a better one — so set equality does
    not hold; coverage of the oracle does, *unconditionally*: under
    shortest-path ties the searches emit the same canonical equal-cost
    decomposition the oracle builds (repro.core.ties), so tied trees
    are no longer excused."""
    n, edges, keyword_sets = case
    graph = build_graph_from(n, edges)
    keywords = tuple(f"k{i}" for i in range(len(keyword_sets)))
    oracle = exhaustive_answers(graph, keyword_sets)
    oracle_signatures = {tree.signature() for tree in oracle}
    si = SingleIteratorBackwardSearch(
        graph, keywords, keyword_sets, params=EXHAUST
    ).run()
    bidi = BidirectionalSearch(graph, keywords, keyword_sets, params=EXHAUST).run()
    for result in (si, bidi):
        missing = oracle_signatures - set(result.signatures())
        assert not missing, (
            f"{result.algorithm} missed oracle trees: "
            + "; ".join(
                str(tree) for tree in oracle if tree.signature() in missing
            )
        )


@given(case=search_cases(), budget=st.integers(min_value=1, max_value=20))
@settings(max_examples=30, deadline=None)
def test_node_budget_respected(case, budget):
    n, edges, keyword_sets = case
    graph = build_graph_from(n, edges)
    keywords = tuple(f"k{i}" for i in range(len(keyword_sets)))
    params = EXHAUST.with_(node_budget=budget)
    for cls in (BidirectionalSearch, SingleIteratorBackwardSearch):
        result = cls(graph, keywords, keyword_sets, params=params).run()
        assert result.stats.nodes_explored <= budget
