"""Wire round-trips: service dataclasses <-> JSON-safe dicts."""

import json

import pytest

from repro.core.answer import SearchResult
from repro.core.params import SearchParams
from repro.core.stats import SearchStats
from repro.service.service import QueryRequest, QueryResponse
from repro.service.wire import (
    error_response_dict,
    params_from_dict,
    params_to_dict,
    request_from_dict,
    request_to_dict,
    response_from_dict,
    response_to_dict,
    result_from_dict,
    result_to_dict,
)


def test_params_round_trip():
    params = SearchParams(mu=0.3, lam=0.5, dmax=4, max_results=7)
    assert params_from_dict(params_to_dict(params)) == params


def test_params_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown fields"):
        params_from_dict({"mu": 0.5, "bogus": 1})


def test_request_round_trip_string_query():
    request = QueryRequest("dblp", "gray transaction", k=5, timeout=2.0)
    data = request_to_dict(request)
    json.dumps(data)  # JSON-safe
    assert request_from_dict(data) == request


def test_request_round_trip_tuple_query_and_params():
    request = QueryRequest(
        "dblp",
        ("gray", "transaction"),
        algorithm="mi-backward",
        params=SearchParams(dmax=4),
        use_cache=False,
    )
    data = request_to_dict(request)
    json.dumps(data)
    restored = request_from_dict(data)
    assert restored == request
    assert isinstance(restored.query, tuple)


def test_request_rejects_wrong_field_types():
    # Boundary validation: an HTTP client's string timeout must be a
    # structured ValueError here, not a TypeError deep in the service.
    base = {"dataset": "d", "query": "q"}
    for field, value in [
        ("timeout", "5"),
        ("k", "10"),
        ("k", True),
        ("dataset", 3),
        ("query", 3),
        ("query", ["ok", 7]),
        ("algorithm", 1),
        ("use_cache", "yes"),
        ("params", "not an object"),
    ]:
        with pytest.raises(ValueError):
            request_from_dict({**base, field: value})


def test_request_defaults_and_validation():
    restored = request_from_dict({"dataset": "d", "query": "q"})
    assert restored.algorithm == "bidirectional"
    assert restored.use_cache is True
    with pytest.raises(ValueError, match="missing"):
        request_from_dict({"dataset": "d"})
    with pytest.raises(ValueError, match="unknown fields"):
        request_from_dict({"dataset": "d", "query": "q", "zzz": 1})
    with pytest.raises(ValueError):
        request_from_dict("not a dict")


def test_result_round_trip_preserves_answers_and_stats(toy_engine):
    result = toy_engine.search("gray transaction", k=3)
    data = result_to_dict(result)
    json.dumps(data)
    restored = result_from_dict(data)
    assert restored.algorithm == result.algorithm
    assert restored.keywords == result.keywords
    assert restored.scores() == result.scores()
    assert restored.signatures() == result.signatures()
    assert [a.tree.paths for a in restored] == [a.tree.paths for a in result]
    assert restored.stats.nodes_explored == result.stats.nodes_explored
    assert restored.stats.elapsed == pytest.approx(result.stats.elapsed)


def test_response_round_trip_success(toy_engine):
    result = toy_engine.search("gray transaction", k=2)
    response = QueryResponse(
        request=QueryRequest("toy", "gray transaction", k=2),
        result=result,
        cached=True,
        elapsed=0.5,
    )
    data = response_to_dict(response)
    json.dumps(data)
    restored = response_from_dict(data)
    assert restored.ok
    assert restored.cached is True
    assert restored.elapsed == 0.5
    assert restored.request == response.request
    assert restored.result.scores() == result.scores()


def test_request_round_trip_trace_fields():
    request = QueryRequest(
        "dblp",
        "gray",
        request_id="req-42",
        trace_id="a" * 32,
        parent_span_id="b" * 16,
    )
    data = request_to_dict(request)
    json.dumps(data)
    assert data["trace_id"] == "a" * 32
    assert data["parent_span_id"] == "b" * 16
    restored = request_from_dict(data)
    assert restored == request
    assert restored.trace_id == "a" * 32
    assert restored.parent_span_id == "b" * 16


def test_request_trace_fields_default_to_none():
    restored = request_from_dict({"dataset": "d", "query": "q"})
    assert restored.trace_id is None
    assert restored.parent_span_id is None


def test_request_rejects_non_string_trace_fields():
    base = {"dataset": "d", "query": "q"}
    with pytest.raises(ValueError):
        request_from_dict({**base, "trace_id": 7})
    with pytest.raises(ValueError):
        request_from_dict({**base, "parent_span_id": ["x"]})


def test_response_round_trip_identity_fields(toy_engine):
    spans = [{"name": "worker", "trace_id": "c" * 32, "span_id": "d" * 16}]
    response = QueryResponse(
        request=QueryRequest("toy", "gray"),
        result=toy_engine.search("gray", k=1),
        request_id="req-9",
        trace_id="c" * 32,
        spans=spans,
    )
    data = response_to_dict(response)
    json.dumps(data)
    restored = response_from_dict(data)
    assert restored.request_id == "req-9"
    assert restored.trace_id == "c" * 32
    assert restored.spans == spans


def test_error_response_dict_derives_identity_from_request():
    wire_request = {
        "dataset": "d",
        "query": "q",
        "request_id": "req-7",
        "trace_id": "e" * 32,
    }
    data = error_response_dict(wire_request, "boom", "RuntimeError")
    assert data["request_id"] == "req-7"
    assert data["trace_id"] == "e" * 32
    assert data["spans"] is None
    restored = response_from_dict(data)
    assert not restored.ok
    assert restored.request_id == "req-7"
    assert restored.trace_id == "e" * 32


def test_error_response_dict_tolerates_malformed_request():
    data = error_response_dict("not a dict", "boom", "ValueError")
    assert data["request_id"] is None
    assert data["trace_id"] is None


def test_search_stats_round_trip_pins_counters():
    # Pin: cluster responses must keep explored/touched counts, the
    # cost vector, and the elapsed timer across the wire — dashboards
    # and the workload sketch aggregate these.
    stats = SearchStats(
        nodes_explored=11,
        nodes_touched=29,
        edges_explored=41,
        answers_generated=5,
        answers_output=3,
        duplicates_discarded=2,
        pops_in=7,
        heap_ops=13,
    )
    stats.finished_at = stats.started_at + 0.125
    data = stats.as_dict()
    assert data == {
        "nodes_explored": 11,
        "nodes_touched": 29,
        "edges_explored": 41,
        "answers_generated": 5,
        "answers_output": 3,
        "duplicates_discarded": 2,
        "pops_in": 7,
        "pops_out": 0,
        "kernel_batches": 0,
        "candidates_generated": 0,
        "candidates_surviving": 0,
        "heap_ops": 13,
        "cascade_touches": 0,
        "emit_attempts": 0,
        "gate_skips": 0,
        "resolve_hits": 0,
        "elapsed": pytest.approx(0.125),
    }
    wire = result_to_dict(
        SearchResult(
            algorithm="bidirectional", keywords=("gray",), answers=[], stats=stats
        )
    )
    restored = result_from_dict(wire).stats
    assert restored.nodes_explored == 11
    assert restored.nodes_touched == 29
    assert restored.edges_explored == 41
    assert restored.pops_in == 7
    assert restored.heap_ops == 13
    assert restored.elapsed == pytest.approx(0.125)


def test_response_round_trip_error_drops_exception_keeps_fields():
    response = QueryResponse(
        request=None,
        error="keyword 'zzz' matches no node in the index",
        error_type="KeywordNotFoundError",
        exception=RuntimeError("not serializable"),
    )
    restored = response_from_dict(response_to_dict(response))
    assert not restored.ok
    assert restored.error_type == "KeywordNotFoundError"
    assert restored.exception is None
    with pytest.raises(RuntimeError, match="KeywordNotFoundError"):
        restored.raise_for_error()
