"""Near queries and sum-combining activation (paper footnote 6)."""

import pytest

from repro.core.activation import ActivationTable
from repro.core.near import NearSearch

from tests.helpers import build_graph


class TestSumCombine:
    def test_sum_accumulates_multiple_edges(self):
        # 0 -> 2 and 1 -> 2 both seeded: node 3 with edges to both
        # receives the sum of both contributions in sum mode, the max
        # in max mode.
        g = build_graph(3, [(0, 2), (1, 2)], prestige=[0.25, 0.25, 0.5])
        for combine in ("max", "sum"):
            table = ActivationTable(
                g, [frozenset({0}), frozenset({1})], mu=0.5, combine=combine
            )
            table.seed_all()
            table.spread_forward(0, {})
            table.spread_forward(1, {})
            if combine == "sum":
                assert table.activation(2, 0) > 0 and table.activation(2, 1) > 0
            total_sum = table.total(2)
        # Re-spreading in sum mode adds again (event semantics)...
        table.spread_forward(0, {})
        assert table.total(2) > total_sum

    def test_max_mode_respreading_is_idempotent(self):
        g = build_graph(2, [(0, 1)], prestige=[0.6, 0.4])
        table = ActivationTable(g, [frozenset({0})], mu=0.5, combine="max")
        table.seed_all()
        table.spread_forward(0, {})
        once = table.total(1)
        table.spread_forward(0, {})
        assert table.total(1) == pytest.approx(once)

    def test_sum_cascade_terminates_on_cycle(self):
        # 0 <-> 1 cycle through forward+backward edges: the cascade must
        # decay below the contribution floor and stop.
        g = build_graph(2, [(0, 1), (1, 0)], prestige=[0.5, 0.5])
        table = ActivationTable(
            g, [frozenset({0})], mu=0.9, combine="sum", min_contribution=1e-6
        )
        table.seed_all()
        parents = {0: {1: 1.0}, 1: {0: 1.0}}
        table.spread_backward(0, parents)  # must return
        assert table.total(1) > 0.0

    def test_combine_validation(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            ActivationTable(g, [frozenset({0})], combine="avg")
        with pytest.raises(ValueError):
            ActivationTable(g, [frozenset({0})], min_contribution=0.0)


class TestNearSearch:
    def graph(self):
        # Chain: k1 - a - b - k2, plus an outlier z hanging off k1.
        #   0(k1) -> 1(a) -> 2(b) -> 3(k2); 4(z) -> 0
        return build_graph(5, [(0, 1), (1, 2), (2, 3), (4, 0)])

    def test_nodes_between_keywords_rank_high(self):
        g = self.graph()
        search = NearSearch(g, [frozenset({0}), frozenset({3})])
        result = search.run(k=3)
        assert result.ranking
        top_nodes = result.nodes()
        # a and b sit between both keywords; z touches only one.
        assert set(top_nodes[:2]) == {1, 2}

    def test_keyword_nodes_excluded_by_default(self):
        g = self.graph()
        result = NearSearch(g, [frozenset({0})]).run(k=10)
        assert 0 not in result.nodes()

    def test_keyword_nodes_includable(self):
        g = self.graph()
        result = NearSearch(
            g, [frozenset({0})], include_keyword_nodes=True
        ).run(k=10)
        assert 0 in result.nodes()

    def test_scores_sorted_descending(self):
        g = self.graph()
        result = NearSearch(g, [frozenset({0}), frozenset({3})]).run(k=None)
        scores = [score for _, score in result.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_node_budget_respected(self):
        g = self.graph()
        search = NearSearch(g, [frozenset({0})], node_budget=2)
        result = search.run()
        assert result.stats.nodes_explored <= 2

    def test_validation(self):
        g = self.graph()
        with pytest.raises(ValueError):
            NearSearch(g, [])
        with pytest.raises(ValueError):
            NearSearch(g, [frozenset({0})], node_budget=0)


class TestEngineNear:
    def test_near_via_engine(self, toy_engine):
        result = toy_engine.near("gray vldb", k=5)
        assert len(result) <= 5
        assert all(score > 0 for _, score in result)
        # Gray's VLDB papers sit between the keywords and should appear.
        graph = toy_engine.graph
        tables = {graph.table(node) for node in result.nodes()}
        assert "paper" in tables or "writes" in tables

    def test_bidirectional_accepts_sum_combine(self, toy_engine):
        from repro.core.params import SearchParams

        result = toy_engine.search(
            "gray transaction",
            params=SearchParams(activation_combine="sum"),
        )
        assert result.answers  # same answers, different exploration order
