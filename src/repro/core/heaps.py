"""Lazy-deletion priority queues used by every frontier.

Python's :mod:`heapq` has no decrease-key; the standard idiom — push a
fresh entry on every priority change and skip stale entries at pop time
— is exactly what the paper's queues need: `Qin`/`Qout` priorities only
*increase* (activation) and SI-Backward priorities only *decrease*
(distance), and both directions are handled by validating the popped
entry against the current priority.

Ties break on a monotone sequence number so runs are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, Iterator, Optional

__all__ = ["LazyMinHeap", "LazyMaxHeap"]


class LazyMinHeap:
    """Min-heap of ``(priority, item)`` with lazy re-prioritization.

    ``push`` both inserts new items and reprioritizes existing ones.
    ``pop`` returns the item with the smallest *current* priority.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Hashable]] = []
        self._priority: dict[Hashable, float] = {}
        self._seq = itertools.count()

    def push(self, item: Hashable, priority: float) -> None:
        self._priority[item] = priority
        heapq.heappush(self._heap, (priority, next(self._seq), item))

    def pop(self) -> tuple[Hashable, float]:
        """Remove and return ``(item, priority)``; raises IndexError if empty."""
        while self._heap:
            priority, _, item = heapq.heappop(self._heap)
            if self._priority.get(item) == priority:
                del self._priority[item]
                return item, priority
        raise IndexError("pop from empty heap")

    def peek_priority(self) -> Optional[float]:
        """Current best priority, or None when empty."""
        while self._heap:
            priority, _, item = self._heap[0]
            if self._priority.get(item) == priority:
                return priority
            heapq.heappop(self._heap)
        return None

    def remove(self, item: Hashable) -> None:
        """Lazily remove ``item`` if present."""
        self._priority.pop(item, None)

    def get_priority(self, item: Hashable) -> Optional[float]:
        """Current priority of ``item``, or None if absent."""
        return self._priority.get(item)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._priority

    def __len__(self) -> int:
        return len(self._priority)

    def __bool__(self) -> bool:
        return bool(self._priority)

    def items(self) -> Iterator[tuple[Hashable, float]]:
        """Live ``(item, priority)`` pairs, arbitrary order.

        Used by the bound computation to scan the frontier; cost is the
        number of *live* entries, not heap size.
        """
        return iter(self._priority.items())


class LazyMaxHeap(LazyMinHeap):
    """Max-heap counterpart (activation-ordered queues)."""

    def push(self, item: Hashable, priority: float) -> None:
        self._priority[item] = priority
        heapq.heappush(self._heap, (-priority, next(self._seq), item))

    def pop(self) -> tuple[Hashable, float]:
        while self._heap:
            neg, _, item = heapq.heappop(self._heap)
            if self._priority.get(item) == -neg:
                del self._priority[item]
                return item, -neg
        raise IndexError("pop from empty heap")

    def peek_priority(self) -> Optional[float]:
        while self._heap:
            neg, _, item = self._heap[0]
            if self._priority.get(item) == -neg:
                return -neg
            heapq.heappop(self._heap)
        return None
