"""FIG6a bench: MI-Backward vs SI-Backward by keyword count.

Paper Figure 6(a): the single merged iterator wins by about an order of
magnitude except for 2-keyword small-origin queries.  We assert the
relaxed shape: the aggregate MI/SI time ratio across all points is > 1,
and the large-origin ratios dominate the small-origin ones on average.
"""

import math

from repro.experiments.fig6 import run_fig6a

from conftest import as_float, run_report


def _ratios(report, col):
    out = []
    for row in report.rows:
        if row[col] != "-":
            out.append(as_float(row[col]))
    return out


def test_fig6a_mi_vs_si(benchmark):
    report = run_report(benchmark, run_fig6a)
    assert len(report.rows) == 6  # keyword counts 2..7

    small = _ratios(report, 1)
    large = _ratios(report, 2)
    all_ratios = small + large
    assert all_ratios, "no measurable queries"
    geomean = math.exp(sum(math.log(r) for r in all_ratios) / len(all_ratios))
    assert geomean > 1.0, "SI must beat MI in aggregate"
