"""Slow-query log: a bounded ring of requests that crossed a threshold.

Each entry captures everything needed to debug the query after the
fact without re-running it: the request summary, the elapsed seconds,
and the full span tree as it stood when the response was produced.
Recording is O(1) and lock-cheap; the log is read rarely (``GET
/debug/slow``) and written rarely (only queries over the threshold).

``threshold=None`` disables recording entirely; ``threshold=0.0``
records every query (useful in tests and when flight-recording a
workload).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    def __init__(
        self, threshold: Optional[float] = 1.0, capacity: int = 128
    ) -> None:
        if threshold is not None and threshold < 0:
            raise ValueError(f"threshold must be >= 0 or None, got {threshold}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold = threshold
        self.capacity = capacity
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(
        self,
        *,
        elapsed: float,
        trace_id: Optional[str] = None,
        request: Optional[dict] = None,
        error_type: Optional[str] = None,
        span_tree: Optional[dict] = None,
        extra: Optional[dict[str, Any]] = None,
    ) -> bool:
        """Record the query if it is slow enough; return whether it was."""
        if self.threshold is None or elapsed < self.threshold:
            return False
        entry = {
            "recorded_at": time.time(),
            "elapsed": elapsed,
            "trace_id": trace_id,
            "request": request,
            "error_type": error_type,
            "span_tree": span_tree,
        }
        if extra:
            entry.update(extra)
        with self._lock:
            self._entries.append(entry)
        return True

    def entries(self) -> list[dict]:
        """Newest first."""
        with self._lock:
            return [dict(entry) for entry in reversed(self._entries)]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
