"""Property tests: tokenizer and inverted index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted import InvertedIndex
from repro.index.tokenizer import tokenize

texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF), max_size=80
)


@given(text=texts)
@settings(max_examples=200)
def test_tokens_are_normalized(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert token
        assert all(c.isascii() and (c.isdigit() or c.isalpha()) for c in token)


@given(text=texts)
@settings(max_examples=200)
def test_tokenize_idempotent(text):
    tokens = list(tokenize(text))
    assert list(tokenize(" ".join(tokens))) == tokens


@given(
    docs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), texts),
        max_size=30,
    )
)
@settings(max_examples=100)
def test_index_lookup_matches_reference(docs):
    index = InvertedIndex()
    reference: dict[str, set[int]] = {}
    for node, text in docs:
        index.add_text(node, text)
        for token in tokenize(text):
            reference.setdefault(token, set()).add(node)
    for term, nodes in reference.items():
        assert index.lookup(term) == nodes
        assert index.frequency(term) == len(nodes)
    assert index.vocabulary_size() == len(reference)


@given(
    docs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), texts),
        max_size=20,
    ),
    relation_nodes=st.sets(st.integers(min_value=100, max_value=120), max_size=5),
)
@settings(max_examples=100)
def test_relation_matches_union_with_text(docs, relation_nodes):
    index = InvertedIndex()
    text_matches: set[int] = set()
    for node, text in docs:
        index.add_text(node, text)
        if "paper" in tokenize(text):
            text_matches.add(node)
    for node in relation_nodes:
        index.add_relation_node("paper", node)
    assert index.lookup("paper") == text_matches | relation_nodes
