"""FIG4 bench: the paper's Figure 4 worked example.

Regenerates the explored/touched counts of Section 4.4 and asserts the
paper's headline: Bidirectional generates the co-authorship answer
after exploring an order of magnitude fewer nodes than Backward search.

Run as a script it also times the worked-example query under the
``python`` and ``vectorized`` expansion backends and emits one JSON
row per arm (``figure4/<backend>``) for the perf-trend gate.  This is
a deliberately tiny graph — the batched kernels have nothing to
vectorize here, so the rows pin small-query overhead (no speedup
floor; the ≥3x ratio gate lives on ``bench_kernel_speedup.py``).
"""

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.common import Report, fmt
from repro.experiments.figure4 import build_figure4_engine, run_figure4

from conftest import as_float, emit_json, run_report


def test_figure4_worked_example(benchmark):
    report = run_report(benchmark, run_figure4)
    rows = {row[0]: row for row in report.rows}
    bidi_gen = as_float(rows["bidirectional"][1])
    si_gen = as_float(rows["si-backward"][1])
    mi_gen = as_float(rows["mi-backward"][1])
    # Paper: ~4 vs >=151 explored; generous slack for implementation
    # differences in what counts as a pop.
    assert bidi_gen * 5 <= si_gen
    assert bidi_gen * 5 <= mi_gen
    assert all(row[5] == "True" for row in report.rows)


def test_figure4_answer_is_coauthored_paper(benchmark):
    def run():
        engine, meta = build_figure4_engine()
        return engine.search("database james john"), meta

    result, meta = benchmark.pedantic(run, rounds=1, iterations=1)
    best = result.best()
    assert best is not None
    assert meta["co_paper"] in best.tree.nodes()
    assert meta["james"] in best.tree.nodes()
    assert meta["john"] in best.tree.nodes()


BACKEND_ARMS = ("python", "vectorized")
ROUNDS = 5


def run_backend_figure4() -> Report:
    """Trend rows: the worked-example query under both backends,
    arms alternated per round, median scored."""
    engine, meta = build_figure4_engine()
    params = {
        backend: engine.params.with_(expansion_backend=backend)
        for backend in BACKEND_ARMS
    }

    def _search(backend):
        return engine.search("database james john", params=params[backend])

    times: dict[str, list[float]] = {arm: [] for arm in BACKEND_ARMS}
    for backend in BACKEND_ARMS:  # warm engine + CSR caches off the clock
        _search(backend)
    for _ in range(ROUNDS):
        for backend in BACKEND_ARMS:
            start = time.perf_counter()
            result = _search(backend)
            times[backend].append(time.perf_counter() - start)
            best = result.best()
            assert best is not None and meta["co_paper"] in best.tree.nodes()

    median = {arm: statistics.median(ts) for arm, ts in times.items()}
    report = Report(
        experiment="figure4",
        title=(
            f"worked-example query, python vs vectorized backend, "
            f"median of {ROUNDS} alternating rounds"
        ),
        headers=["backend", "median ms", "QPS", "vs python"],
    )
    for backend in BACKEND_ARMS:
        qps = 1.0 / median[backend]
        speedup = median["python"] / median[backend]
        emit_json(
            {
                "experiment": "figure4",
                "mode": backend,
                "rounds": ROUNDS,
                "qps": qps,
                "latency_ms": median[backend] * 1000.0,
                "speedup_vs_python": speedup,
            }
        )
        report.rows.append(
            [backend, fmt(median[backend] * 1000.0), fmt(qps), fmt(speedup)]
        )
    return report


def test_backend_figure4_rows(benchmark):
    report = run_report(benchmark, run_backend_figure4)
    assert len(report.rows) == len(BACKEND_ARMS)


if __name__ == "__main__":
    print(run_backend_figure4().render())
