"""Hash indexes on table columns.

Candidate-network execution in the Sparse baseline uses indexed
nested-loop joins; the paper builds "indices ... on all join columns"
before timing (Section 5.2).  A :class:`HashIndex` maps a column value
to the list of primary keys holding it.
"""

from __future__ import annotations

from typing import Hashable, Iterator

__all__ = ["HashIndex"]


class HashIndex:
    """An equality index ``value -> [primary keys]`` for one column."""

    def __init__(self, table: str, column: str) -> None:
        self.table = table
        self.column = column
        self._buckets: dict[Hashable, list[Hashable]] = {}
        self._entries = 0

    def add(self, value: Hashable, pk: Hashable) -> None:
        self._buckets.setdefault(value, []).append(pk)
        self._entries += 1

    def get(self, value: Hashable) -> list[Hashable]:
        """Primary keys of rows whose column equals ``value``."""
        return self._buckets.get(value, [])

    def contains(self, value: Hashable) -> bool:
        return value in self._buckets

    def distinct_values(self) -> Iterator[Hashable]:
        return iter(self._buckets.keys())

    def selectivity(self, value: Hashable) -> int:
        """Number of matching rows; the join planner orders by this."""
        return len(self._buckets.get(value, ()))

    def __len__(self) -> int:
        """Total indexed entries (rows), not distinct values."""
        return self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashIndex({self.table}.{self.column}, "
            f"values={len(self._buckets)}, entries={self._entries})"
        )
