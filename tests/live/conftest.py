"""Live-subsystem fixtures and the replay/rebuild reference harness.

The equivalence contract under test everywhere here: applying a
mutation sequence to a :class:`~repro.live.MutableDataset` must yield
the *same final state* as replaying the sequence on a plain edge list
and building a fresh graph + index from scratch — bit-identical
adjacency (order and floats), identical index answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.graph.builder import build_data_graph
from repro.graph.digraph import DataGraph
from repro.index.inverted import InvertedIndex
from repro.live.mutations import AddEdge, AddNode, RemoveEdge, UpdateText

from tests.conftest import make_toy_db


@dataclass
class ReplayModel:
    """The from-scratch reference: nodes, an ordered edge list and
    per-node text, mutated by naive replay."""

    labels: list = field(default_factory=list)
    tables: list = field(default_factory=list)
    refs: list = field(default_factory=list)
    edges: list = field(default_factory=list)  # ordered (u, v, w)
    texts: dict = field(default_factory=dict)  # node -> text terms source
    relation_nodes: list = field(default_factory=list)  # (relation, node)

    @classmethod
    def from_database(cls, db) -> "ReplayModel":
        graph = build_data_graph(db)
        model = cls(
            labels=[graph.label(u) for u in range(graph.num_nodes)],
            tables=[graph.table(u) for u in range(graph.num_nodes)],
            refs=[graph.ref(u) for u in range(graph.num_nodes)],
            edges=list(graph.forward_edges()),
        )
        # Mirror build_index: texts and relation membership per row.
        for table in db.schema.tables:
            for row in db.rows(table.name):
                node = model.refs.index((table.name, row[table.pk]))
                model.relation_nodes.append((table.name, node))
                text = " ".join(
                    str(row[column])
                    for column in table.text_columns
                    if row[column]
                )
                if text:
                    model.texts[node] = text
        return model

    def apply(self, mutation, new_nodes: list) -> None:
        if isinstance(mutation, AddNode):
            node = len(self.labels)
            new_nodes.append(node)
            self.labels.append(mutation.label)
            self.tables.append(mutation.table)
            self.refs.append(mutation.ref)
            if mutation.table is not None:
                self.relation_nodes.append((mutation.table, node))
            if mutation.text:
                self.texts[node] = mutation.text
        elif isinstance(mutation, AddEdge):
            self.edges.append(
                (_alias(mutation.u, new_nodes), _alias(mutation.v, new_nodes),
                 mutation.weight)
            )
        elif isinstance(mutation, RemoveEdge):
            u = _alias(mutation.u, new_nodes)
            v = _alias(mutation.v, new_nodes)
            for i, (eu, ev, w) in enumerate(self.edges):
                if eu == u and ev == v and (
                    mutation.weight is None or w == mutation.weight
                ):
                    del self.edges[i]
                    break
            else:  # pragma: no cover - test-harness misuse
                raise AssertionError(f"no edge {u} -> {v} to remove in replay model")
        elif isinstance(mutation, UpdateText):
            self.texts[_alias(mutation.node, new_nodes)] = mutation.text
        else:  # pragma: no cover - test-harness misuse
            raise AssertionError(f"unknown mutation {mutation!r}")

    def build(self, prestige) -> KeywordSearchEngine:
        """Freeze the final state from scratch (prestige is an input —
        mutations do not rerun PageRank, so the reference takes the
        dataset's vector)."""
        graph = DataGraph()
        for label, table, ref in zip(self.labels, self.tables, self.refs):
            graph.add_node(label, table=table, ref=ref)
        for u, v, w in self.edges:
            graph.add_edge(u, v, w)
        frozen = graph.freeze(prestige=prestige)
        index = InvertedIndex()
        for relation, node in self.relation_nodes:
            index.add_relation_node(relation, node)
        for node, text in self.texts.items():
            index.add_text(node, text)
        return KeywordSearchEngine(frozen, index)


def _alias(node: int, new_nodes: list) -> int:
    return node if node >= 0 else new_nodes[-node - 1]


def replay(model: ReplayModel, mutations) -> list:
    """Apply ``mutations`` to the replay model; returns assigned ids."""
    new_nodes: list = []
    for mutation in mutations:
        model.apply(mutation, new_nodes)
    return new_nodes


def assert_same_graph(actual, expected) -> None:
    """Bit-identical structural equality (order, weights, normalizers)."""
    assert actual.num_nodes == expected.num_nodes
    assert actual.num_forward_edges == expected.num_forward_edges
    assert actual.num_edges == expected.num_edges
    for node in range(expected.num_nodes):
        assert tuple(actual.out_edges(node)) == tuple(expected.out_edges(node)), (
            f"out adjacency of node {node} diverged"
        )
        assert tuple(actual.in_edges(node)) == tuple(expected.in_edges(node)), (
            f"in adjacency of node {node} diverged"
        )
        assert actual.label(node) == expected.label(node)
        assert actual.table(node) == expected.table(node)
        assert actual.ref(node) == expected.ref(node)
        assert actual.in_inv_weight_sum(node) == expected.in_inv_weight_sum(node)
        assert actual.out_inv_weight_sum(node) == expected.out_inv_weight_sum(node)
        assert actual.node_prestige(node) == expected.node_prestige(node)


def assert_same_index(actual, expected, extra_terms=()) -> None:
    """Identical answers for every term either side knows."""
    terms = set(expected.terms()) | set(actual.terms()) | set(extra_terms)
    for term in terms:
        assert actual.lookup(term) == expected.lookup(term), (
            f"lookup({term!r}) diverged"
        )
        assert actual.frequency(term) == expected.frequency(term)


def canonical_answers(result) -> list:
    """Order-insensitive exact canonical form of a search result.

    Emission *order* may legitimately differ between two structurally
    identical graphs whose keyword frozensets iterate differently; the
    answers and their exact scores may not.
    """
    return sorted(
        (
            answer.tree.score,
            answer.tree.edge_score,
            answer.tree.node_score,
            answer.tree.root,
            tuple(sorted(answer.tree.paths)),
        )
        for answer in result.answers
    )


@pytest.fixture
def toy_model() -> ReplayModel:
    return ReplayModel.from_database(make_toy_db())


@pytest.fixture
def toy_dataset(toy_engine):
    from repro.live import MutableDataset

    return MutableDataset.from_engine(toy_engine, compact_ratio=None)
