"""Cooperative cancellation at the service tier.

A gate-driven fake engine stands in for a slow search: it loops,
ticking its token like the real algorithms do, until the gate opens or
the token fires.  That makes "the deadline actually frees the thread"
observable without wall-clock-sized sleeps or flaky timing.
"""

import threading
import time

import pytest

from repro.core.answer import SearchResult
from repro.core.cancellation import CancellationToken
from repro.core.params import SearchParams
from repro.core.stats import SearchStats
from repro.errors import DeadlineExceededError, SearchCancelledError
from repro.service.service import QueryRequest, QueryService


class GatedEngine:
    """Searches block (cooperatively) until the gate opens or the token
    fires; every search run and stop is observable."""

    def __init__(self):
        self.params = SearchParams(cancel_check_interval=1)
        self.gate = threading.Event()
        self.started = threading.Event()
        self.stopped = threading.Event()
        self.runs = 0

    def search(self, query, *, algorithm, params, token=None):
        self.runs += 1
        self.started.set()
        result = SearchResult(
            algorithm=algorithm, keywords=("slow",), stats=SearchStats()
        )
        while not self.gate.is_set():
            if token is not None and token.tick():
                result.complete = False
                result.cancel_reason = token.reason
                break
            time.sleep(0.002)
        result.stats.finish()
        self.stopped.set()
        return result


@pytest.fixture
def gated():
    return GatedEngine()


@pytest.fixture
def service(gated, toy_engine):
    with QueryService(max_workers=2) as svc:
        svc.register_engine("slow", gated)
        svc.register_engine("toy", toy_engine)
        yield svc
        gated.gate.set()  # never leave a worker thread spinning


class TestDeadlineCancellation:
    def test_deadline_frees_the_thread(self, service, gated):
        response = service.search("slow", "anything", timeout=0.05)
        assert response.error_type == DeadlineExceededError.__name__
        # The capacity win: the search stopped shortly after the
        # deadline instead of burning its thread until the gate opens.
        assert gated.stopped.wait(2.0)
        assert not gated.gate.is_set()

    def test_allow_partial_attaches_incomplete_result(self, service):
        request = QueryRequest(
            "slow", "anything", timeout=0.05, allow_partial=True
        )
        response = service.search(request)
        assert response.error_type == DeadlineExceededError.__name__
        assert response.result is not None
        assert response.result.complete is False
        assert response.result.cancel_reason == "deadline"
        with pytest.raises(DeadlineExceededError):
            response.raise_for_error()

    def test_without_allow_partial_no_result_attached(self, service):
        response = service.search(
            QueryRequest("slow", "anything", timeout=0.05)
        )
        assert response.error_type == DeadlineExceededError.__name__
        assert response.result is None

    def test_deadline_ms_spelling(self, service):
        request = QueryRequest("slow", "anything", deadline_ms=50.0)
        assert request.timeout == pytest.approx(0.05)
        assert request.deadline_ms is None
        response = service.search(request)
        assert response.error_type == DeadlineExceededError.__name__

    def test_both_deadline_spellings_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            QueryRequest("slow", "anything", timeout=1.0, deadline_ms=1000.0)

    def test_search_many_deadlines_free_threads(self, service, gated):
        responses = service.search_many(
            [
                QueryRequest("slow", "anything", timeout=0.05),
                ("toy", "gray transaction"),
            ]
        )
        assert responses[0].error_type == DeadlineExceededError.__name__
        assert responses[1].ok
        assert gated.stopped.wait(2.0)

    def test_incomplete_results_never_cached(self, service, gated):
        first = service.search(
            QueryRequest("slow", "anything", timeout=0.05, allow_partial=True)
        )
        assert first.result is not None and not first.result.complete
        assert len(service.cache) == 0
        gated.gate.set()
        second = service.search("slow", "anything")
        assert second.ok
        assert gated.runs == 2  # the partial result did not serve from cache

    def test_metrics_record_deadline_cancellation(self, service, gated):
        service.search(QueryRequest("slow", "anything", timeout=0.05))
        # The response returns at the deadline; the worker thread
        # records the cancellation moments later when the search hands
        # back control — poll briefly rather than race it.
        assert gated.stopped.wait(2.0)
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            metrics = service.metrics()
            if metrics["cancellations"]["deadline_exceeded"]:
                break
            time.sleep(0.01)
        assert metrics["cancellations"]["deadline_exceeded"] == 1
        assert metrics["cancellations"]["cancelled"] == 0
        assert metrics["errors"][DeadlineExceededError.__name__] == 1
        # Overrun is bounded by the cooperative check cadence, far
        # under the engine's natural (gated) duration.
        assert metrics["cancellations"]["overrun_seconds"] < 1.0


class TestExplicitCancel:
    def test_cancel_by_request_id(self, service, gated):
        box = {}

        def run():
            box["response"] = service.search(
                QueryRequest(
                    "slow", "anything", request_id="req-1", allow_partial=True
                )
            )

        thread = threading.Thread(target=run)
        thread.start()
        assert gated.started.wait(2.0)
        assert service.cancel("req-1") is True
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        response = box["response"]
        assert response.error_type == SearchCancelledError.__name__
        assert response.result is not None
        assert response.result.cancel_reason == "cancelled"
        with pytest.raises(SearchCancelledError):
            response.raise_for_error()
        metrics = service.metrics()
        assert metrics["cancellations"]["cancelled"] == 1

    def test_cancel_unknown_id_is_false(self, service):
        assert service.cancel("never-submitted") is False

    def test_cancel_request_still_queued_in_executor(self, toy_engine):
        """A queued request is registered (and cancellable) at submit
        time — parity with the cluster tier's cancel ring.  Its
        pre-fired token stops the search at the first pop once a thread
        frees up.  (Requests with a timeout run on the executor; the
        single worker is occupied by the gated blocker.)"""
        blocker = GatedEngine()
        results = {}
        threads = []
        try:
            with QueryService(max_workers=1) as svc:
                svc.register_engine("blocker", blocker)
                svc.register_engine("toy", toy_engine)

                def run_blocker():
                    results["a"] = svc.search(
                        QueryRequest("blocker", "anything", timeout=30.0)
                    )

                def run_queued():
                    results["b"] = svc.search(
                        QueryRequest(
                            "toy",
                            "gray transaction",
                            timeout=30.0,
                            request_id="queued",
                        )
                    )

                threads.append(threading.Thread(target=run_blocker, daemon=True))
                threads[0].start()
                assert blocker.started.wait(2.0)
                threads.append(threading.Thread(target=run_queued, daemon=True))
                threads[1].start()
                # Registered at submit: cancellable before any worker
                # thread has picked it up.
                deadline = time.monotonic() + 2.0
                cancelled = False
                while time.monotonic() < deadline and not cancelled:
                    cancelled = svc.cancel("queued")
                    time.sleep(0.005)
                assert cancelled
                blocker.gate.set()
                for thread in threads:
                    thread.join(timeout=5.0)
                    assert not thread.is_alive()
                assert results["a"].ok
                assert results["b"].error_type == SearchCancelledError.__name__
        finally:
            blocker.gate.set()

    def test_request_id_unregistered_after_completion(self, service, gated):
        gated.gate.set()
        response = service.search(QueryRequest("slow", "anything", request_id="req-2"))
        assert response.ok
        assert service.cancel("req-2") is False

    def test_caller_token_cancels_search(self, service, gated):
        token = CancellationToken()
        box = {}

        def run():
            box["response"] = service.search(
                QueryRequest("slow", "anything", allow_partial=True), token=token
            )

        thread = threading.Thread(target=run)
        thread.start()
        assert gated.started.wait(2.0)
        token.cancel()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert box["response"].error_type == SearchCancelledError.__name__


class TestNonCooperativeMode:
    def test_deadline_abandons_thread_like_before(self, gated, toy_engine):
        with QueryService(max_workers=2, cooperative_cancellation=False) as svc:
            svc.register_engine("slow", gated)
            response = svc.search("slow", "anything", timeout=0.05)
            assert response.error_type == DeadlineExceededError.__name__
            # The losing search keeps burning its thread: not stopped
            # until the gate opens.
            assert not gated.stopped.wait(0.3)
            gated.gate.set()
            assert gated.stopped.wait(2.0)
            svc.close(wait=False)

    def test_real_engine_still_completes(self, toy_engine):
        with QueryService(cooperative_cancellation=False) as svc:
            svc.register_engine("toy", toy_engine)
            response = svc.search("toy", "gray transaction", timeout=30.0)
            assert response.ok
            assert response.result.complete

    def test_deadline_never_fires_a_caller_owned_token(self, gated):
        """In the control arm the token belongs to the caller (and may
        be shared across a batch); a deadline miss must not cancel it
        — that would cooperatively stop sibling searches in the mode
        that promises run-to-completion."""
        shared = CancellationToken(check_every=1)
        with QueryService(max_workers=2, cooperative_cancellation=False) as svc:
            svc.register_engine("slow", gated)
            response = svc.search(
                QueryRequest("slow", "anything", timeout=0.05), token=shared
            )
            assert response.error_type == DeadlineExceededError.__name__
            assert shared.fired is False
            gated.gate.set()
            assert gated.stopped.wait(2.0)
            svc.close(wait=False)


class TestCancellationStormEvent:
    def test_burst_emits_exactly_one_storm_event(self, service, gated):
        service.CANCEL_STORM_THRESHOLD = 3
        for _ in range(3):
            response = service.search("slow", "anything", timeout=0.01)
            assert response.error_type == DeadlineExceededError.__name__

        def storms():
            return [
                e
                for e in service.event_log.events()
                if e["kind"] == "cancellation_storm"
            ]

        # The deadline response returns before the cancelled search
        # finishes on its worker thread, where the storm is detected.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline and not storms():
            time.sleep(0.01)
        (storm,) = storms()
        assert storm["severity"] == "warning"
        assert storm["dataset"] == "slow"
        assert storm["extra"]["count"] >= 3
        assert storm["extra"]["reason"] == "deadline"
        # More cancellations inside the same storm window stay quiet:
        # a storm is one event, not a stream of them.
        for _ in range(3):
            service.search("slow", "anything", timeout=0.01)
        time.sleep(0.2)  # let the trailing cancellations land
        assert len(storms()) == 1

    def test_sparse_cancellations_never_fire_the_event(self, service):
        # Two cancellations against the default threshold of 10.
        for _ in range(2):
            service.search("slow", "anything", timeout=0.01)
        kinds = [e["kind"] for e in service.event_log.events()]
        assert "cancellation_storm" not in kinds
