"""Zipf vocabulary: skew, determinism, sizing."""

import random
from collections import Counter

import pytest

from repro.datasets.vocab import TOPIC_WORDS, ZipfVocabulary, make_vocabulary


class TestZipfVocabulary:
    def test_skew_orders_frequencies(self):
        vocab = ZipfVocabulary(("a", "b", "c", "d"), s=1.2)
        rng = random.Random(0)
        counts = Counter(vocab.sample(rng) for _ in range(20000))
        assert counts["a"] > counts["b"] > counts["d"]

    def test_zero_exponent_is_uniform_ish(self):
        vocab = ZipfVocabulary(("a", "b"), s=0.0)
        rng = random.Random(0)
        counts = Counter(vocab.sample(rng) for _ in range(10000))
        assert abs(counts["a"] - counts["b"]) < 1000

    def test_deterministic_given_seed(self):
        vocab = ZipfVocabulary(TOPIC_WORDS)
        a = vocab.sample_many(random.Random(42), 50)
        b = vocab.sample_many(random.Random(42), 50)
        assert a == b

    def test_phrase_length_bounds(self):
        vocab = ZipfVocabulary(TOPIC_WORDS)
        rng = random.Random(1)
        for _ in range(100):
            words = vocab.phrase(rng, 2, 5).split()
            assert 2 <= len(words) <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfVocabulary(())
        with pytest.raises(ValueError):
            ZipfVocabulary(("a",), s=-1.0)


class TestMakeVocabulary:
    def test_truncates_head(self):
        vocab = make_vocabulary(10)
        assert len(vocab) == 10
        assert vocab.words == TOPIC_WORDS[:10]

    def test_generates_tail(self):
        vocab = make_vocabulary(len(TOPIC_WORDS) + 5)
        assert len(vocab) == len(TOPIC_WORDS) + 5
        assert vocab.words[-1] == "term0004"

    def test_custom_head(self):
        vocab = make_vocabulary(3, head=("x", "y", "z"))
        assert vocab.words == ("x", "y", "z")
