"""Ground-truth relevant answers."""

import pytest

from repro.workload.relevance import relevant_answers, relevant_signatures

from tests.helpers import build_graph


class TestRelevantAnswers:
    def test_size_filter(self):
        # Two connections: direct (3 nodes) and longer (4 nodes).
        g = build_graph(6, [(0, 1), (0, 2), (3, 1), (4, 3), (4, 5), (5, 2)])
        sets = [frozenset({1}), frozenset({2})]
        small = relevant_answers(g, sets, max_tree_size=3)
        all_sizes = relevant_answers(g, sets, max_tree_size=10)
        assert small
        assert len(small) <= len(all_sizes)
        assert all(tree.size() <= 3 for tree in small)

    def test_sorted_best_first(self):
        g = build_graph(5, [(0, 1), (0, 2), (3, 1), (3, 2), (3, 4)])
        sets = [frozenset({1}), frozenset({2})]
        answers = relevant_answers(g, sets, max_tree_size=5)
        scores = [tree.score for tree in answers]
        assert scores == sorted(scores, reverse=True)

    def test_signatures_unique(self):
        g = build_graph(4, [(0, 1), (0, 2), (3, 1), (3, 2)])
        sets = [frozenset({1}), frozenset({2})]
        signatures = relevant_signatures(g, sets, max_tree_size=4)
        answers = relevant_answers(g, sets, max_tree_size=4)
        assert len(signatures) == len(answers)

    def test_invalid_size_rejected(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            relevant_answers(g, [frozenset({0})], max_tree_size=0)
