"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one base class.  Input-validation failures raise the standard
:class:`ValueError` / :class:`KeyError` subclasses below so they also
behave idiomatically with generic ``except ValueError`` handlers.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFrozenError",
    "UnknownNodeError",
    "SchemaError",
    "UnknownTableError",
    "UnknownColumnError",
    "IntegrityError",
    "QueryError",
    "EmptyQueryError",
    "KeywordNotFoundError",
    "SearchCancelledError",
    "ServiceError",
    "UnknownDatasetError",
    "DeadlineExceededError",
    "SnapshotError",
    "MutationError",
    "WalError",
    "ClusterError",
    "WorkerCrashedError",
    "PoolClosedError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Base class for data-graph construction and access errors."""


class GraphFrozenError(GraphError):
    """Raised when mutating a :class:`~repro.graph.DataGraph` after freeze."""


class UnknownNodeError(GraphError, KeyError):
    """Raised when a node id is out of range for the graph."""


class SchemaError(ReproError):
    """Base class for relational-schema violations."""


class UnknownTableError(SchemaError, KeyError):
    """Raised when a table name is not part of the schema."""


class UnknownColumnError(SchemaError, KeyError):
    """Raised when a column name is not part of a table."""


class IntegrityError(SchemaError):
    """Raised on primary-key or foreign-key violations at insert time."""


class QueryError(ReproError):
    """Base class for keyword-query problems."""


class EmptyQueryError(QueryError, ValueError):
    """Raised when a query contains no keywords."""


class KeywordNotFoundError(QueryError, LookupError):
    """Raised when a query keyword matches no node at all.

    Under the paper's AND semantics such a query can have no answers; the
    engine raises rather than silently returning an empty result so
    callers can distinguish "no connection found" from "keyword absent".
    """

    def __init__(self, keyword: str):
        super().__init__(f"keyword {keyword!r} matches no node in the index")
        self.keyword = keyword


class SearchCancelledError(ReproError):
    """Raised when a :class:`~repro.core.cancellation.CancellationToken`
    fires inside code with no partial answer to return.

    The anytime search algorithms never raise this — they stop at the
    next cooperative check and return partial results flagged
    ``complete=False``.  All-or-nothing consumers (the exhaustive
    oracle, ``raise_if_cancelled`` call sites) unwind with this
    exception instead; ``reason`` distinguishes an explicit cancel from
    a deadline expiry.
    """

    def __init__(self, reason: str = "cancelled"):
        super().__init__(f"search cancelled ({reason})")
        self.reason = reason


class ServiceError(ReproError):
    """Base class for query-service layer problems."""


class UnknownDatasetError(ServiceError, LookupError):
    """Raised when a dataset name is not registered with the service.

    ``LookupError`` rather than ``KeyError``: ``KeyError.__str__`` reprs
    its argument, which would wrap the wire-facing ``QueryResponse.error``
    string in spurious quotes (same reason ``KeywordNotFoundError`` is a
    ``LookupError``).
    """

    def __init__(self, dataset: str):
        super().__init__(f"dataset {dataset!r} is not registered")
        self.dataset = dataset


class DeadlineExceededError(ServiceError, TimeoutError):
    """Raised when a request misses its per-request deadline."""


class SnapshotError(ServiceError):
    """Raised on malformed, incompatible or unwritable snapshot files."""


class MutationError(ServiceError, ValueError):
    """Raised on malformed or inapplicable live mutations.

    ``ValueError`` as well: the HTTP front-end and the batch coercion
    path already map ``ValueError`` to structured 400 responses, and a
    bad mutation (unknown op, missing field, absent node or edge) is
    exactly that kind of caller error.
    """


class WalError(ServiceError):
    """Raised on mutation-log (WAL) misuse or unrecoverable state.

    Covers epoch misalignment (an append whose sequence number does not
    continue the log — the guard that fails a commit instead of
    recording unreplayable history), replay gaps (the log no longer
    reaches back to the snapshot it must apply on top of), and writes
    to read-only or closed logs.  *Corruption* is deliberately not an
    error: damaged tails degrade to a clean stop at the last valid
    record with a :class:`repro.wal.WalCorruptionWarning`.
    """


class ClusterError(ServiceError):
    """Base class for process-pool sharding tier problems."""


class WorkerCrashedError(ClusterError):
    """Raised (or reported as an error type) when a shard worker process
    died with a request in flight.

    The supervisor converts the loss into structured error responses for
    the affected requests and restarts the worker; the error type lets
    callers distinguish "your request was lost to a crash, retry it"
    from a deterministic failure like an absent keyword.
    """


class PoolClosedError(ClusterError):
    """Raised when submitting work to a worker pool that has been closed."""
