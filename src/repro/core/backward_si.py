"""Single-Iterator Backward search (paper Section 4.6, "SI-Backward").

The control experiment the paper built to isolate the effect of the
merged iterator from the other Bidirectional ideas: "identical to
Backward search except that it uses only one merged backward iterator
... it does not use a forward iterator, and its backward iterator is
prioritized only by distance from the keyword, as in the original
backward search, without any spreading activation component."

Concretely: all keyword nodes are seeded into one priority queue ordered
by distance to the *nearest* keyword; popping a node expands its
incoming edges, relaxing the shared :class:`~repro.core.pathtable.PathTable`
(which propagates improvements to reached ancestors); a node with known
paths to every keyword emits an answer tree.  Top-k output uses the same
Section 4.5 bound machinery as Bidirectional.
"""

from __future__ import annotations

from math import inf
from typing import Optional, Sequence

from repro.core.answer import SearchResult
from repro.core.driver import BaseSearch, frontier_minima, nra_edge_bound
from repro.core.heaps import LazyMinHeap
from repro.core.params import SearchParams
from repro.core.pathtable import PathTable
from repro.core.scoring import Scorer

__all__ = ["SingleIteratorBackwardSearch"]


class SingleIteratorBackwardSearch(BaseSearch):
    """SI-Backward: merged backward iterator, distance prioritized."""

    algorithm = "si-backward"

    def __init__(
        self,
        graph,
        keywords: Sequence[str],
        keyword_sets: Sequence[frozenset[int]],
        *,
        params: Optional[SearchParams] = None,
        scorer: Optional[Scorer] = None,
        token=None,
    ) -> None:
        super().__init__(
            graph, keywords, keyword_sets, params=params, scorer=scorer, token=token
        )
        self._queue = LazyMinHeap()
        self._explored: set[int] = set()
        self._depth: dict[int, int] = {}
        self._table = PathTable(
            graph, self.keyword_sets, on_dist_change=self._on_dist_change
        )

    # ------------------------------------------------------------------
    def _on_dist_change(self, node: int) -> None:
        """Keep queue priorities equal to the current nearest-keyword
        distance (decrease-key via lazy reinsertion)."""
        if node in self._queue and node not in self._explored:
            self._queue.push(node, self._table.min_dist(node))
            self.stats.heap_ops += 1

    def _touch(self, node: int, depth: int) -> None:
        if node in self._explored or node in self._queue:
            return
        self._depth.setdefault(node, depth)
        self._queue.push(node, self._table.min_dist(node))
        self.stats.touch()
        self.stats.heap_ops += 1

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        from repro.core.kernels import resolve_backend

        backend = resolve_backend(self.params.expansion_backend)
        if backend != "python":
            from repro.core.kernels import run_si_batched

            return run_si_batched(self, backend)
        seeds = self._table.seed_all()
        for node in sorted(seeds):
            self._depth[node] = 0
            self._queue.push(node, 0.0)
            self.stats.touch()
            self.stats.heap_ops += 1

        while self._queue and not self._done and not self._budget_exhausted():
            if self._cancelled():
                break
            node, _ = self._queue.pop()
            if node in self._explored:
                continue
            self._explored.add(node)
            self.stats.explore()
            self.stats.pops_in += 1
            self._pops_since_flush += 1
            self._profile_tick()

            if self._table.is_complete(node):
                self._emit_root(node)

            if self._depth[node] < self.params.dmax:
                self._expand(node)

            if self._should_flush():
                self._flush(self._edge_bound())

        if (
            not self._queue
            and not self._done
            and not self._stopped_by_cancel
            and not self._budget_exhausted()
        ):
            self._tie_sweep(
                sorted(
                    node
                    for node in self._table.seen_nodes()
                    if self._table.is_complete(node)
                ),
                self._table.build_paths,
                self._table.dist,
            )
        self.stats.cascade_touches += self._table.cascade_touches
        return self._finish()

    def _frontier_sizes(self) -> dict[str, int]:
        return {"queue": len(self._queue)}

    # ------------------------------------------------------------------
    def _emit_root(self, root: int) -> None:
        paths, dists = self._table.build_paths(root)
        self._emit_tree(root, paths, dists)
        self._emit_tie_alternate(root, paths, self._table.dist)

    def _expand(self, v: int) -> None:
        """Traverse incoming edges of ``v``, propagating keyword
        distances backward (the single merged iterator step)."""
        depth = self._depth[v] + 1
        for u, w, _ in self.graph.in_edges(v):
            self.stats.explore_edge()
            completions = self._table.explore_edge(u, v, w)
            for done_node in completions:
                self._emit_root(done_node)
            if u not in self._explored:
                self._touch(u, depth)

    # ------------------------------------------------------------------
    def _edge_bound(self) -> float:
        """Section 4.5 bound over the single backward frontier."""
        ms = frontier_minima(
            self.k,
            [(node for node, _ in self._queue.items())],
            self._table.dist,
        )
        if all(m == inf for m in ms):
            return inf
        incomplete = (
            self._table.dist_vector(node)
            for node in self._table.seen_nodes()
            if not self._table.is_complete(node)
        )
        return nra_edge_bound(ms, incomplete)
