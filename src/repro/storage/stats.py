"""Storage-mode resolution, pin policy and residency accounting.

Small, dependency-free pieces shared by the snapshot loader
(:mod:`repro.service.snapshot`), the mapped graph/index classes
(:mod:`repro.storage.mapped`) and the service telemetry collector.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "STORAGE_MODES",
    "STORAGE_MODE_ENV",
    "PinPolicy",
    "StorageStats",
    "resolve_storage_mode",
]

#: Environment hook: set ``REPRO_SNAPSHOT_MODE=mapped`` (or ``ram``) to
#: steer every ``load_snapshot`` call that did not pick a mode
#: explicitly — how CI runs the whole tier-1 suite against the mapped
#: tier without touching a single call site.
STORAGE_MODE_ENV = "REPRO_SNAPSHOT_MODE"

STORAGE_MODES = ("ram", "mapped", "auto")


def resolve_storage_mode(value: Optional[str] = None) -> str:
    """Resolve the effective storage mode for a snapshot load.

    Precedence: explicit ``value`` argument, then the
    ``REPRO_SNAPSHOT_MODE`` environment variable, then ``"auto"``
    (which the loader maps to the file's native tier: RAM for
    compressed v1 files, mapped for v2 files).
    """
    if value is None:
        value = os.environ.get(STORAGE_MODE_ENV) or "auto"
    mode = str(value).strip().lower()
    if mode not in STORAGE_MODES:
        raise ValueError(
            f"unknown storage mode {value!r}; expected one of {STORAGE_MODES}"
        )
    return mode


@dataclass(frozen=True)
class PinPolicy:
    """Which rows the mapped loader faults in eagerly.

    The paper's activation model concentrates traffic on high-prestige
    hubs, and frontier expansion touches high-degree rows far more
    often than the long tail — so the pin set is the union of the
    top-``nodes`` rows by prestige and by combined degree (both
    adjacency sides are pinned for each).  ``terms`` pins the largest
    posting lists: keyword seeding reads whole origin sets, and the
    frequent-keyword case is exactly where a posting list is big.

    Pinning only *materializes* the rows at load time (they live in the
    ordinary row cache, which never evicts); it does not ``mlock``
    pages — the OS page cache underneath stays evictable, which is what
    lets N worker processes share one physical copy of the file.

    The defaults are deliberately small: pinning is O(pin set) Python
    tuple construction at load time, and a lazy load's whole point is
    an O(1)-ish warmup.  Hub nodes and frequent keywords are so skewed
    that a few dozen rows cover most first-query traffic; services with
    known-hot workloads pass a bigger policy explicitly.
    """

    nodes: int = 64
    terms: int = 16

    def __post_init__(self) -> None:
        if self.nodes < 0 or self.terms < 0:
            raise ValueError(
                f"pin counts must be >= 0, got nodes={self.nodes!r} "
                f"terms={self.terms!r}"
            )

    @classmethod
    def coerce(cls, value: Union[None, dict, "PinPolicy"]) -> "PinPolicy":
        """Accept ``None`` (defaults), a ``{"nodes", "terms"}`` dict, or
        an existing policy."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            f"pin_policy must be a PinPolicy, a dict or None, got {value!r}"
        )


class StorageStats:
    """Mutable residency counters for one mapped dataset.

    One instance is shared by the dataset's graph and index (exposed as
    their ``.storage`` attribute) and read by the service telemetry
    collector at export time.  ``resident_bytes`` is an *estimate* of
    the Python-object working set (materialized rows and posting sets),
    not the OS page-cache footprint — the latter is shared across
    processes and invisible from here.
    """

    __slots__ = (
        "mode",
        "path",
        "mapped_bytes",
        "row_faults",
        "posting_faults",
        "pinned_nodes",
        "pinned_terms",
        "pinned_bytes",
        "resident_bytes",
    )

    #: Rough bytes per materialized ``(neighbor, weight, is_forward)``
    #: edge tuple (tuple header + int + float; bools are interned).
    EDGE_ESTIMATE = 104
    #: Rough bytes per posting-set member (set slot + int object).
    POSTING_ESTIMATE = 60

    def __init__(self, *, mode: str = "mapped", path: str = "") -> None:
        self.mode = mode
        self.path = path
        self.mapped_bytes = 0
        self.row_faults = 0
        self.posting_faults = 0
        self.pinned_nodes = 0
        self.pinned_terms = 0
        self.pinned_bytes = 0
        self.resident_bytes = 0

    def note_row(self, edges: int) -> None:
        self.row_faults += 1
        self.resident_bytes += self.EDGE_ESTIMATE * edges

    def note_postings(self, nodes: int) -> None:
        self.posting_faults += 1
        self.resident_bytes += self.POSTING_ESTIMATE * nodes

    def snapshot(self) -> dict:
        """JSON-safe view of every counter."""
        return {
            "mode": self.mode,
            "path": self.path,
            "mapped_bytes": self.mapped_bytes,
            "row_faults": self.row_faults,
            "posting_faults": self.posting_faults,
            "pinned_nodes": self.pinned_nodes,
            "pinned_terms": self.pinned_terms,
            "pinned_bytes": self.pinned_bytes,
            "resident_bytes": self.resident_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageStats(mode={self.mode!r}, row_faults={self.row_faults}, "
            f"posting_faults={self.posting_faults}, "
            f"pinned_nodes={self.pinned_nodes}, pinned_terms={self.pinned_terms})"
        )
