"""Search instrumentation: the paper's three performance metrics.

Section 5.2: "the nodes explored (i.e. popped from Qin or Qout and
processed) and the nodes touched ... (i.e. inserted in Qin or Qout), and
the time taken".  Additionally Section 5.3 distinguishes the time an
answer was *generated* from the time it could be *output* (once the
upper bound allowed it); :class:`SearchStats` records both, in wall
seconds and in pop counts (pop counts are deterministic and are what the
unit tests assert on).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["COST_FIELDS", "SearchStats"]


#: The always-on per-query cost vector (beyond the paper's three
#: metrics): cheap plain-int counters every algorithm and kernel engine
#: threads through, the feature set the explain layer, the workload
#: analytics sketch and the future admission controller consume.
COST_FIELDS = (
    "pops_in",
    "pops_out",
    "kernel_batches",
    "candidates_generated",
    "candidates_surviving",
    "heap_ops",
    "cascade_touches",
    "emit_attempts",
    "gate_skips",
    "resolve_hits",
)


@dataclass
class SearchStats:
    """Counters and timers for one search run."""

    nodes_explored: int = 0
    nodes_touched: int = 0
    edges_explored: int = 0
    answers_generated: int = 0
    answers_output: int = 0
    duplicates_discarded: int = 0
    #: Pops from the incoming-edge frontier (Qin; every pop for the
    #: single-frontier backward algorithms).
    pops_in: int = 0
    #: Pops from the outgoing-edge frontier (Qout; bidirectional only).
    pops_out: int = 0
    #: Batched-expansion loop iterations (0 on the python backend).
    kernel_batches: int = 0
    #: Neighbor candidates the expansion produced before the distance /
    #: activation recheck.
    candidates_generated: int = 0
    #: Candidates that survived the recheck and were applied.
    candidates_surviving: int = 0
    #: Frontier heap pushes.
    heap_ops: int = 0
    #: Rows touched by the ancestor attach/propagate cascades.
    cascade_touches: int = 0
    #: Answer-tree emission attempts reaching the minimality/duplicate
    #: filters.
    emit_attempts: int = 0
    #: Emissions dropped earlier still, by the exact-mode emit gate.
    gate_skips: int = 0
    #: Total inverted-index posting hits behind the query's keywords.
    resolve_hits: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    finished_at: Optional[float] = None

    def touch(self, count: int = 1) -> None:
        self.nodes_touched += count

    def explore(self) -> None:
        self.nodes_explored += 1

    def explore_edge(self, count: int = 1) -> None:
        self.edges_explored += count

    def finish(self) -> None:
        if self.finished_at is None:
            self.finished_at = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Wall seconds from construction to :meth:`finish` (or now)."""
        end = self.finished_at if self.finished_at is not None else time.perf_counter()
        return end - self.started_at

    def now(self) -> float:
        """Seconds since the search started; stamps generation/output times."""
        return time.perf_counter() - self.started_at

    def cost_vector(self) -> dict[str, int]:
        """The always-on accounting counters as a plain dict."""
        return {name: getattr(self, name) for name in COST_FIELDS}

    def as_dict(self) -> dict[str, float]:
        out = {
            "nodes_explored": self.nodes_explored,
            "nodes_touched": self.nodes_touched,
            "edges_explored": self.edges_explored,
            "answers_generated": self.answers_generated,
            "answers_output": self.answers_output,
            "duplicates_discarded": self.duplicates_discarded,
            "elapsed": self.elapsed,
        }
        out.update(self.cost_vector())
        return out
