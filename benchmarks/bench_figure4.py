"""FIG4 bench: the paper's Figure 4 worked example.

Regenerates the explored/touched counts of Section 4.4 and asserts the
paper's headline: Bidirectional generates the co-authorship answer
after exploring an order of magnitude fewer nodes than Backward search.
"""

from repro.experiments.figure4 import build_figure4_engine, run_figure4

from conftest import as_float, run_report


def test_figure4_worked_example(benchmark):
    report = run_report(benchmark, run_figure4)
    rows = {row[0]: row for row in report.rows}
    bidi_gen = as_float(rows["bidirectional"][1])
    si_gen = as_float(rows["si-backward"][1])
    mi_gen = as_float(rows["mi-backward"][1])
    # Paper: ~4 vs >=151 explored; generous slack for implementation
    # differences in what counts as a pop.
    assert bidi_gen * 5 <= si_gen
    assert bidi_gen * 5 <= mi_gen
    assert all(row[5] == "True" for row in report.rows)


def test_figure4_answer_is_coauthored_paper(benchmark):
    def run():
        engine, meta = build_figure4_engine()
        return engine.search("database james john"), meta

    result, meta = benchmark.pedantic(run, rounds=1, iterations=1)
    best = result.best()
    assert best is not None
    assert meta["co_paper"] in best.tree.nodes()
    assert meta["james"] in best.tree.nodes()
    assert meta["john"] in best.tree.nodes()
