"""Benchmark harness glue.

Each benchmark runs one experiment from :mod:`repro.experiments` once
(``pedantic`` mode — these are macro-benchmarks whose interesting output
is the printed table, not a statistically tight timing), prints the
regenerated table, and applies *loose* shape assertions so a silently
broken reproduction fails the bench run.

Scale every dataset up or down with the ``REPRO_SCALE`` env var.
"""

from __future__ import annotations


def run_report(benchmark, fn, **kwargs):
    """Run ``fn`` under pytest-benchmark and print its Report."""
    report = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(report.render())
    return report


def cell(report, row: int, col: int) -> str:
    return report.rows[row][col]


def as_float(text: str) -> float:
    return float(text.replace(",", ""))
