"""Tokenizer behaviour."""

from repro.index.tokenizer import normalize_term, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert list(tokenize("Gray TRANSACTION")) == ["gray", "transaction"]

    def test_splits_on_punctuation(self):
        assert list(tokenize("keyword-search, on: graphs!")) == [
            "keyword",
            "search",
            "on",
            "graphs",
        ]

    def test_keeps_digits(self):
        assert list(tokenize("term0042 x86")) == ["term0042", "x86"]

    def test_empty_text(self):
        assert list(tokenize("")) == []
        assert list(tokenize("  --  ")) == []

    def test_duplicates_preserved_in_order(self):
        assert list(tokenize("a b a")) == ["a", "b", "a"]

    def test_no_stemming(self):
        # The paper's frequency skew must survive tokenization.
        assert list(tokenize("databases database")) == ["databases", "database"]


class TestNormalizeTerm:
    def test_strips_and_lowercases(self):
        assert normalize_term("  Gray ") == "gray"

    def test_idempotent(self):
        assert normalize_term(normalize_term("ABC")) == "abc"
