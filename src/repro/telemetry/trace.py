"""Structured tracing: spans, tracers, and a cross-process trace store.

One query produces one *trace*: a tree of :class:`Span` records named
after the stage they time (``http`` → ``route`` → ``queue_wait`` →
``worker`` → ``engine`` → ``resolve`` / ``expand[...]`` / ``emit``).
The design constraints, in order:

* **Cross-process comparability.**  Spans start on the wall clock
  (``time.time()``) so spans minted in the supervisor and spans minted
  in a worker land on one timeline, but *durations* are measured with
  ``time.perf_counter()`` so they stay monotonic and sub-millisecond
  accurate.  Clock skew between processes on one host is far below the
  millisecond queue waits the timeline is read for.
* **JSON-safe at rest.**  A finished span is a plain dict of
  primitives — it rides the existing wire format across the
  supervisor/worker pipe unchanged, and ``json.dumps`` always succeeds
  on it.
* **No signature churn.**  The active span travels in a
  :class:`~contextvars.ContextVar`, so the engine and the three search
  loops pick it up without threading a parameter through every call
  site; code that never starts a span pays one context-var read.

Nothing here imports anything outside the stdlib.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = [
    "Span",
    "Tracer",
    "TraceStore",
    "build_span_tree",
    "render_span_tree",
    "current_span",
    "use_span",
    "new_trace_id",
    "new_span_id",
]


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


_ACTIVE_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_active_span", default=None
)


def current_span() -> Optional["Span"]:
    """The span active in this thread/task context, or ``None``."""
    return _ACTIVE_SPAN.get()


@contextmanager
def use_span(span: Optional["Span"]) -> Iterator[Optional["Span"]]:
    """Make ``span`` the ambient span for the duration of the block.

    Does *not* end the span on exit — lifetime stays with whoever
    created it.  Passing ``None`` masks any outer span, which is how
    tracing-off paths guarantee they inherit nothing.
    """
    token = _ACTIVE_SPAN.set(span)
    try:
        yield span
    finally:
        _ACTIVE_SPAN.reset(token)


class Span:
    """One timed stage of a trace.

    Mutable while open (attributes accumulate), frozen to a dict by
    :meth:`end`.  ``end`` is idempotent: the first call wins, later
    calls are no-ops — so error paths can end defensively.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "started_at",
        "duration",
        "status",
        "attributes",
        "_t0",
        "_sink",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        sink: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.started_at = time.time()
        self.duration: Optional[float] = None
        self.status = "ok"
        self.attributes: dict[str, Any] = {}
        self._t0 = time.perf_counter()
        self._sink = sink

    @property
    def ended(self) -> bool:
        return self.duration is not None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, mapping: dict) -> None:
        self.attributes.update(mapping)

    def child(self, name: str) -> "Span":
        """A new open span under this one, sharing the trace and sink."""
        return Span(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            sink=self._sink,
        )

    def end(
        self,
        *,
        status: Optional[str] = None,
        duration: Optional[float] = None,
    ) -> "Span":
        """Close the span and deliver it to the sink (first call only).

        ``duration`` overrides the measured elapsed time — used for
        synthesized spans (e.g. ``queue_wait``) whose extent is computed
        from other spans rather than observed.
        """
        if self.duration is not None:
            return self
        if status is not None:
            self.status = status
        self.duration = (
            time.perf_counter() - self._t0 if duration is None else duration
        )
        if self._sink is not None:
            self._sink(self.to_dict())
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.started_at,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1000:.2f}ms" if self.ended else "open"
        return f"Span({self.name!r}, trace={self.trace_id[:8]}, {state})"


class TraceStore:
    """Bounded, thread-safe retention of finished spans, keyed by trace.

    Holds the ``capacity`` most recently touched traces; older traces
    evict whole (a trace with half its spans is worse than no trace).
    Re-adding a span id already present in a trace is a no-op, so
    ingesting the same worker response twice cannot duplicate a tree.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._traces: OrderedDict[str, list[dict]] = OrderedDict()
        self._lock = threading.Lock()

    def add(self, span: dict) -> None:
        trace_id = span.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._traces[trace_id] = []
                while len(self._traces) > self._capacity:
                    self._traces.popitem(last=False)
            else:
                self._traces.move_to_end(trace_id)
            span_id = span.get("span_id")
            if any(existing.get("span_id") == span_id for existing in spans):
                return
            spans.append(dict(span))

    def ingest(self, spans: Optional[Iterable[dict]]) -> None:
        """Add externally produced span dicts (e.g. shipped by a worker)."""
        for span in spans or ():
            if isinstance(span, dict):
                self.add(span)

    def get(self, trace_id: str) -> Optional[list[dict]]:
        with self._lock:
            spans = self._traces.get(trace_id)
            return [dict(span) for span in spans] if spans is not None else None

    def tree(self, trace_id: str) -> Optional[dict]:
        spans = self.get(trace_id)
        return build_span_tree(spans) if spans else None

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class Tracer:
    """Mints spans and retains the finished ones in a :class:`TraceStore`."""

    def __init__(self, capacity: int = 256) -> None:
        self.store = TraceStore(capacity)

    def start_span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> Span:
        return Span(
            name,
            trace_id=trace_id if trace_id is not None else new_trace_id(),
            parent_id=parent_id,
            sink=self.store.add,
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> Iterator[Span]:
        """Open a span, make it ambient, end it on exit (error-aware)."""
        span = self.start_span(name, trace_id=trace_id, parent_id=parent_id)
        token = _ACTIVE_SPAN.set(span)
        try:
            yield span
        except BaseException:
            span.end(status="error")
            raise
        else:
            span.end()
        finally:
            _ACTIVE_SPAN.reset(token)

    def ingest(self, spans: Optional[Iterable[dict]]) -> None:
        self.store.ingest(spans)

    def spans_for(self, trace_id: str) -> Optional[list[dict]]:
        return self.store.get(trace_id)

    def trace(self, trace_id: str) -> Optional[dict]:
        return self.store.tree(trace_id)

    def trace_ids(self) -> list[str]:
        return self.store.trace_ids()


def build_span_tree(spans: Iterable[dict]) -> dict:
    """Nest flat span dicts into ``{"trace_id", "span_count", "roots"}``.

    A span whose parent is absent from the set becomes a root — partial
    traces (a worker died, a store evicted) still render as forests
    instead of vanishing.  Children sort by wall-clock start.
    """
    nodes: dict[str, dict] = {}
    ordered: list[dict] = []
    for span in spans:
        node = dict(span)
        node["children"] = []
        span_id = node.get("span_id")
        if isinstance(span_id, str) and span_id not in nodes:
            nodes[span_id] = node
            ordered.append(node)
    roots: list[dict] = []
    for node in ordered:
        parent = nodes.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in ordered:
        node["children"].sort(key=lambda child: child.get("start") or 0.0)
    roots.sort(key=lambda node: node.get("start") or 0.0)
    trace_id = ordered[0].get("trace_id") if ordered else None
    return {"trace_id": trace_id, "span_count": len(ordered), "roots": roots}


def _summarize(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        return f"<{len(value)} items>"
    if isinstance(value, dict):
        return f"<{len(value)} keys>"
    return str(value)


def render_span_tree(tree: dict) -> str:
    """An indented, human-readable rendering of :func:`build_span_tree`."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        duration = node.get("duration")
        timing = f"{duration * 1000:.3f} ms" if duration is not None else "open"
        flag = "" if node.get("status", "ok") == "ok" else f" [{node['status']}]"
        attributes = node.get("attributes") or {}
        suffix = "".join(
            f" {key}={_summarize(attributes[key])}" for key in sorted(attributes)
        )
        lines.append(f"{'  ' * depth}{node.get('name')}  {timing}{flag}{suffix}")
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in tree.get("roots", ()):
        walk(root, 0)
    return "\n".join(lines)
