"""Vectorized batch-frontier expansion kernels.

This package holds the flat-array fast path behind
``SearchParams.expansion_backend``: CSR snapshots of the search graph
(:mod:`~repro.core.kernels.csr`), a dense batch-pop priority frontier
(:mod:`~repro.core.kernels.frontier`), dense distance/activation state
with scalar cascade application (:mod:`~repro.core.kernels.state`),
candidate kernels in scalar / numpy / numba flavours
(:mod:`~repro.core.kernels.expand`), and the batched ``run()`` engines
the search classes delegate to (:mod:`~repro.core.kernels.engines`).

Backend selection (:mod:`~repro.core.kernels.backend`) resolves
``"auto"`` through the ``REPRO_EXPANSION_BACKEND`` environment
variable and degrades ``"numba"`` to ``"vectorized"`` when numba is
not importable, so the dependency stays optional.
"""

from repro.core.kernels.backend import (
    ENV_VAR,
    KERNEL_BACKENDS,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.core.kernels.csr import GraphCSR, graph_csr
from repro.core.kernels.engines import (
    effective_batch,
    run_bidi_batched,
    run_si_batched,
)
from repro.core.kernels.frontier import VectorFrontier
from repro.core.kernels.state import DenseActivationState, DensePathState

__all__ = [
    "ENV_VAR",
    "KERNEL_BACKENDS",
    "available_backends",
    "numba_available",
    "resolve_backend",
    "GraphCSR",
    "graph_csr",
    "VectorFrontier",
    "DenseActivationState",
    "DensePathState",
    "effective_batch",
    "run_si_batched",
    "run_bidi_batched",
]
