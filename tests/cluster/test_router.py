"""ShardRouter: placement, replica fan-out, deterministic routing."""

import pytest

from repro.cluster.router import ShardRouter
from repro.errors import UnknownDatasetError

DATASETS = ["dblp", "imdb", "patents", "toy"]


def test_every_dataset_is_placed():
    router = ShardRouter(DATASETS, num_workers=3)
    assignments = router.assignments()
    placed = {name for names in assignments.values() for name in names}
    assert placed == set(DATASETS)
    assert set(assignments) == {0, 1, 2}


def test_single_replica_balances_load():
    router = ShardRouter(DATASETS, num_workers=2)
    sizes = sorted(len(names) for names in router.assignments().values())
    assert sizes == [2, 2]


def test_replica_overrides_fan_out():
    router = ShardRouter(DATASETS, num_workers=4, replicas={"dblp": 3})
    assert len(router.replicas_for("dblp")) == 3
    assert len(router.replicas_for("imdb")) == 1


def test_replicas_capped_at_worker_count():
    router = ShardRouter(["only"], num_workers=2, default_replicas=8)
    assert router.replicas_for("only") == (0, 1)


def test_placement_is_deterministic_across_instances_and_order():
    a = ShardRouter(DATASETS, num_workers=3, replicas={"imdb": 2})
    b = ShardRouter(list(reversed(DATASETS)), num_workers=3, replicas={"imdb": 2})
    assert a.assignments() == b.assignments()


def test_routing_is_deterministic_and_stays_on_replicas():
    router = ShardRouter(DATASETS, num_workers=4, default_replicas=2)
    fresh = ShardRouter(DATASETS, num_workers=4, default_replicas=2)
    for name in DATASETS:
        replicas = set(router.replicas_for(name))
        for key in [("gray", "transaction"), ("a",), ("b", "c", "d")]:
            worker = router.route(name, key)
            assert worker in replicas
            # Same inputs, same worker — across calls and instances.
            assert router.route(name, key) == worker
            assert fresh.route(name, key) == worker


def test_routing_spreads_distinct_keys_over_replicas():
    router = ShardRouter(["hot"], num_workers=4, default_replicas=4)
    hits = {router.route("hot", (f"kw{i}",)) for i in range(64)}
    assert len(hits) > 1  # fan-out actually fans out


def test_unknown_dataset_raises():
    router = ShardRouter(["a"], num_workers=1)
    with pytest.raises(UnknownDatasetError):
        router.route("missing", ("x",))
    with pytest.raises(UnknownDatasetError):
        router.replicas_for("missing")


def test_validation():
    with pytest.raises(ValueError):
        ShardRouter([], num_workers=1)
    with pytest.raises(ValueError):
        ShardRouter(["a"], num_workers=0)
    with pytest.raises(ValueError):
        ShardRouter(["a"], num_workers=1, default_replicas=0)
    with pytest.raises(ValueError):
        ShardRouter(["a"], num_workers=1, replicas={"b": 1})
    with pytest.raises(ValueError):
        ShardRouter(["a"], num_workers=1, replicas={"a": 0})
