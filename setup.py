"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` (legacy
``setup.py develop``) on offline machines whose setuptools cannot build
wheels.
"""

from setuptools import setup

setup()
