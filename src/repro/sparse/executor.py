"""Candidate-network execution: indexed nested-loop joins.

Executes a :class:`~repro.sparse.candidate_networks.CandidateNetwork`
against the in-memory store, mirroring the paper's Sparse setup: hash
indexes exist on every join column (``Database.build_join_indexes``),
the plan starts from the smallest tuple set and probes outward along the
CN's edges — the "indexed nested loops join ... starting from the
relation with fewer tuples" the paper likens Bidirectional search to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Optional

from repro.core.cancellation import CancellationToken
from repro.errors import SearchCancelledError
from repro.relational.database import Database
from repro.relational.query import join_step
from repro.sparse.candidate_networks import CandidateNetwork
from repro.sparse.tuple_sets import TupleSets

__all__ = ["JoiningTree", "CNExecutor"]


@dataclass(frozen=True)
class JoiningTree:
    """One result of a CN: a tuple of ``(table, pk)`` per CN node."""

    network: CandidateNetwork
    rows: tuple[tuple[str, Hashable], ...]

    @property
    def size(self) -> int:
        return len(self.rows)

    def row_set(self) -> frozenset[tuple[str, Hashable]]:
        return frozenset(self.rows)

    def score(self) -> float:
        """Sparse's simple size-based ranking: fewer joins rank higher."""
        return 1.0 / self.size

    def graph_nodes(self, graph) -> frozenset[int]:
        """Map the joined tuples onto search-graph node ids, for
        comparison against graph-search answers."""
        return frozenset(graph.node_by_ref(table, pk) for table, pk in self.rows)


class CNExecutor:
    """Evaluates candidate networks with indexed nested-loop joins.

    ``token`` makes the row loops cooperative: the executor ticks it
    once per scanned row and unwinds with
    :class:`~repro.errors.SearchCancelledError` when it fires —
    :class:`~repro.sparse.sparse_search.SparseSearch` catches that and
    returns the joining trees already produced as a partial result.
    """

    def __init__(
        self,
        db: Database,
        tuple_sets: TupleSets,
        *,
        token: Optional[CancellationToken] = None,
    ) -> None:
        self.db = db
        self.tuple_sets = tuple_sets
        self.rows_scanned = 0
        self.token = token

    def _scan_row(self) -> None:
        """Count one scanned row; the sparse tier's cooperative tick."""
        self.rows_scanned += 1
        if self.token is not None and self.token.tick():
            raise SearchCancelledError(self.token.reason or "cancelled")

    # ------------------------------------------------------------------
    def execute(
        self, cn: CandidateNetwork, *, limit: Optional[int] = None
    ) -> list[JoiningTree]:
        """All joining trees of ``cn`` (distinct tuples per tree), up to
        ``limit``."""
        return list(self.iter_execute(cn, limit=limit))

    def iter_execute(
        self, cn: CandidateNetwork, *, limit: Optional[int] = None
    ) -> Iterator[JoiningTree]:
        order = self._plan(cn)
        start = order[0]
        start_node = cn.nodes[start]
        if start_node.is_free:
            start_pks = self.tuple_sets.free_members(start_node.table)
        else:
            start_pks = self.tuple_sets.members(start_node.table, start_node.keywords)
        adjacency = cn.adjacency()
        produced = 0
        for pk in start_pks:
            self._scan_row()
            assignment: dict[int, tuple[str, Hashable]] = {
                start: (start_node.table, pk)
            }
            for tree in self._extend(cn, adjacency, order, 1, assignment):
                yield tree
                produced += 1
                if limit is not None and produced >= limit:
                    return

    # ------------------------------------------------------------------
    def _plan(self, cn: CandidateNetwork) -> list[int]:
        """Join order: start at the smallest tuple set, then BFS through
        the CN so each joined node touches an already-bound neighbour."""

        def cardinality(index: int) -> int:
            node = cn.nodes[index]
            if node.is_free:
                return self.db.count(node.table)
            return len(self.tuple_sets.members(node.table, node.keywords))

        start = min(range(cn.size), key=lambda i: (cardinality(i), i))
        adjacency = cn.adjacency()
        order = [start]
        seen = {start}
        head = 0
        while head < len(order):
            for neighbour, _, _ in adjacency[order[head]]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    order.append(neighbour)
            head += 1
        return order

    def _extend(
        self,
        cn: CandidateNetwork,
        adjacency,
        order: list[int],
        position: int,
        assignment: dict[int, tuple[str, Hashable]],
    ) -> Iterator[JoiningTree]:
        if position == len(order):
            rows = tuple(assignment[i] for i in range(cn.size))
            yield JoiningTree(network=cn, rows=rows)
            return
        target = order[position]
        target_node = cn.nodes[target]
        # The bound neighbour this node joins to (exists by BFS order).
        anchor, fk = next(
            (neighbour, fk)
            for neighbour, fk, _ in adjacency[target]
            if neighbour in assignment
        )
        anchor_table, anchor_pk = assignment[anchor]
        anchor_row = self.db.get(anchor_table, anchor_pk)
        used = set(assignment.values())
        for row in join_step(self.db, anchor_row, anchor_table, fk):
            self._scan_row()
            pk = row[self.db.schema.table(target_node.table).pk]
            if not self.tuple_sets.in_tuple_set(target_node.table, pk, target_node.keywords):
                continue
            key = (target_node.table, pk)
            if key in used:
                continue  # joining trees use distinct tuples
            assignment[target] = key
            yield from self._extend(cn, adjacency, order, position + 1, assignment)
            del assignment[target]
