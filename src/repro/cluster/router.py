"""Deterministic dataset -> shard routing with replica fan-out.

Partitioning answers two questions the supervisor asks on every
request:

* **placement** — which workers hold which datasets' snapshots?  Each
  dataset is assigned to ``replicas`` workers (default 1); hot datasets
  get more so their query load fans out across cores.  Placement is
  least-loaded greedy over datasets in sorted order, so it is a pure
  function of ``(datasets, num_workers, replica counts)`` — every
  supervisor computes the same shard map without coordination.
* **routing** — which replica serves *this* request?  The replica index
  is ``crc32`` of the request's canonical query identity, so the same
  logical query always lands on the same worker.  That is not just
  determinism for tests: each worker owns a private result cache, and
  stable routing is what makes repeated queries hit it.

``crc32`` rather than ``hash()``: Python randomizes string hashes per
process, and the whole point is that routing agrees across processes
and runs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence
from zlib import crc32

from repro.errors import UnknownDatasetError

__all__ = ["ShardRouter"]


class ShardRouter:
    """Static shard map over ``num_workers`` workers.

    Parameters
    ----------
    datasets:
        Dataset names to place (order-insensitive; placement sorts).
    num_workers:
        Worker count; worker ids are ``0 .. num_workers - 1``.
    default_replicas:
        Copies of each dataset unless overridden (capped at
        ``num_workers``).
    replicas:
        Per-dataset override, e.g. ``{"dblp": 4}`` to fan a hot dataset
        over four workers.
    """

    def __init__(
        self,
        datasets: Sequence[str],
        num_workers: int,
        *,
        default_replicas: int = 1,
        replicas: Optional[Mapping[str, int]] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers!r}")
        if default_replicas < 1:
            raise ValueError(
                f"default_replicas must be >= 1, got {default_replicas!r}"
            )
        names = sorted(set(datasets))
        if not names:
            raise ValueError("at least one dataset is required")
        overrides = dict(replicas or {})
        unknown = sorted(set(overrides) - set(names))
        if unknown:
            raise ValueError(f"replica overrides for unknown datasets: {unknown}")
        for name, count in overrides.items():
            if count < 1:
                raise ValueError(
                    f"replica count for {name!r} must be >= 1, got {count!r}"
                )

        self.num_workers = num_workers
        # Least-loaded greedy assignment, deterministic tie-break by
        # worker id.  Datasets are placed in sorted order so the map is
        # a pure function of the constructor arguments.
        loads = [0] * num_workers
        self._replicas: dict[str, tuple[int, ...]] = {}
        for name in names:
            count = min(overrides.get(name, default_replicas), num_workers)
            chosen: list[int] = []
            for _ in range(count):
                worker = min(
                    (w for w in range(num_workers) if w not in chosen),
                    key=lambda w: (loads[w], w),
                )
                chosen.append(worker)
                loads[worker] += 1
            self._replicas[name] = tuple(sorted(chosen))

    # ------------------------------------------------------------------
    def datasets(self) -> list[str]:
        """Placed dataset names, sorted."""
        return sorted(self._replicas)

    def replicas_for(self, dataset: str) -> tuple[int, ...]:
        """Worker ids holding ``dataset`` (ascending)."""
        try:
            return self._replicas[dataset]
        except KeyError:
            raise UnknownDatasetError(dataset) from None

    def assignments(self) -> dict[int, tuple[str, ...]]:
        """``{worker_id: (dataset, ...)}`` for every worker (possibly
        empty tuples: more workers than replica slots leaves spares)."""
        out: dict[int, list[str]] = {w: [] for w in range(self.num_workers)}
        for name in sorted(self._replicas):
            for worker in self._replicas[name]:
                out[worker].append(name)
        return {w: tuple(names) for w, names in out.items()}

    def route(self, dataset: str, key: object = None) -> int:
        """The worker id serving this ``(dataset, key)`` pair.

        ``key`` is any stable representation of the request identity
        (the supervisor passes the parsed keyword tuple + algorithm);
        equal keys always map to the same replica, distinct keys spread
        uniformly across them.
        """
        workers = self.replicas_for(dataset)
        if len(workers) == 1:
            return workers[0]
        digest = crc32(repr(key).encode("utf-8", "backslashreplace"))
        return workers[digest % len(workers)]
