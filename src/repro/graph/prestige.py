"""Node prestige: biased PageRank over the search graph (paper Section 2.3).

The paper computes node prestige "using a biased version of the Pagerank
random walk, similar to the computation of global ObjectRank, except
that ... the probability of following an edge is inversely proportional
to its edge weight taken from the data graph".  We implement exactly
that: from node ``u`` the walker follows edge ``e = (u, v)`` of the
*combined* search graph with probability ``(1/w_e) / sum(1/w)`` over
``u``'s out-edges, and teleports uniformly with probability
``1 - damping``.  The paper does not state a damping factor; we use the
Brin-Page default 0.85 (DESIGN.md Section 7).

Prestige is a preprocessing step ("can be assumed to be precomputed",
Section 2.3); the PRES benchmark measures its cost as the paper does in
Section 5.1.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["compute_prestige", "prestige_transition_matrix"]


def prestige_transition_matrix(graph) -> sp.csr_matrix:
    """Column-stochastic transition matrix ``P`` with ``P[v, u]`` the
    probability of stepping from ``u`` to ``v``.

    Dangling nodes (no out-edges; only possible for isolated nodes since
    every incident forward edge induces a backward edge) get an all-zero
    column; the power iteration redistributes their mass uniformly.
    """
    n = graph.num_nodes
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for u in range(n):
        edges = graph.out_edges(u)
        if not edges:
            continue
        norm = graph.out_inv_weight_sum(u)
        for v, w, _ in edges:
            rows.append(v)
            cols.append(u)
            vals.append((1.0 / w) / norm)
    return sp.csr_matrix(
        (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=(n, n)
    )


def compute_prestige(
    graph,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    teleport=None,
) -> np.ndarray:
    """Compute the biased-PageRank prestige vector of ``graph``.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.searchgraph.SearchGraph`.
    damping:
        Probability of following an edge (vs. teleporting); in (0, 1).
    tol:
        L1 convergence threshold between successive iterates.
    max_iter:
        Iteration cap; the walk on our graphs converges in a few dozen
        iterations at ``damping = 0.85``.
    teleport:
        Optional teleport distribution (defaults to uniform).  Passing a
        keyword-biased distribution yields per-keyword prestige in the
        style of ObjectRank; the paper only needs the global variant.

    Returns
    -------
    numpy.ndarray
        Non-negative vector summing to 1.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping!r}")
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.float64)

    if teleport is None:
        t = np.full(n, 1.0 / n, dtype=np.float64)
    else:
        t = np.asarray(teleport, dtype=np.float64)
        if t.shape != (n,):
            raise ValueError(f"teleport must have shape ({n},), got {t.shape}")
        if np.any(t < 0.0) or t.sum() <= 0.0:
            raise ValueError("teleport must be a non-negative, non-zero vector")
        t = t / t.sum()

    matrix = prestige_transition_matrix(graph)
    dangling = np.asarray(matrix.sum(axis=0)).ravel() == 0.0

    x = t.copy()
    for _ in range(max_iter):
        dangling_mass = float(x[dangling].sum()) if dangling.any() else 0.0
        new = damping * (matrix @ x) + (damping * dangling_mass + 1.0 - damping) * t
        if np.abs(new - x).sum() < tol:
            x = new
            break
        x = new
    return x / x.sum()
