"""Shared machinery of the three search algorithms.

Emission (minimality filter -> output heap -> stats), the Section 4.5
output bounds, flush scheduling and result assembly are identical across
MI-Backward, SI-Backward and Bidirectional; this module implements them
once.

Bound computation (Section 4.5): per keyword ``i`` the frontier minimum
``m_i`` lower-bounds the ``s(T, t_i)`` of answers not yet generated; the
NRA-style refinement (Fagin et al.) also considers every *seen but
incomplete* node, trusting its known distances and bounding missing ones
by ``m_i``.  The resulting edge-score lower bound converts to a score
upper bound through the scorer.  As the paper notes, activation-ordered
frontiers make this a heuristic; the RP experiment measures how ordered
the output actually is.
"""

from __future__ import annotations

from math import inf, isinf
from time import perf_counter
from typing import Iterable, Optional, Sequence

from repro.core.answer import OutputAnswer, SearchResult, is_minimal_rooting
from repro.core.cancellation import CancellationToken
from repro.core.output_heap import OutputHeap
from repro.core.params import SearchParams
from repro.core.scoring import Scorer
from repro.core.stats import SearchStats
from repro.core.ties import tight_decomposition
from repro.telemetry.trace import current_span

__all__ = ["BaseSearch", "nra_edge_bound", "frontier_minima"]


def nra_edge_bound(
    ms: Sequence[float],
    incomplete_dist_vectors: Iterable[Sequence[float]],
) -> float:
    """Lower bound on the edge score ``E`` of any future answer.

    ``ms`` are the per-keyword frontier minima; ``incomplete_dist_vectors``
    iterates the per-keyword distance vectors of seen-but-incomplete
    nodes (``inf`` marks an unknown distance, replaced by the
    corresponding ``m_i``).
    """
    best = sum(ms)
    for vector in incomplete_dist_vectors:
        total = 0.0
        for d, m in zip(vector, ms):
            total += m if isinf(d) else d
            if total >= best:
                break
        else:
            best = total
    return best


class BaseSearch:
    """Common state and emission/flush/termination logic."""

    algorithm = "base"

    def __init__(
        self,
        graph,
        keywords: Sequence[str],
        keyword_sets: Sequence[frozenset[int]],
        *,
        params: Optional[SearchParams] = None,
        scorer: Optional[Scorer] = None,
        token: Optional[CancellationToken] = None,
    ) -> None:
        if len(keywords) != len(keyword_sets):
            raise ValueError("keywords and keyword_sets must align")
        if not keyword_sets:
            raise ValueError("at least one keyword is required")
        self.graph = graph
        self.keywords = tuple(keywords)
        self.keyword_sets = tuple(frozenset(s) for s in keyword_sets)
        self.k = len(self.keyword_sets)
        self.params = params if params is not None else SearchParams()
        self.scorer = scorer if scorer is not None else Scorer(graph, self.params.lam)
        self.token = token
        self.stats = SearchStats()
        self.output = OutputHeap(self.params.output_mode)
        self._result = SearchResult(
            algorithm=self.algorithm, keywords=self.keywords, stats=self.stats
        )
        self._pops_since_flush = 0
        self._done = False
        self._stopped_by_cancel = False
        # Tracing: the ambient span (if any) receives an end-of-run
        # summary plus, when ``trace_every_n_pops`` is set, a sampled
        # trajectory.  With no span active every hook below reduces to
        # one falsy check per pop.
        self.span = current_span()
        self._sample_every = (
            self.params.trace_every_n_pops if self.span is not None else 0
        )
        self._samples: list[dict] = []
        self._emit_seconds = 0.0
        self._t_start = perf_counter() if self.span is not None else 0.0
        # EXPLAIN mode (off by default): when enabled the loops append a
        # bounded timeline of sampled frontier states and scheduling
        # decisions here.  Off, every hook reduces to one falsy check.
        self._explain_every = 0
        self._explain_limit = 0
        self.explain_events: list[dict] = []

    # ------------------------------------------------------------------
    # explain
    # ------------------------------------------------------------------
    def enable_explain(self, every: int = 64, limit: int = 256) -> None:
        """Collect a sampled expansion timeline (one entry per ``every``
        pops, at most ``limit`` events) into :attr:`explain_events`."""
        self._explain_every = max(1, int(every))
        self._explain_limit = max(1, int(limit))

    def explain_note(self, kind: str, **data) -> None:
        """Append one timeline event (call sites guard on
        ``self._explain_every`` so disabled explain costs one check)."""
        if len(self.explain_events) >= self._explain_limit:
            return
        data["event"] = kind
        data["pops"] = self.stats.nodes_explored
        self.explain_events.append(data)

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def _frontier_sizes(self) -> dict[str, int]:
        """Per-side frontier sizes, overridden by each algorithm."""
        return {}

    def _profile_tick(self) -> None:
        """Record a trajectory sample every ``trace_every_n_pops`` pops.

        Called once per pop by every main loop; the common (sampling
        off) case is a single falsy check.
        """
        every = self._sample_every
        if every and self.stats.nodes_explored % every == 0:
            self._samples.append(
                {
                    "pops": self.stats.nodes_explored,
                    "touched": self.stats.nodes_touched,
                    "answers_output": self.stats.answers_output,
                    "elapsed": perf_counter() - self._t_start,
                    "frontiers": self._frontier_sizes(),
                }
            )
        every = self._explain_every
        if every and self.stats.nodes_explored % every == 0:
            self.explain_note(
                "sample",
                touched=self.stats.nodes_touched,
                answers_output=self.stats.answers_output,
                frontiers=self._frontier_sizes(),
            )

    @property
    def emit_seconds(self) -> float:
        """Cumulative time spent scoring/releasing answers (only
        measured while a span is active)."""
        return self._emit_seconds

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit_tree(self, root, paths, dists) -> None:
        """Score and buffer a candidate tree (Figure 3 EMIT)."""
        if self.span is None:
            self._emit_tree_now(root, paths, dists)
            return
        t0 = perf_counter()
        try:
            self._emit_tree_now(root, paths, dists)
        finally:
            self._emit_seconds += perf_counter() - t0

    def _emit_tree_now(self, root, paths, dists) -> None:
        self.stats.emit_attempts += 1
        if not is_minimal_rooting(root, paths):
            return
        tree = self.scorer.build_tree(root, paths, dists)
        status = self.output.add(
            tree,
            self.stats.now(),
            self.stats.nodes_explored,
            self.stats.nodes_touched,
        )
        if status == "duplicate":
            self.stats.duplicates_discarded += 1
        elif status == "new":
            self.stats.answers_generated += 1

    def _emit_tie_alternate(self, root, paths, dist_fn) -> None:
        """Emit the canonical equal-cost decomposition of ``root`` when
        it differs from the just-emitted ``sp``-table one.

        Under shortest-path ties the table's decomposition may be a
        non-minimal chain while an equal-cost minimal star exists; the
        minimality filter would then discard the root's only tree.  The
        canonical decomposition (:mod:`repro.core.ties`) is computed
        from distances and the static graph alone, so the oracle and
        every backend agree on it.
        """
        if not self.params.tie_alternates:
            return
        alt = tight_decomposition(self.graph, dist_fn, root, self.k)
        if alt is None:
            return
        alt_paths, alt_dists = alt
        if alt_paths == list(paths):
            return
        self._emit_tree(root, alt_paths, alt_dists)

    def _tie_sweep(self, complete_nodes, build_default, dist_fn) -> None:
        """At natural exhaustion, re-emit each complete node's canonical
        equal-cost decomposition from its *final* distances.

        Per-emission alternates can be computed from a descendant's
        not-yet-final distance (an equal-cost path discovered later
        changes which edges are tight without re-triggering the root's
        emission); this sweep closes that gap.  Callers invoke it only
        when their queues drained naturally — never after a
        cancellation, budget stop or filled top-k quota.
        """
        if not self.params.tie_alternates:
            return
        for root in complete_nodes:
            alt = tight_decomposition(self.graph, dist_fn, root, self.k)
            if alt is None:
                continue
            alt_paths, alt_dists = alt
            default_paths, _ = build_default(root)
            if alt_paths == list(default_paths):
                continue
            self._emit_tree(root, alt_paths, alt_dists)

    # ------------------------------------------------------------------
    # flushing (Section 4.5)
    # ------------------------------------------------------------------
    def _should_flush(self) -> bool:
        """Throttle bound recomputation: at least ``flush_interval``
        pops apart, growing with the explored set so total bound upkeep
        stays linear-ish in search size."""
        if not self.output:
            self._pops_since_flush = 0
            return False
        interval = max(self.params.flush_interval, self.stats.nodes_explored // 8)
        if self._pops_since_flush < interval:
            return False
        self._pops_since_flush = 0
        return True

    def _flush(self, edge_bound: float) -> None:
        """Release buffered answers the bound allows; sets ``_done`` when
        the top-k quota is filled."""
        if self.span is None:
            self._flush_now(edge_bound)
            return
        t0 = perf_counter()
        try:
            self._flush_now(edge_bound)
        finally:
            self._emit_seconds += perf_counter() - t0

    def _flush_now(self, edge_bound: float) -> None:
        if self.params.output_mode == "exact":
            score_bound = self.scorer.score_upper_bound(edge_bound, self.k)
            ready = self.output.pop_ready(score_bound=score_bound)
        else:
            ready = self.output.pop_ready(edge_bound=edge_bound)
        for buffered in ready:
            self._result.answers.append(
                OutputAnswer(
                    tree=buffered.tree,
                    generated_at=buffered.generated_at,
                    generated_pops=buffered.generated_pops,
                    output_at=self.stats.now(),
                    output_pops=self.stats.nodes_explored,
                    generated_touched=buffered.generated_touched,
                    output_touched=self.stats.nodes_touched,
                )
            )
            self.stats.answers_output += 1
            if self.stats.answers_output >= self.params.max_results:
                self._done = True
                return

    def _drain(self) -> None:
        """Search exhausted: release everything left, best first, up to k."""
        for buffered in self.output.drain():
            if self.stats.answers_output >= self.params.max_results:
                break
            self._result.answers.append(
                OutputAnswer(
                    tree=buffered.tree,
                    generated_at=buffered.generated_at,
                    generated_pops=buffered.generated_pops,
                    output_at=self.stats.now(),
                    output_pops=self.stats.nodes_explored,
                    generated_touched=buffered.generated_touched,
                    output_touched=self.stats.nodes_touched,
                )
            )
            self.stats.answers_output += 1

    # ------------------------------------------------------------------
    def _budget_exhausted(self) -> bool:
        budget = self.params.node_budget
        return budget is not None and self.stats.nodes_explored >= budget

    def _cancelled(self) -> bool:
        """One cooperative tick per pop; True once the token has fired.

        The anytime contract: each algorithm's main loop calls this
        alongside its budget check and simply breaks — the result is
        assembled (and flagged) by :meth:`_finish`.
        """
        token = self.token
        if token is not None and token.tick():
            self._stopped_by_cancel = True
            return True
        return False

    def _finish(self) -> SearchResult:
        if self._stopped_by_cancel and not self._done:
            # Cancelled: keep exactly the answers the Section 4.5 bound
            # already certified and released.  Draining the buffer here
            # would break the prefix property — a longer run could
            # still generate answers that outrank the buffered ones.
            # (A token firing after the queues drained naturally is not
            # a cancellation: the search finished, the result is
            # complete.)
            self._result.complete = False
            self._result.cancel_reason = (
                self.token.reason if self.token is not None else None
            )
        elif not self._done:
            self._drain()
        self.stats.finish()
        span = self.span
        if span is not None:
            span.set_attributes(
                {
                    "pops": self.stats.nodes_explored,
                    "nodes_touched": self.stats.nodes_touched,
                    "edges_explored": self.stats.edges_explored,
                    "answers_generated": self.stats.answers_generated,
                    "answers_output": self.stats.answers_output,
                    "duplicates_discarded": self.stats.duplicates_discarded,
                    "complete": self._result.complete,
                    "frontiers": self._frontier_sizes(),
                }
            )
            if self._result.cancel_reason is not None:
                span.set_attribute("cancel_reason", self._result.cancel_reason)
            if self._samples:
                span.set_attribute("profile_every", self._sample_every)
                span.set_attribute("profile", list(self._samples))
        return self._result

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:  # pragma: no cover - overridden
        raise NotImplementedError


def frontier_minima(k: int, frontiers: Iterable[Iterable[int]], dist_fn) -> list[float]:
    """Per-keyword minimum known distance over the given frontier node
    iterables (``m_i`` of Section 4.5).  ``dist_fn(node, i)`` returns the
    node's known distance to keyword ``i`` or ``inf``."""
    ms = [inf] * k
    for frontier in frontiers:
        for node in frontier:
            for i in range(k):
                d = dist_fn(node, i)
                if d < ms[i]:
                    ms[i] = d
    return ms
