"""Experiment-harness helpers: profiles, combos, sampling fallbacks."""

import pytest

from repro.experiments.common import build_bench, workload_rng
from repro.experiments.fig5 import QUERY_PROFILES, _sample_profile
from repro.experiments.fig6 import FIG6C_COMBOS
from repro.workload.bands import BAND_ORDER


class TestQueryProfiles:
    def test_ten_profiles_cover_three_datasets(self):
        assert len(QUERY_PROFILES) == 10
        datasets = {dataset for _, dataset, _, _ in QUERY_PROFILES}
        assert datasets == {"dblp", "imdb", "patents"}

    def test_profiles_mirror_paper_rows(self):
        by_id = {qid: (combo, size) for qid, _, combo, size in QUERY_PROFILES}
        # DQ1: 2 keywords, answer size 3; DQ9: 6 keywords, size 7;
        # UQ1: 2 keywords, size 2 (paper Figure 5).
        assert len(by_id["DQ1"][0]) == 2 and by_id["DQ1"][1] == 3
        assert len(by_id["DQ9"][0]) == 6 and by_id["DQ9"][1] == 7
        assert len(by_id["UQ1"][0]) == 2 and by_id["UQ1"][1] == 2

    def test_band_codes_valid(self):
        for _, _, combo, _ in QUERY_PROFILES:
            assert set(combo) <= set(BAND_ORDER)


class TestFig6cCombos:
    def test_eight_labeled_combos(self):
        labels = [label for label, _ in FIG6C_COMBOS]
        assert labels == list("ABCDEFGH")

    def test_uniform_and_skewed_present(self):
        combos = {combo for _, combo in FIG6C_COMBOS}
        assert ("T", "T", "T", "T") in combos  # uniform rare
        assert ("T", "T", "T", "L") in combos  # paper's maximal skew
        assert ("M", "M", "M", "M") in combos  # paper's weakest win


class TestSampleProfile:
    def test_sample_succeeds_on_small_dataset(self):
        bench = build_bench("dblp", 0.2)
        query = _sample_profile(bench, ("T", "T"), 3, seed=12345)
        assert query is not None
        assert len(query.keywords) == 2

    def test_downgrade_fallback(self):
        # An impossible Large-heavy combo on a tiny dataset should fall
        # back through the downgrade chain rather than returning None.
        bench = build_bench("dblp", 0.2)
        query = _sample_profile(bench, ("L", "L", "L", "L"), 3, seed=999)
        # Either the combo was instantiable or it degraded to rarer
        # bands; both outcomes produce a usable 4-keyword query or None
        # (never an exception).
        if query is not None:
            assert len(query.keywords) == 4


class TestWorkloadRng:
    def test_deterministic(self):
        assert workload_rng(7).random() == workload_rng(7).random()
        assert workload_rng(7).random() != workload_rng(8).random()
