"""MI-Backward specifics: per-origin iterators, combo emission."""

import pytest

from repro.core.backward_mi import BackwardExpandingSearch, ShortestPathIterator
from repro.core.params import SearchParams
from repro.core.stats import SearchStats

from tests.helpers import build_graph


class TestShortestPathIterator:
    def test_settles_in_distance_order(self):
        g = build_graph(4, [(1, 0, 1.0), (2, 0, 2.0), (3, 2, 1.0)])
        it = ShortestPathIterator(g, origin=0, keyword_indices=(0,), stats=SearchStats())
        order = []
        while True:
            node = it.settle_next(dmax=10)
            if node is None:
                break
            order.append((node, it.settled[node]))
        dists = [d for _, d in order]
        assert dists == sorted(dists)
        assert order[0] == (0, 0.0)

    def test_reverse_traversal_follows_in_edges(self):
        # Forward chain 0 -> 1 -> 2: from origin 2, backward reaches 1 then 0.
        g = build_graph(3, [(0, 1), (1, 2)])
        it = ShortestPathIterator(g, origin=2, keyword_indices=(0,), stats=SearchStats())
        settled = []
        while (node := it.settle_next(dmax=10)) is not None:
            settled.append(node)
        assert set(settled) == {0, 1, 2}
        assert it.settled[0] == pytest.approx(2.0)

    def test_path_to_origin(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        it = ShortestPathIterator(g, origin=2, keyword_indices=(0,), stats=SearchStats())
        while it.settle_next(dmax=10) is not None:
            pass
        assert it.path_to_origin(0) == (0, 1, 2)
        assert it.path_to_origin(2) == (2,)

    def test_peek_is_next_distance(self):
        g = build_graph(2, [(0, 1, 2.5)])
        it = ShortestPathIterator(g, origin=1, keyword_indices=(0,), stats=SearchStats())
        assert it.peek() == 0.0
        it.settle_next(dmax=10)
        assert it.peek() == pytest.approx(2.5)

    def test_dmax_stops_expansion(self):
        edges = [(i, i + 1) for i in range(5)]
        g = build_graph(6, edges)
        it = ShortestPathIterator(g, origin=5, keyword_indices=(0,), stats=SearchStats())
        settled = []
        while (node := it.settle_next(dmax=2)) is not None:
            settled.append(node)
        assert len(settled) == 3  # origin + 2 hops


class TestMultiIterator:
    def test_one_iterator_per_origin_node(self):
        g = build_graph(4, [(0, 1), (2, 1), (3, 1)])
        sets = [frozenset({0, 2}), frozenset({3})]
        search = BackwardExpandingSearch(g, ("a", "b"), sets)
        assert len(search._iterators) == 3

    def test_origin_matching_both_keywords_shares_iterator(self):
        g = build_graph(3, [(0, 1), (2, 1)])
        sets = [frozenset({0}), frozenset({0, 2})]
        search = BackwardExpandingSearch(g, ("a", "b"), sets)
        origins = {(it.origin, it.keyword_indices) for it in search._iterators}
        assert (0, (0, 1)) in origins
        assert (2, (1,)) in origins
        assert len(search._iterators) == 2

    def test_multiple_origin_combinations_emitted(self):
        # Node 1 is reachable from two origins of keyword 0 and one of
        # keyword 1 -> two distinct trees rooted at 1's ancestors.
        g = build_graph(4, [(1, 0), (1, 2), (1, 3)])
        sets = [frozenset({0, 2}), frozenset({3})]
        result = BackwardExpandingSearch(
            g, ("a", "b"), sets, params=SearchParams(max_results=100)
        ).run()
        matched = {tuple(sorted(a.tree.matched_nodes())) for a in result.answers}
        assert (0, 3) in matched
        assert (2, 3) in matched

    def test_combo_cap_limits_emissions(self):
        # A hub with many origins: the per-node combo cap must bound the
        # cross product.
        center = 0
        leaves = list(range(1, 9))
        g = build_graph(9, [(center, leaf) for leaf in leaves])
        sets = [frozenset(leaves[:4]), frozenset(leaves[4:])]
        capped = BackwardExpandingSearch(
            g,
            ("a", "b"),
            sets,
            params=SearchParams(max_results=1000, max_combos_per_node=2),
        ).run()
        full = BackwardExpandingSearch(
            g,
            ("a", "b"),
            sets,
            params=SearchParams(max_results=1000, max_combos_per_node=64),
        ).run()
        assert len(capped.answers) < len(full.answers)
        assert full.stats.answers_generated == 16  # 4 x 4 combos at the hub

    def test_touched_counts_per_iterator(self):
        # Each origin's iterator touches nodes independently (the MI
        # space blowup the paper describes).
        g = build_graph(3, [(0, 1), (0, 2)])
        sets = [frozenset({1}), frozenset({2})]
        result = BackwardExpandingSearch(
            g, ("a", "b"), sets, params=SearchParams(max_results=100)
        ).run()
        assert result.stats.nodes_touched > g.num_nodes
