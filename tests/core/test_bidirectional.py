"""Bidirectional-specific behaviour: forward search, activation order."""

import pytest

from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.params import SearchParams

from tests.helpers import build_graph


def figure4_like(n_papers=30, n_john=14):
    """A small Figure 4 shape: frequent keyword + two authors."""
    from repro.graph.digraph import DataGraph

    g = DataGraph()
    papers = [g.add_node(f"p{i}") for i in range(n_papers)]
    james = g.add_node("james")
    john = g.add_node("john")
    w_james = g.add_node("w_james")
    g.add_edge(w_james, james)
    g.add_edge(w_james, papers[-1])
    for paper in papers[n_papers - n_john:]:
        w = g.add_node(f"w_{paper}")
        g.add_edge(w, john)
        g.add_edge(w, paper)
    sets = [
        frozenset(papers),
        frozenset({james}),
        frozenset({john}),
    ]
    return g.freeze(), sets, papers[-1]


class TestForwardSearch:
    def test_generates_result_before_backward_exhaustion(self):
        graph, sets, co_paper = figure4_like()
        # Pops-to-generate compares per-pop scheduling, so pin the
        # reference per-pop loop (batched backends pop whole batches).
        params = SearchParams(max_results=1, expansion_backend="python")
        bidi = BidirectionalSearch(
            graph, ("db", "james", "john"), sets, params=params
        ).run()
        si = SingleIteratorBackwardSearch(
            graph, ("db", "james", "john"), sets, params=params
        ).run()
        assert bidi.answers and si.answers
        assert co_paper in bidi.best().tree.nodes()
        # The headline claim: Bidirectional generates the answer far
        # earlier than distance-ordered backward search.
        assert bidi.best().generated_pops < si.best().generated_pops / 3

    def test_same_best_answer_as_si(self):
        graph, sets, _ = figure4_like()
        params = SearchParams(max_results=1)
        bidi = BidirectionalSearch(graph, ("a", "b", "c"), sets, params=params).run()
        si = SingleIteratorBackwardSearch(
            graph, ("a", "b", "c"), sets, params=params
        ).run()
        assert bidi.best().tree.signature() == si.best().tree.signature()

    def test_forward_only_reachable_root(self):
        # Root 1 is *between* the keywords: 1 -> 0 and 1 -> 2, so the
        # backward search from {0} and {2} touches 1 immediately; the
        # answer needs both directed paths out of 1.
        g = build_graph(3, [(1, 0), (1, 2)])
        sets = [frozenset({0}), frozenset({2})]
        result = BidirectionalSearch(
            g, ("a", "b"), sets, params=SearchParams(max_results=10)
        ).run()
        assert result.answers
        assert result.best().tree.root == 1


class TestActivationOrdering:
    def test_rare_keyword_expanded_first(self):
        graph, sets, _ = figure4_like()
        # Spies on the legacy _expand_incoming hook, which the batched
        # backends bypass — pin the reference per-pop loop.
        search = BidirectionalSearch(
            graph,
            ("db", "james", "john"),
            sets,
            params=SearchParams(max_results=1, expansion_backend="python"),
        )
        popped = []
        original = search._expand_incoming

        def spy():
            top = search._qin.peek_priority()
            node = None
            # peek top item for recording: pop happens inside original.
            original()
            popped.append(top)

        search._expand_incoming = spy
        search.run()
        # Priorities of successive Qin pops: the first pop must be one of
        # the rare keywords (activation 1/|S| of a paper node is tiny).
        assert popped[0] == max(popped)

    def test_mu_zero_spreads_nothing(self):
        graph, sets, _ = figure4_like()
        result = BidirectionalSearch(
            graph,
            ("db", "james", "john"),
            sets,
            params=SearchParams(mu=0.0, max_results=1),
        ).run()
        # Still correct, just differently ordered.
        assert result.answers

    def test_queue_priorities_track_activation_increases(self):
        g = build_graph(4, [(0, 1), (1, 2), (3, 2)])
        sets = [frozenset({2})]
        search = BidirectionalSearch(g, ("x",), sets)
        search._qin.push(1, 0.0)
        search._act._set(1, 0, 0.25)
        assert search._qin.get_priority(1) == pytest.approx(0.25)


class TestBothQueuesCount:
    def test_explored_counts_both_queues(self):
        g = build_graph(3, [(0, 1), (0, 2)])
        sets = [frozenset({1}), frozenset({2})]
        result = BidirectionalSearch(
            g, ("a", "b"), sets, params=SearchParams(max_results=100)
        ).run()
        # At exhaustion every node is popped from Qin and again from
        # Qout, so explored exceeds the node count.
        assert result.stats.nodes_explored > g.num_nodes
