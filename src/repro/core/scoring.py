"""Answer-tree scoring (paper Section 2.3).

* ``s(T, t_i)``: sum of edge weights on the root-to-keyword-i path —
  this is exactly the ``dist`` the algorithms maintain.
* Aggregate edge score ``E = sum_i s(T, t_i)`` (the paper's footnote 4
  simplification of BANKS-I's all-edges sum); smaller is better.
* Tree node score ``N``: sum of node prestige over the leaf nodes and
  the root.
* Overall score: the paper writes ``E N^lambda`` without fixing the
  direction of ``E``; following BANKS-I we normalize the edge score to
  ``1 / (1 + E)`` so the overall relevance ``N**lambda / (1 + E)`` is
  larger-is-better and decreases monotonically in ``E`` — the property
  the Section 4.5 output bound depends on.  ``lambda`` defaults to 0.2.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.answer import AnswerTree

__all__ = ["Scorer", "edge_score", "overall_score"]


def edge_score(dists: Sequence[float]) -> float:
    """Aggregate edge score ``E = sum_i s(T, t_i)``."""
    return float(sum(dists))


def overall_score(e: float, n: float, lam: float) -> float:
    """Overall relevance ``N**lambda / (1 + E)``, larger is better."""
    if e < 0.0:
        raise ValueError(f"edge score must be >= 0, got {e!r}")
    if n < 0.0:
        raise ValueError(f"node score must be >= 0, got {n!r}")
    return (n ** lam) / (1.0 + e)


class Scorer:
    """Binds a graph's prestige vector and ``lambda`` into tree scoring."""

    def __init__(self, graph, lam: float = 0.2) -> None:
        if lam < 0.0:
            raise ValueError(f"lambda must be >= 0, got {lam!r}")
        self._graph = graph
        self.lam = lam
        # Root + k leaves bounds N; cached for the output bound.
        self._max_prestige = graph.max_prestige

    # ------------------------------------------------------------------
    def node_score(self, root: int, leaves) -> float:
        """``N``: prestige of the root plus the (distinct) leaf nodes."""
        total = self._graph.node_prestige(root)
        for leaf in leaves:
            if leaf != root:
                total += self._graph.node_prestige(leaf)
        return total

    def build_tree(
        self,
        root: int,
        paths: Sequence[Sequence[int]],
        dists: Sequence[float],
    ) -> AnswerTree:
        """Assemble and score an :class:`AnswerTree` from per-keyword paths."""
        if len(paths) != len(dists):
            raise ValueError("paths and dists must have equal length")
        tree_paths = tuple(tuple(path) for path in paths)
        for path in tree_paths:
            if not path or path[0] != root:
                raise ValueError(f"every path must start at the root {root}")
        tree = AnswerTree(
            root=root,
            paths=tree_paths,
            dists=tuple(float(d) for d in dists),
            edge_score=0.0,
            node_score=0.0,
            score=0.0,
        )
        e = edge_score(dists)
        n = self.node_score(root, tree.leaves())
        scored = AnswerTree(
            root=root,
            paths=tree_paths,
            dists=tree.dists,
            edge_score=e,
            node_score=n,
            score=overall_score(e, n, self.lam),
        )
        return scored

    # ------------------------------------------------------------------
    # bounds (Section 4.5)
    # ------------------------------------------------------------------
    def node_score_upper_bound(self, num_keywords: int) -> float:
        """Largest possible ``N``: root plus one leaf per keyword, each at
        the maximum prestige."""
        return self._max_prestige * (num_keywords + 1)

    def score_upper_bound(self, min_edge_score: float, num_keywords: int) -> float:
        """Best overall score any tree with ``E >= min_edge_score`` can have."""
        if math.isinf(min_edge_score):
            return 0.0
        n_ub = self.node_score_upper_bound(num_keywords)
        return overall_score(min_edge_score, n_ub, self.lam)
