"""Candidate-network enumeration over the schema graph.

A candidate network (CN) is a tree whose nodes are tuple sets
(``R^K`` non-free, ``R^{}`` free) and whose edges are schema foreign
keys; executing it joins the sets into answer trees.  Following
Discover/Sparse (Hristidis et al.), a CN is *valid* when it is

* **total** — the union of its non-free keyword subsets covers the query,
* **leaf-constrained** — no leaf is a free tuple set (a free leaf could
  be dropped, so the tree is redundant), and
* **minimal** — removing any leaf breaks totality,

and *useful* when none of its non-free tuple sets is empty for the
current query.  Enumeration is breadth-first expansion of partial
trees, deduplicated by a canonical form (minimum rooted serialization
over all roots), up to ``max_size`` nodes — the paper compares against
"all candidate networks smaller than the relevant ones" (Section 5.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.relational.schema import ForeignKey, Schema

__all__ = ["CNNode", "CandidateNetwork", "enumerate_candidate_networks"]


@dataclass(frozen=True)
class CNNode:
    """One tuple set in a CN: a table plus the exact keyword subset
    (empty = free tuple set)."""

    table: str
    keywords: frozenset[str]

    @property
    def is_free(self) -> bool:
        return not self.keywords

    def label(self) -> str:
        if self.is_free:
            return self.table
        return f"{self.table}^{{{','.join(sorted(self.keywords))}}}"


@dataclass(frozen=True)
class CandidateNetwork:
    """A tree of tuple sets; ``edges[i] = (a, b, fk)`` joins node
    indices ``a`` and ``b`` where ``fk.table == nodes[a].table`` and
    ``fk.ref_table == nodes[b].table`` (direction preserved)."""

    nodes: tuple[CNNode, ...]
    edges: tuple[tuple[int, int, ForeignKey], ...]

    @property
    def size(self) -> int:
        return len(self.nodes)

    def covered_keywords(self) -> frozenset[str]:
        out: set[str] = set()
        for node in self.nodes:
            out.update(node.keywords)
        return frozenset(out)

    def adjacency(self) -> dict[int, list[tuple[int, ForeignKey, bool]]]:
        """index -> [(neighbour, fk, outgoing?)]"""
        adj: dict[int, list[tuple[int, ForeignKey, bool]]] = {
            i: [] for i in range(len(self.nodes))
        }
        for a, b, fk in self.edges:
            adj[a].append((b, fk, True))
            adj[b].append((a, fk, False))
        return adj

    def leaves(self) -> list[int]:
        if len(self.nodes) == 1:
            return [0]
        degree = [0] * len(self.nodes)
        for a, b, _ in self.edges:
            degree[a] += 1
            degree[b] += 1
        return [i for i, d in enumerate(degree) if d == 1]

    # ------------------------------------------------------------------
    def is_total(self, keywords: Sequence[str]) -> bool:
        return frozenset(keywords) <= self.covered_keywords()

    def is_minimal(self, keywords: Sequence[str]) -> bool:
        """No leaf removable without losing totality; free leaves are
        never minimal."""
        query = frozenset(keywords)
        for leaf in self.leaves():
            if self.nodes[leaf].is_free:
                return False
            others: set[str] = set()
            for i, node in enumerate(self.nodes):
                if i != leaf:
                    others.update(node.keywords)
            if query <= others:
                return False
        return True

    def is_valid(self, keywords: Sequence[str]) -> bool:
        return self.is_total(keywords) and self.is_minimal(keywords)

    # ------------------------------------------------------------------
    def canonical_form(self) -> str:
        """Root-invariant serialization for deduplication."""
        adj = self.adjacency()

        def serialize(node: int, parent: Optional[int]) -> str:
            children = []
            for neighbour, fk, outgoing in adj[node]:
                if neighbour == parent:
                    continue
                direction = ">" if outgoing else "<"
                fk_label = f"{fk.table}.{fk.column}"
                children.append(
                    f"{direction}{fk_label}({serialize(neighbour, node)})"
                )
            return self.nodes[node].label() + "[" + "|".join(sorted(children)) + "]"

        return min(serialize(root, None) for root in range(len(self.nodes)))

    def describe(self) -> str:
        """Readable join expression, e.g. ``paper^{x} <- writes -> author^{y}``."""
        if not self.edges:
            return self.nodes[0].label()
        parts = []
        for a, b, fk in self.edges:
            parts.append(
                f"{self.nodes[a].label()} -[{fk.table}.{fk.column}]-> "
                f"{self.nodes[b].label()}"
            )
        return " ; ".join(parts)


def _keyword_subset_choices(
    keywords: Sequence[str],
) -> list[frozenset[str]]:
    """All non-empty subsets of the query keywords, small first."""
    out: list[frozenset[str]] = []
    for r in range(1, len(keywords) + 1):
        out.extend(frozenset(c) for c in itertools.combinations(keywords, r))
    return out


def enumerate_candidate_networks(
    schema: Schema,
    keywords: Sequence[str],
    max_size: int,
    *,
    has_tuples=None,
    max_networks: Optional[int] = None,
    max_partials: int = 200_000,
) -> list[CandidateNetwork]:
    """All valid CNs of up to ``max_size`` tuple sets.

    Parameters
    ----------
    schema:
        Relational schema whose FKs form the schema graph.
    keywords:
        Normalized query keywords.
    max_size:
        Maximum number of tuple sets per CN (the paper executes CNs up
        to the size of the relevant answers).
    has_tuples:
        Optional pruning callback ``(table, keyword_subset) -> bool``;
        CNs using an empty non-free tuple set are skipped (Sparse's
        pruning).  Typically :meth:`repro.sparse.tuple_sets.TupleSets.has`.
    max_networks:
        Optional cap on the number of returned CNs (safety valve).
    max_partials:
        Hard cap on enumerated partial trees; the number of partials
        grows combinatorially with ``max_size``, so enumeration stops
        (returning the valid CNs found so far — still a lower bound for
        Sparse-LB purposes) once the cap is hit.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size!r}")
    keywords = [str(k) for k in keywords]
    subsets = _keyword_subset_choices(keywords)

    def usable(table: str, subset: frozenset[str]) -> bool:
        if has_tuples is None:
            return True
        return bool(has_tuples(table, subset))

    results: list[CandidateNetwork] = []
    seen: set[str] = set()
    # Start from every usable non-free tuple set.
    queue: list[CandidateNetwork] = []
    for table in schema.table_names():
        for subset in subsets:
            if usable(table, subset):
                queue.append(
                    CandidateNetwork(nodes=(CNNode(table, subset),), edges=())
                )

    head = 0
    while head < len(queue):
        if len(queue) > max_partials:
            break
        cn = queue[head]
        head += 1
        canon = cn.canonical_form()
        if canon in seen:
            continue
        seen.add(canon)

        if cn.is_valid(keywords):
            results.append(cn)
            if max_networks is not None and len(results) >= max_networks:
                break
        if cn.is_total(keywords):
            # Any proper supertree of a total tree has a removable leaf
            # (drop any leaf outside the total subtree and totality
            # survives), hence is never minimal: stop expanding.
            continue

        if cn.size >= max_size:
            continue

        for anchor in range(cn.size):
            anchor_table = cn.nodes[anchor].table
            for fk in schema.foreign_keys:
                if fk.table == anchor_table:
                    other, outgoing = fk.ref_table, True
                elif fk.ref_table == anchor_table:
                    other, outgoing = fk.table, False
                else:
                    continue
                # Free connector or any usable non-free subset: a valid
                # CN may contain non-free nodes contributing no *new*
                # keyword (redundant internal nodes), so no
                # missing-keyword restriction is applied here.
                choices: list[frozenset[str]] = [frozenset()]
                choices.extend(subsets)
                for subset in choices:
                    if subset and not usable(other, subset):
                        continue
                    new_index = cn.size
                    new_node = CNNode(other, subset)
                    if outgoing:
                        edge = (anchor, new_index, fk)
                    else:
                        edge = (new_index, anchor, fk)
                    queue.append(
                        CandidateNetwork(
                            nodes=cn.nodes + (new_node,),
                            edges=cn.edges + (edge,),
                        )
                    )

    results.sort(key=lambda cn: (cn.size, cn.canonical_form()))
    return results
