"""Workload generation, relevance ground truth and metrics (S15)."""

from repro.workload.bands import BAND_ORDER, OriginBands, PAPER_REFERENCE_NODES
from repro.workload.generator import WorkloadGenerator, WorkloadQuery
from repro.workload.metrics import (
    MeasurementPoint,
    connection_key,
    connection_recall,
    coverage_curve,
    precision_at_full_coverage,
    measure_at_last_relevant,
    precision_at_full_recall,
    recall,
    recall_precision_curve,
)
from repro.workload.relevance import relevant_answers, relevant_signatures

__all__ = [
    "BAND_ORDER",
    "OriginBands",
    "PAPER_REFERENCE_NODES",
    "WorkloadGenerator",
    "WorkloadQuery",
    "MeasurementPoint",
    "connection_key",
    "connection_recall",
    "coverage_curve",
    "precision_at_full_coverage",
    "measure_at_last_relevant",
    "precision_at_full_recall",
    "recall",
    "recall_precision_curve",
    "relevant_answers",
    "relevant_signatures",
]
