"""CancellationToken unit behaviour + cooperative stops in the searches."""

import threading
import time

import pytest

from repro.core.cancellation import CancellationToken
from repro.errors import SearchCancelledError
from repro.sparse.sparse_search import SparseSearch

QUERY = "database james john"
ALGORITHMS = ["bidirectional", "si-backward", "mi-backward"]


# ----------------------------------------------------------------------
# token unit behaviour
# ----------------------------------------------------------------------
class TestToken:
    def test_live_token_never_fires(self):
        token = CancellationToken(check_every=1)
        assert not any(token.tick() for _ in range(100))
        assert not token.fired
        assert token.reason is None

    def test_explicit_cancel_fires_and_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("cancelled")
        token.cancel("deadline")
        assert token.fired
        assert token.reason == "cancelled"
        assert token.tick()  # fast path: fired is sticky

    def test_deadline_fires_on_full_check(self):
        token = CancellationToken(
            deadline=time.monotonic() - 0.001, check_every=4
        )
        ticks_until_fired = 0
        while not token.tick():
            ticks_until_fired += 1
        assert ticks_until_fired < 4
        assert token.reason == "deadline"

    def test_with_timeout_sets_future_deadline(self):
        token = CancellationToken.with_timeout(60.0)
        assert not token.check()
        assert 59.0 < token.remaining() <= 60.0

    def test_with_timeout_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="timeout"):
            CancellationToken.with_timeout(0.0)

    def test_check_every_validated(self):
        with pytest.raises(ValueError, match="check_every"):
            CancellationToken(check_every=0)

    def test_cancel_at_tick_is_exact(self):
        token = CancellationToken(cancel_at_tick=5, check_every=1000)
        fired_at = next(i for i in range(1, 100) if token.tick())
        assert fired_at == 5
        assert token.reason == "cancelled"

    def test_parent_cancel_propagates_with_reason(self):
        parent = CancellationToken()
        child = CancellationToken(parent=parent, check_every=1)
        assert not child.tick()
        parent.cancel("deadline")
        assert child.tick()
        assert child.reason == "deadline"

    def test_external_check_fires(self):
        flag = []
        token = CancellationToken(external_check=lambda: bool(flag), check_every=1)
        assert not token.tick()
        flag.append(1)
        assert token.tick()
        assert token.reason == "cancelled"

    def test_raise_if_cancelled(self):
        token = CancellationToken()
        token.raise_if_cancelled()  # live: no-op
        token.cancel()
        with pytest.raises(SearchCancelledError) as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.reason == "cancelled"

    def test_cancel_from_another_thread_is_seen(self):
        token = CancellationToken(check_every=1)
        thread = threading.Thread(target=token.cancel)
        thread.start()
        thread.join()
        assert token.tick()


# ----------------------------------------------------------------------
# search integration (one engine, all three algorithms)
# ----------------------------------------------------------------------
class TestSearchCancellation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_prefired_token_returns_within_two_check_intervals(
        self, dblp_small_engine, algorithm
    ):
        interval = 8
        token = CancellationToken(check_every=interval)
        token.cancel()
        result = dblp_small_engine.search(QUERY, algorithm=algorithm, token=token)
        assert result.complete is False
        assert result.cancel_reason == "cancelled"
        assert result.stats.nodes_explored <= 2 * interval

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cancelled_answers_are_prefix_of_full_run(
        self, dblp_small_engine, algorithm
    ):
        full = dblp_small_engine.search(QUERY, algorithm=algorithm)
        assert full.complete
        token = CancellationToken(cancel_at_tick=200, check_every=1)
        part = dblp_small_engine.search(QUERY, algorithm=algorithm, token=token)
        assert part.complete is False
        assert len(part.answers) <= len(full.answers)
        assert part.signatures() == full.signatures()[: len(part.answers)]

    def test_expired_deadline_yields_deadline_reason(self, dblp_small_engine):
        token = CancellationToken(
            deadline=time.monotonic() - 1.0, check_every=4
        )
        result = dblp_small_engine.search(QUERY, token=token)
        assert result.complete is False
        assert result.cancel_reason == "deadline"

    def test_unfired_token_leaves_result_complete(self, toy_engine):
        token = CancellationToken.with_timeout(60.0)
        result = toy_engine.search("gray transaction", token=token)
        assert result.complete is True
        assert result.cancel_reason is None
        assert result.answers

    def test_budget_exhaustion_is_not_cancellation(self, dblp_small_engine):
        params = dblp_small_engine.params.with_(node_budget=50)
        result = dblp_small_engine.search(QUERY, params=params)
        assert result.complete is True
        assert result.cancel_reason is None


# ----------------------------------------------------------------------
# the oracle and the sparse baseline
# ----------------------------------------------------------------------
def test_exhaustive_raises_on_cancel(toy_engine):
    token = CancellationToken(cancel_at_tick=1, check_every=1)
    with pytest.raises(SearchCancelledError):
        toy_engine.exhaustive("gray transaction", token=token)


def test_exhaustive_unfired_token_is_harmless(toy_engine):
    with_token = toy_engine.exhaustive(
        "gray transaction", token=CancellationToken.with_timeout(60.0)
    )
    without = toy_engine.exhaustive("gray transaction")
    assert [t.signature() for t in with_token] == [t.signature() for t in without]


class TestSparseCancellation:
    def test_cancelled_sparse_returns_partial(self, toy_db):
        sparse = SparseSearch(toy_db, max_cn_size=4)
        full = sparse.search("gray transaction", k=None)
        assert full.complete
        token = CancellationToken(cancel_at_tick=2, check_every=1)
        part = sparse.search("gray transaction", k=None, token=token)
        assert part.complete is False
        assert part.cancel_reason == "cancelled"
        assert len(part.results) <= len(full.results)

    def test_unfired_token_leaves_sparse_complete(self, toy_db):
        sparse = SparseSearch(toy_db, max_cn_size=4)
        outcome = sparse.search(
            "gray transaction", token=CancellationToken.with_timeout(60.0)
        )
        assert outcome.complete is True
