"""Property tests: OutputHeap dedup and release discipline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer import AnswerTree
from repro.core.output_heap import OutputHeap


def tree_from(skeleton_id: int, root_choice: int, score: float) -> AnswerTree:
    """A two-node tree whose skeleton is determined by skeleton_id and
    whose rooting (rotation) by root_choice."""
    a, b = 2 * skeleton_id, 2 * skeleton_id + 1
    root, leaf = (a, b) if root_choice == 0 else (b, a)
    return AnswerTree(
        root=root,
        paths=((root, leaf),),
        dists=(1.0,),
        edge_score=1.0,
        node_score=1.0,
        score=score,
    )


events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),   # skeleton
        st.integers(min_value=0, max_value=1),   # rotation
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),  # score
        st.booleans(),                           # flush after add?
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),   # bound
    ),
    max_size=40,
)


@given(events=events)
@settings(max_examples=150, deadline=None)
def test_each_skeleton_released_at_most_once(events):
    heap = OutputHeap(mode="exact")
    released = []
    for skeleton, rotation, score, flush, bound in events:
        heap.add(tree_from(skeleton, rotation, score), 0.0, 0)
        if flush:
            released.extend(b.tree for b in heap.pop_ready(score_bound=bound))
    released.extend(b.tree for b in heap.drain())
    signatures = [tree.signature() for tree in released]
    assert len(signatures) == len(set(signatures))
    assert not heap


@given(events=events)
@settings(max_examples=150, deadline=None)
def test_released_score_at_least_bound(events):
    heap = OutputHeap(mode="exact")
    for skeleton, rotation, score, flush, bound in events:
        heap.add(tree_from(skeleton, rotation, score), 0.0, 0)
        if flush:
            for buffered in heap.pop_ready(score_bound=bound):
                assert buffered.tree.score >= bound


@given(events=events)
@settings(max_examples=150, deadline=None)
def test_buffer_holds_best_rotation(events):
    heap = OutputHeap(mode="exact")
    best: dict[object, float] = {}
    for skeleton, rotation, score, _, _ in events:
        tree = tree_from(skeleton, rotation, score)
        heap.add(tree, 0.0, 0)
        signature = tree.signature()
        best[signature] = max(best.get(signature, 0.0), score)
    drained = {b.tree.signature(): b.tree.score for b in heap.drain()}
    assert drained == best
