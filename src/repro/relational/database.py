"""In-memory relational store.

Rows are plain dicts keyed by column name, stored per table and indexed
by primary key.  The store enforces column shape, primary-key uniqueness
and (by default) referential integrity at insert time — the behaviours
the graph builder and Sparse executor rely on.

Attribute values live here, not in the search graph, mirroring the
paper's split between the disk-resident tuples and the in-memory graph
index (Section 5.1).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Optional

from repro.errors import IntegrityError, UnknownColumnError
from repro.relational.indexes import HashIndex
from repro.relational.schema import Schema

__all__ = ["Database"]

Row = dict[str, Any]


class Database:
    """A schema-validated collection of tables with hash indexes."""

    def __init__(self, schema: Schema, *, enforce_fk: bool = True) -> None:
        self.schema = schema
        self._enforce_fk = enforce_fk
        self._rows: dict[str, dict[Hashable, Row]] = {
            name: {} for name in schema.table_names()
        }
        self._indexes: dict[tuple[str, str], HashIndex] = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, table: str, row: Row) -> Hashable:
        """Insert ``row`` into ``table`` and return its primary key."""
        tbl = self.schema.table(table)
        unknown = set(row) - set(tbl.columns)
        if unknown:
            raise UnknownColumnError(f"{table}.{sorted(unknown)[0]}")
        missing = set(tbl.columns) - set(row)
        if missing:
            raise IntegrityError(
                f"insert into {table!r} missing columns {sorted(missing)}"
            )
        pk = row[tbl.pk]
        store = self._rows[table]
        if pk in store:
            raise IntegrityError(f"duplicate primary key {pk!r} in table {table!r}")
        if self._enforce_fk:
            self._check_references(table, row)
        stored = dict(row)
        store[pk] = stored
        for (idx_table, idx_col), index in self._indexes.items():
            if idx_table == table:
                index.add(stored[idx_col], pk)
        return pk

    def insert_many(self, table: str, rows: Iterable[Row]) -> list[Hashable]:
        return [self.insert(table, row) for row in rows]

    def _check_references(self, table: str, row: Row) -> None:
        for fk in self.schema.fks_from(table):
            value = row[fk.column]
            if value is None:
                continue  # nullable reference
            if value not in self._rows[fk.ref_table]:
                raise IntegrityError(
                    f"{table}.{fk.column}={value!r} references missing "
                    f"{fk.ref_table} row"
                )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, table: str, pk: Hashable) -> Row:
        self.schema.table(table)
        try:
            return self._rows[table][pk]
        except KeyError:
            raise KeyError(f"no row {pk!r} in table {table!r}") from None

    def has(self, table: str, pk: Hashable) -> bool:
        self.schema.table(table)
        return pk in self._rows[table]

    def rows(self, table: str) -> Iterator[Row]:
        """Iterate all rows of ``table`` in insertion order."""
        self.schema.table(table)
        return iter(self._rows[table].values())

    def primary_keys(self, table: str) -> Iterator[Hashable]:
        self.schema.table(table)
        return iter(self._rows[table].keys())

    def count(self, table: str) -> int:
        self.schema.table(table)
        return len(self._rows[table])

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def select(self, table: str, predicate) -> Iterator[Row]:
        """Filter rows of ``table`` by an arbitrary predicate (full scan)."""
        return (row for row in self.rows(table) if predicate(row))

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def build_index(self, table: str, column: str) -> HashIndex:
        """Build (or return the existing) hash index on ``table.column``."""
        tbl = self.schema.table(table)
        if not tbl.has_column(column):
            raise UnknownColumnError(f"{table}.{column}")
        key = (table, column)
        index = self._indexes.get(key)
        if index is None:
            index = HashIndex(table, column)
            for pk, row in self._rows[table].items():
                index.add(row[column], pk)
            self._indexes[key] = index
        return index

    def build_join_indexes(self) -> None:
        """Index every FK column, both ends — the paper's "indices were
        created on all join columns" setup for the Sparse comparison."""
        for fk in self.schema.foreign_keys:
            self.build_index(fk.table, fk.column)
            self.build_index(fk.ref_table, fk.ref_column)

    def index(self, table: str, column: str) -> Optional[HashIndex]:
        return self._indexes.get((table, column))

    def lookup(self, table: str, column: str, value) -> list[Row]:
        """Rows of ``table`` with ``column == value``; indexed when possible."""
        index = self._indexes.get((table, column))
        if index is not None:
            store = self._rows[table]
            return [store[pk] for pk in index.get(value)]
        return [row for row in self.rows(table) if row[column] == value]

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(
            f"{name}={len(rows)}" for name, rows in self._rows.items()
        )
        return f"Database({sizes})"
