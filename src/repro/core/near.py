"""Near queries (paper Section 4.3, footnote 6).

The BANKS system exposes a query form that ranks *individual nodes* by
their aggregate proximity to the query keywords — "near queries" —
implemented by spreading activation with sum-combining instead of
max-combining ("With scoring models that aggregate scores along
multiple paths ... we could use other ways of combining the activation,
such as adding them up").

:class:`NearSearch` runs a best-first activation-ordered exploration
from the keyword nodes (both edge directions — proximity is
direction-agnostic) and returns nodes ranked by total received
activation.  Useful for "find entities related to X and Y" queries
where a connecting tree is not the desired answer shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.activation import ActivationTable
from repro.core.heaps import LazyMaxHeap
from repro.core.stats import SearchStats

__all__ = ["NearSearch", "NearResult"]


class NearResult:
    """Ranked nodes with their activation scores plus run statistics."""

    def __init__(self, ranking: list[tuple[int, float]], stats: SearchStats) -> None:
        self.ranking = ranking
        self.stats = stats

    def nodes(self) -> list[int]:
        return [node for node, _ in self.ranking]

    def __iter__(self):
        return iter(self.ranking)

    def __len__(self) -> int:
        return len(self.ranking)


class NearSearch:
    """Rank nodes by aggregated spreading activation from keywords."""

    def __init__(
        self,
        graph,
        keyword_sets: Sequence[frozenset[int]],
        *,
        mu: float = 0.5,
        node_budget: int = 1000,
        combine: str = "sum",
        include_keyword_nodes: bool = False,
    ) -> None:
        if node_budget < 1:
            raise ValueError(f"node_budget must be >= 1, got {node_budget!r}")
        self.graph = graph
        self.keyword_sets = tuple(frozenset(s) for s in keyword_sets)
        if not self.keyword_sets:
            raise ValueError("at least one keyword set is required")
        self.node_budget = node_budget
        self.include_keyword_nodes = include_keyword_nodes
        self.stats = SearchStats()
        self._queue = LazyMaxHeap()
        self._act = ActivationTable(
            graph,
            self.keyword_sets,
            mu=mu,
            combine=combine,
            on_activation_change=self._on_change,
        )

    def _on_change(self, node: int) -> None:
        if node in self._queue:
            self._queue.push(node, self._act.total(node))

    # ------------------------------------------------------------------
    def run(self, k: Optional[int] = 10) -> NearResult:
        """Explore and return the top-``k`` nodes by activation (``None``
        returns every activated node)."""
        self._act.seed_all()
        seeds: set[int] = set()
        for nodes in self.keyword_sets:
            seeds.update(nodes)
        for node in sorted(seeds):
            self._queue.push(node, self._act.total(node))
            self.stats.touch()

        explored: set[int] = set()
        # Explored edges in both directions feed the ACTIVATE cascade.
        parents: dict[int, dict[int, float]] = {}
        while self._queue and len(explored) < self.node_budget:
            node, _ = self._queue.pop()
            if node in explored:
                continue
            explored.add(node)
            self.stats.explore()
            for u, w, _ in self.graph.in_edges(node):
                self.stats.explore_edge()
                bucket = parents.setdefault(node, {})
                if u not in bucket or w < bucket[u]:
                    bucket[u] = w
                if u not in explored and u not in self._queue:
                    self._queue.push(u, self._act.total(u))
                    self.stats.touch()
            for v, w, _ in self.graph.out_edges(node):
                self.stats.explore_edge()
                bucket = parents.setdefault(v, {})
                if node not in bucket or w < bucket[node]:
                    bucket[node] = w
                if v not in explored and v not in self._queue:
                    self._queue.push(v, self._act.total(v))
                    self.stats.touch()
            self._act.spread_backward(node, parents)
            self._act.spread_forward(node, parents)

        ranking = [
            (node, total)
            for node, total in self._act.totals()
            if total > 0.0 and (self.include_keyword_nodes or node not in seeds)
        ]
        ranking.sort(key=lambda item: (-item[1], item[0]))
        if k is not None:
            ranking = ranking[:k]
        self.stats.finish()
        return NearResult(ranking, self.stats)
