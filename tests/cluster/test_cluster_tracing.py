"""Cross-process tracing through ``ShardedQueryService``: one trace id
spans the supervisor's ``route`` span, the synthesized ``queue_wait``,
and the worker-side ``worker`` → ``engine`` subtree shipped back over
the pipe."""

import pytest

from repro.service.service import QueryRequest


def _flatten(nodes):
    for node in nodes:
        yield node
        yield from _flatten(node.get("children", ()))


class TestCrossProcessTree:
    def test_route_queue_wait_worker_engine(self, sharded):
        # use_cache=False keeps the engine subtree present even when an
        # earlier test already warmed this query into a worker's cache.
        request = QueryRequest(
            dataset="alpha", query="gray transaction", use_cache=False
        )
        response = sharded.search(request)
        assert response.ok
        assert response.trace_id is not None
        assert response.spans is None  # trees are read via trace(), not inline
        tree = sharded.trace(response.trace_id)
        assert tree is not None
        assert tree["trace_id"] == response.trace_id
        names = {node["name"] for node in _flatten(tree["roots"])}
        # Supervisor-side spans and worker-side spans in one tree.
        assert {"route", "queue_wait", "worker", "engine"} <= names
        route = next(n for n in _flatten(tree["roots"]) if n["name"] == "route")
        assert route["attributes"]["dataset"] == "alpha"
        assert "worker" in route["attributes"]
        # The worker subtree crosses the process boundary under route.
        route_children = {child["name"] for child in route["children"]}
        assert "worker" in route_children
        assert "queue_wait" in route_children

    def test_engine_stage_span_has_pop_attributes(self, sharded):
        # use_cache=False: a worker that already served this query would
        # otherwise answer from cache, skipping the engine spans.
        request = QueryRequest(
            dataset="alpha", query="gray transaction", use_cache=False
        )
        response = sharded.search(request)
        tree = sharded.trace(response.trace_id)
        expand = next(
            (
                node
                for node in _flatten(tree["roots"])
                if node["name"].startswith("expand[")
            ),
            None,
        )
        assert expand is not None
        assert expand["attributes"]["pops"] >= 1
        assert "frontiers" in expand["attributes"]

    def test_caller_trace_id_survives_the_pipe(self, sharded):
        request = QueryRequest(
            dataset="beta",
            query="selinger",
            trace_id="ab" * 16,
            request_id="req-cluster-1",
        )
        response = sharded.search(request)
        assert response.ok
        assert response.trace_id == "ab" * 16
        assert response.request_id == "req-cluster-1"
        assert sharded.trace("ab" * 16) is not None

    def test_queue_wait_duration_nonnegative(self, sharded):
        response = sharded.search("alpha", "vldb")
        tree = sharded.trace(response.trace_id)
        waits = [
            node
            for node in _flatten(tree["roots"])
            if node["name"] == "queue_wait"
        ]
        assert waits
        assert all(node["duration"] >= 0.0 for node in waits)


class TestIdentityStamping:
    def test_error_response_keeps_request_and_trace_ids(self, sharded):
        request = QueryRequest(
            dataset="no-such-dataset", query="x", request_id="req-err-1"
        )
        response = sharded.search(request)
        assert not response.ok
        assert response.request_id == "req-err-1"
        assert response.trace_id is not None
        tree = sharded.trace(response.trace_id)
        (route,) = tree["roots"]
        assert route["name"] == "route"
        assert route["status"] == "error"

    def test_each_query_gets_a_fresh_trace(self, sharded):
        first = sharded.search("alpha", "gray")
        second = sharded.search("alpha", "gray")
        assert first.trace_id != second.trace_id
        assert sharded.trace(first.trace_id) is not None
        assert sharded.trace(second.trace_id) is not None

    def test_unknown_trace_returns_none(self, sharded):
        assert sharded.trace("0" * 32) is None


class TestSlowLog:
    def test_slow_queries_surface_with_span_trees(self, sharded):
        # The shared fleet has the default 1s threshold; flip it to
        # flight-record and restore afterwards (session fixture).
        original = sharded.slow_log.threshold
        sharded.slow_log.threshold = 0.0
        try:
            response = sharded.search("alpha", "gray transaction")
            entries = sharded.slow_queries()
            assert entries
            entry = entries[0]
            assert entry["trace_id"] == response.trace_id
            assert entry["request"]["dataset"] == "alpha"
            assert entry["span_tree"]["span_count"] >= 3
        finally:
            sharded.slow_log.threshold = original
            sharded.slow_log.clear()


class TestMergedRegistry:
    def test_cluster_metrics_carry_registry_families(self, sharded):
        sharded.search("alpha", "gray")
        merged = sharded.metrics()
        registry = merged["registry"]
        assert isinstance(registry, dict)
        workers = registry["repro_cluster_workers"]["samples"][0]["value"]
        assert workers == 2
        alive = registry["repro_cluster_workers_alive"]["samples"][0]["value"]
        assert alive == pytest.approx(2)
        # Worker-side request counters merge into the same family view.
        requests = registry["repro_requests_total"]["samples"]
        assert sum(sample["value"] for sample in requests) >= 1
