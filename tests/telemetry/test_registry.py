"""Unit tests for the metrics registry, cross-replica merge, and the
Prometheus text exposition."""

import pytest

from repro.telemetry.metrics import (
    MetricsRegistry,
    merge_registries,
    render_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits_total", "hits", labels=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1
        assert counter.value(kind="unseen") == 0

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_set_total_overwrites(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(5)
        counter.set_total(2)
        assert counter.value() == 2

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("c_total", labels=("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc(wrong="x")
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc()

    def test_export_shape(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "help text", labels=("kind",))
        counter.inc(kind="b")
        counter.inc(kind="a")
        family = counter.export()
        assert family["type"] == "counter"
        assert family["help"] == "help text"
        assert family["labels"] == ["kind"]
        # Samples sorted by label key tuple.
        assert family["samples"] == [
            {"labels": {"kind": "a"}, "value": 1},
            {"labels": {"kind": "b"}, "value": 1},
        ]


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec(5)
        assert gauge.value() == 8

    def test_merge_mode_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="merge"):
            reg.gauge("g", merge="median")

    def test_export_carries_merge_mode(self):
        gauge = MetricsRegistry().gauge("seq", merge="max")
        gauge.set(4)
        family = gauge.export()
        assert family["type"] == "gauge"
        assert family["merge"] == "max"
        assert family["samples"] == [{"labels": {}, "value": 4}]


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        sample = hist.export()["samples"][0]
        assert sample["buckets"] == {"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(5.605)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus ``le`` semantics: an observation equal to a bound
        # counts in that bound's bucket.
        hist = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.1)
        sample = hist.export()["samples"][0]
        assert sample["buckets"]["0.1"] == 1

    def test_empty_or_duplicate_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            reg.histogram("h1", buckets=())
        with pytest.raises(ValueError, match="duplicate"):
            reg.histogram("h2", buckets=(0.1, 0.1))


class TestRegistry:
    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("c_total") is reg.counter("c_total")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing")

    def test_collectors_run_at_export(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("live")
        state = {"value": 0}
        reg.add_collector(lambda: gauge.set(state["value"]))
        state["value"] = 42
        export = reg.export()
        assert export["live"]["samples"][0]["value"] == 42

    def test_export_is_a_dict_keyed_by_family_name(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.gauge("a").set(1)
        export = reg.export()
        assert list(export) == ["a", "b_total"]
        assert all(isinstance(family, dict) for family in export.values())

    def test_reset_zeroes_samples_but_keeps_families(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total")
        counter.inc(7)
        reg.reset()
        assert counter.value() == 0
        assert reg.counter("c_total") is counter


class TestMergeRegistries:
    def _export(self, build):
        reg = MetricsRegistry()
        build(reg)
        return reg.export()

    def test_counters_sum(self):
        a = self._export(lambda r: r.counter("c_total", labels=("k",)).inc(2, k="x"))
        b = self._export(lambda r: r.counter("c_total", labels=("k",)).inc(3, k="x"))
        merged = merge_registries([a, b])
        assert merged["c_total"]["samples"] == [
            {"labels": {"k": "x"}, "value": 5}
        ]

    def test_gauges_follow_their_merge_mode(self):
        a = self._export(
            lambda r: (r.gauge("size").set(2), r.gauge("seq", merge="max").set(7))
        )
        b = self._export(
            lambda r: (r.gauge("size").set(3), r.gauge("seq", merge="max").set(5))
        )
        merged = merge_registries([a, b])
        assert merged["size"]["samples"][0]["value"] == 5
        assert merged["seq"]["samples"][0]["value"] == 7

    def test_histograms_merge_by_bucket_sum(self):
        def build(values):
            def inner(reg):
                hist = reg.histogram("lat", buckets=(0.1, 1.0))
                for value in values:
                    hist.observe(value)

            return inner

        merged = merge_registries(
            [self._export(build([0.05])), self._export(build([0.5, 5.0]))]
        )
        sample = merged["lat"]["samples"][0]
        assert sample["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(5.55)

    def test_heterogeneous_parts_do_not_keyerror(self):
        a = self._export(lambda r: r.counter("only_in_a_total").inc())
        b = self._export(lambda r: r.counter("only_in_b_total", labels=("k",)).inc(k="x"))
        merged = merge_registries([a, b, None, "junk", {}])
        assert merged["only_in_a_total"]["samples"][0]["value"] == 1
        assert merged["only_in_b_total"]["samples"][0]["value"] == 1

    def test_label_sets_present_in_one_part_survive(self):
        a = self._export(lambda r: r.counter("c_total", labels=("k",)).inc(k="a"))
        b = self._export(lambda r: r.counter("c_total", labels=("k",)).inc(k="b"))
        merged = merge_registries([a, b])
        labels = [sample["labels"]["k"] for sample in merged["c_total"]["samples"]]
        assert labels == ["a", "b"]

    def test_empty_input(self):
        assert merge_registries([]) == {}


class TestRenderPrometheus:
    def test_help_type_and_sample_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total", "Cache hits.", labels=("kind",)).inc(
            3, kind="exact"
        )
        text = render_prometheus(reg.export())
        assert "# HELP repro_hits_total Cache hits." in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{kind="exact"} 3' in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat", "Latency.", buckets=(0.1, 1.0)).observe(0.05)
        text = render_prometheus(reg.export())
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum 0.05" in text
        assert "repro_lat_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("q",)).inc(q='say "hi"\nback\\slash')
        text = render_prometheus(reg.export())
        assert r'q="say \"hi\"\nback\\slash"' in text

    def test_metric_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.total").inc()
        text = render_prometheus(reg.export())
        assert "weird_name_total 1" in text

    def test_none_and_empty_render_to_trailing_newline(self):
        assert render_prometheus(None) == "\n"
        assert render_prometheus({}) == "\n"

    def test_exposition_parses_line_by_line(self):
        """Every non-comment line must be ``name{labels} value``."""
        reg = MetricsRegistry()
        reg.counter("a_total", "a", labels=("k",)).inc(k="v")
        reg.gauge("b", "b").set(1.5)
        reg.histogram("c", "c", buckets=(0.1,)).observe(0.05)
        for line in render_prometheus(reg.export()).strip().splitlines():
            if line.startswith("#"):
                assert line.split(" ", 2)[0] in ("#",) and (
                    " HELP " in f" {line} " or " TYPE " in f" {line} "
                )
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # value must be numeric
            assert name_part[0].isalpha()
