"""Relational -> graph builder: tuples become nodes, FKs become edges."""

import pytest

from repro.graph.builder import build_data_graph, build_search_graph

from tests.conftest import make_toy_db


class TestBuildDataGraph:
    def test_one_node_per_tuple(self, toy_db):
        graph = build_data_graph(toy_db)
        assert graph.num_nodes == toy_db.total_rows()

    def test_one_edge_per_fk_value(self, toy_db):
        graph = build_data_graph(toy_db)
        # paper.conf_id (4) + writes (4*2) + cites (3*2) = 18
        assert graph.num_edges == 18

    def test_link_tuples_are_nodes(self, toy_db):
        # Paper Figure 4: 'writes' rows are first-class nodes.
        graph = build_data_graph(toy_db)
        tables = {graph.table(n) for n in range(graph.num_nodes)}
        assert "writes" in tables
        assert "cites" in tables

    def test_edge_direction_follows_fk(self, toy_db):
        sg = build_data_graph(toy_db).freeze()
        writes_node = sg.node_by_ref("writes", 1)
        author_node = sg.node_by_ref("author", 1)
        forward = [
            (v, fwd) for v, _, fwd in sg.out_edges(writes_node) if v == author_node
        ]
        assert (author_node, True) in forward

    def test_labels_use_text_columns(self, toy_db):
        graph = build_data_graph(toy_db)
        sg = graph.freeze()
        node = sg.node_by_ref("author", 1)
        assert sg.label(node) == "Jim Gray"
        # Tables without text columns fall back to table:pk labels.
        writes = sg.node_by_ref("writes", 1)
        assert sg.label(writes) == "writes:1"

    def test_null_fk_skipped(self):
        from repro.relational import Database, ForeignKey, Schema, Table

        schema = Schema(
            tables=(
                Table("a", ("id",)),
                Table("b", ("id", "a_id")),
            ),
            foreign_keys=(ForeignKey("b", "a_id", "a"),),
        )
        db = Database(schema)
        db.insert("a", {"id": 1})
        db.insert("b", {"id": 1, "a_id": 1})
        db.insert("b", {"id": 2, "a_id": None})
        graph = build_data_graph(db)
        assert graph.num_edges == 1

    def test_determinism(self, toy_db):
        g1 = build_data_graph(toy_db)
        g2 = build_data_graph(make_toy_db())
        assert list(g1.forward_edges()) == list(g2.forward_edges())
        assert [g1.label(i) for i in range(g1.num_nodes)] == [
            g2.label(i) for i in range(g2.num_nodes)
        ]


class TestBuildSearchGraph:
    def test_with_prestige_computed(self, toy_db):
        sg = build_search_graph(toy_db)
        assert sg.prestige.sum() == pytest.approx(1.0)
        assert sg.prestige.min() > 0.0

    def test_without_prestige_uniform(self, toy_db):
        sg = build_search_graph(toy_db, compute_prestige=False)
        n = sg.num_nodes
        assert sg.node_prestige(0) == pytest.approx(1.0 / n)

    def test_fk_weight_respected(self):
        from repro.relational import Database, ForeignKey, Schema, Table

        schema = Schema(
            tables=(Table("a", ("id",)), Table("b", ("id", "a_id"))),
            foreign_keys=(ForeignKey("b", "a_id", "a", weight=2.5),),
        )
        db = Database(schema)
        db.insert("a", {"id": 1})
        db.insert("b", {"id": 1, "a_id": 1})
        sg = build_search_graph(db, compute_prestige=False)
        b_node = sg.node_by_ref("b", 1)
        a_node = sg.node_by_ref("a", 1)
        weights = [w for v, w, fwd in sg.out_edges(b_node) if v == a_node and fwd]
        assert weights == [pytest.approx(2.5)]
