"""FIG5 bench: the sample-query table (paper Figure 5).

Ten profile-matched queries over the three datasets; prints the full
table (MI/SI, SI/Bidir ratios, absolute times, Sparse-LB) and asserts
the coarse shape: MI/SI > 1 on the multi-keyword rows in aggregate, and
Sparse-LB present on every row.
"""

import math

from repro.experiments.fig5 import run_fig5

from conftest import as_float, run_report


def test_fig5_sample_query_table(benchmark):
    report = run_report(benchmark, run_fig5)
    assert len(report.rows) == 10

    populated = [row for row in report.rows if row[1] != "-"]
    assert len(populated) >= 8, "most profiles must instantiate"

    # Aggregate shape: across queries with 3+ keywords, MI is slower
    # than SI (the paper's order-of-magnitude claim, relaxed to the
    # geometric mean > 1 at our scale).
    multi = [
        as_float(row[4])
        for row in populated
        if row[4] != "-" and row[1].count(",") >= 2
    ]
    assert multi, "need multi-keyword rows"
    geomean = math.exp(sum(math.log(r) for r in multi) / len(multi))
    assert geomean > 1.0

    # Sparse-LB executed on every populated row.
    assert all("(" in row[11] for row in populated)
