"""Core search algorithms and answer model (S7-S11, S13)."""

from repro.core.activation import ActivationTable
from repro.core.answer import AnswerTree, OutputAnswer, SearchResult, is_minimal_rooting
from repro.core.backward_mi import BackwardExpandingSearch, ShortestPathIterator
from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.cancellation import CancellationToken
from repro.core.driver import nra_edge_bound
from repro.core.engine import ALGORITHMS, KeywordSearchEngine, parse_query
from repro.core.exhaustive import exhaustive_answers, keyword_distances
from repro.core.heaps import LazyMaxHeap, LazyMinHeap
from repro.core.output_heap import BufferedAnswer, OutputHeap
from repro.core.params import DEFAULT_PARAMS, SearchParams
from repro.core.pathtable import PathTable
from repro.core.scoring import Scorer, edge_score, overall_score
from repro.core.stats import SearchStats

__all__ = [
    "ActivationTable",
    "AnswerTree",
    "OutputAnswer",
    "SearchResult",
    "is_minimal_rooting",
    "BackwardExpandingSearch",
    "ShortestPathIterator",
    "SingleIteratorBackwardSearch",
    "BidirectionalSearch",
    "CancellationToken",
    "nra_edge_bound",
    "ALGORITHMS",
    "KeywordSearchEngine",
    "parse_query",
    "exhaustive_answers",
    "keyword_distances",
    "LazyMaxHeap",
    "LazyMinHeap",
    "BufferedAnswer",
    "OutputHeap",
    "DEFAULT_PARAMS",
    "SearchParams",
    "PathTable",
    "Scorer",
    "edge_score",
    "overall_score",
    "SearchStats",
]
