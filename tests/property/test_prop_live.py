"""Property: overlay mutations == from-scratch rebuild of the final state.

For any mutation sequence applied to a :class:`~repro.live.MutableDataset`,
the overlayed dataset must be indistinguishable from rebuilding the
final state from scratch (replaying the sequence on a plain model and
freezing a fresh graph + index):

* the graphs are **bit-identical** — adjacency order, edge weights,
  activation normalizers, prestige — which is the strongest possible
  form of "same answers, same scores";
* index lookups agree on every term either side knows;
* searching both yields the same answers with the same exact scores
  (compared order-insensitively: two structurally identical graphs may
  still emit tied answers in different orders because frozenset
  iteration is layout-dependent, but the answer *set* and every float
  in it must match).

Compaction is folded into the property: compacting the mutated dataset
must change nothing either.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SearchParams
from repro.errors import KeywordNotFoundError
from repro.live import MutableDataset
from repro.live.mutations import AddEdge, AddNode, RemoveEdge, UpdateText

from tests.conftest import make_toy_db
from tests.live.conftest import (
    ReplayModel,
    assert_same_graph,
    assert_same_index,
    canonical_answers,
    replay,
)

# Small weight palette: floats that survive arithmetic exactly.
WEIGHTS = (1.0, 2.0, 0.5, 4.0)

WORDS = (
    "transaction", "gray", "stream", "quorum", "locking", "vector",
    "recovery", "paper", "novel", "index",
)


@st.composite
def mutation_sequences(draw):
    """A batch of 1-12 mutations, kept applicable by construction
    against the 16-node toy graph: edges only reference base nodes or
    earlier batch aliases, removals only target edges previously added
    in the batch (base-edge removals are exercised separately so the
    strategy stays simple and shrinkable)."""
    base_nodes = 16
    mutations = []
    added = 0  # batch AddNode count so far
    added_edges: list[tuple[int, int, float]] = []
    size = draw(st.integers(min_value=1, max_value=12))
    for _ in range(size):
        choices = ["add_node", "add_edge", "update_text"]
        if added_edges:
            choices.append("remove_edge")
        op = draw(st.sampled_from(choices))
        if op == "add_node":
            text = " ".join(
                draw(
                    st.lists(
                        st.sampled_from(WORDS), min_size=0, max_size=3
                    )
                )
            )
            mutations.append(
                AddNode(
                    label=f"new-{added}",
                    table=draw(st.sampled_from([None, "paper", "author"])),
                    text=text or None,
                )
            )
            added += 1
        elif op == "add_edge":
            max_id = base_nodes + added
            u = draw(st.integers(min_value=0, max_value=max_id - 1))
            v = draw(st.integers(min_value=0, max_value=max_id - 1))
            if u == v:
                continue
            w = draw(st.sampled_from(WEIGHTS))
            mutations.append(
                AddEdge(
                    u=u if u < base_nodes else base_nodes - 1 - u,
                    v=v if v < base_nodes else base_nodes - 1 - v,
                    weight=w,
                )
            )
            added_edges.append((u, v, w))
        elif op == "remove_edge":
            u, v, w = draw(st.sampled_from(added_edges))
            added_edges.remove((u, v, w))
            mutations.append(
                RemoveEdge(
                    u=u if u < base_nodes else base_nodes - 1 - u,
                    v=v if v < base_nodes else base_nodes - 1 - v,
                    weight=w,
                )
            )
        else:
            node = draw(st.integers(min_value=0, max_value=base_nodes + added - 1))
            text = " ".join(
                draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=3))
            )
            mutations.append(
                UpdateText(
                    node=node if node < base_nodes else base_nodes - 1 - node,
                    text=text,
                )
            )
    return mutations


def run_equivalence(batches) -> None:
    engine_db = make_toy_db()
    model = ReplayModel.from_database(engine_db)
    dataset = MutableDataset.from_database(engine_db, compact_ratio=None)
    for batch in batches:
        outcome = dataset.mutate(batch)
        assert list(outcome.new_nodes) == replay(model, batch)
    rebuilt = model.build(prestige=dataset.graph.prestige)

    assert_same_graph(dataset.graph, rebuilt.graph)
    assert_same_index(dataset.index, rebuilt.index, extra_terms=WORDS)

    params = SearchParams(max_results=50)
    for query in ("transaction", "gray transaction", "paper stream"):
        try:
            expected = canonical_answers(
                rebuilt.search(query, params=params)
            )
        except KeywordNotFoundError:
            expected = None
        if expected is None:
            try:
                dataset.engine.search(query, params=params)
            except KeywordNotFoundError:
                continue
            raise AssertionError(
                f"overlay resolved {query!r} but the rebuild could not"
            )
        actual = canonical_answers(dataset.engine.search(query, params=params))
        assert actual == expected, f"answers diverged for {query!r}"

    # Compaction must be invisible too.
    compacted = dataset.compact()
    assert_same_graph(compacted.graph, rebuilt.graph)
    assert_same_index(compacted.index, rebuilt.index, extra_terms=WORDS)


@given(batch=mutation_sequences())
@settings(max_examples=60, deadline=None)
def test_single_batch_equals_rebuild(batch):
    run_equivalence([batch])


@given(
    batches=st.lists(mutation_sequences(), min_size=2, max_size=4)
)
@settings(max_examples=25, deadline=None)
def test_multi_commit_equals_rebuild(batches):
    run_equivalence(batches)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_base_edge_removal_equals_rebuild(data):
    """Removals of *base* edges (the case the generator above avoids):
    pick existing forward edges off the toy graph and drop them."""
    engine_db = make_toy_db()
    model = ReplayModel.from_database(engine_db)
    dataset = MutableDataset.from_database(engine_db, compact_ratio=None)
    count = data.draw(st.integers(min_value=1, max_value=4))
    for _ in range(count):
        edges = list(model.edges)
        if not edges:
            break
        u, v, w = data.draw(st.sampled_from(edges))
        batch = [RemoveEdge(u=u, v=v, weight=w)]
        dataset.mutate(batch)
        replay(model, batch)
    rebuilt = model.build(prestige=dataset.graph.prestige)
    assert_same_graph(dataset.graph, rebuilt.graph)
    assert_same_index(dataset.index, rebuilt.index)
