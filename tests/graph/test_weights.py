"""Backward-edge weight policy (paper Section 2.3)."""

import math

import pytest

from repro.graph.weights import DEFAULT_FORWARD_WEIGHT, backward_edge_weight


class TestBackwardEdgeWeight:
    def test_indegree_one_keeps_forward_weight(self):
        # log2(1 + 1) == 1: chains are penalty-free.
        assert backward_edge_weight(1.0, 1) == pytest.approx(1.0)

    def test_hub_penalty_grows_logarithmically(self):
        assert backward_edge_weight(1.0, 3) == pytest.approx(2.0)
        assert backward_edge_weight(1.0, 7) == pytest.approx(3.0)
        assert backward_edge_weight(1.0, 1023) == pytest.approx(10.0)

    def test_scales_with_forward_weight(self):
        assert backward_edge_weight(2.5, 3) == pytest.approx(5.0)

    def test_monotone_in_indegree(self):
        weights = [backward_edge_weight(1.0, d) for d in range(1, 50)]
        assert weights == sorted(weights)
        assert len(set(weights)) == len(weights)

    def test_formula_matches_paper(self):
        for degree in (1, 2, 10, 100):
            expected = math.log2(1 + degree)
            assert backward_edge_weight(1.0, degree) == pytest.approx(expected)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            backward_edge_weight(0.0, 1)
        with pytest.raises(ValueError):
            backward_edge_weight(-1.0, 1)

    def test_rejects_zero_indegree(self):
        with pytest.raises(ValueError):
            backward_edge_weight(1.0, 0)

    def test_default_forward_weight_is_one(self):
        assert DEFAULT_FORWARD_WEIGHT == 1.0
