"""Spreading activation (paper Section 4.3)."""

import pytest

from repro.core.activation import ActivationTable

from tests.helpers import build_graph


class TestSeeding:
    def test_seed_divides_prestige_by_origin_size(self):
        g = build_graph(4, [(0, 1)], prestige=[0.4, 0.3, 0.2, 0.1])
        table = ActivationTable(g, [frozenset({0, 1}), frozenset({2})])
        table.seed_all()
        assert table.activation(0, 0) == pytest.approx(0.4 / 2)
        assert table.activation(1, 0) == pytest.approx(0.3 / 2)
        assert table.activation(2, 1) == pytest.approx(0.2)
        assert table.activation(3, 0) == 0.0

    def test_total_sums_over_keywords(self):
        g = build_graph(2, [(0, 1)], prestige=[0.6, 0.4])
        table = ActivationTable(g, [frozenset({0}), frozenset({0})])
        table.seed_all()
        assert table.total(0) == pytest.approx(0.6 + 0.6)

    def test_mu_validation(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            ActivationTable(g, [frozenset({0})], mu=1.5)


class TestBackwardSpreading:
    def test_spreads_mu_fraction_to_in_neighbours(self):
        # 0 -> 2, 1 -> 2; expanding 2 backward activates 0 and 1.
        g = build_graph(3, [(0, 2), (1, 2)], prestige=[0.2, 0.2, 0.6])
        table = ActivationTable(g, [frozenset({2})], mu=0.5)
        table.seed_all()
        table.spread_backward(2, parents={})
        # In-edges of 2: forward 0->2 and 1->2, weight 1 each; norm = 2.
        assert table.activation(0, 0) == pytest.approx(0.5 * 0.6 / 2)
        assert table.activation(1, 0) == pytest.approx(0.5 * 0.6 / 2)

    def test_division_inverse_to_weight(self):
        g = build_graph(3, [(0, 2, 1.0), (1, 2, 3.0)], prestige=[0.2, 0.2, 0.6])
        table = ActivationTable(g, [frozenset({2})], mu=0.5)
        table.seed_all()
        table.spread_backward(2, parents={})
        ratio = table.activation(0, 0) / table.activation(1, 0)
        assert ratio == pytest.approx(3.0)

    def test_max_combine_keeps_larger(self):
        g = build_graph(3, [(0, 2), (1, 2)], prestige=[0.2, 0.2, 0.6])
        table = ActivationTable(g, [frozenset({0, 2})], mu=0.5)
        table.seed_all()
        before = table.activation(0, 0)  # seeded: 0.2 / 2 = 0.1
        table.spread_backward(2, parents={})
        # Incoming spread is 0.5*0.3/2 = 0.075 < 0.1: keep the seed.
        assert table.activation(0, 0) == pytest.approx(before)

    def test_no_in_edges_is_noop(self):
        g = build_graph(2, [(0, 1)])
        table = ActivationTable(g, [frozenset({0})])
        table.seed_all()
        table.spread_backward(0, parents={})  # must not raise


class TestForwardSpreading:
    def test_spreads_to_out_neighbours(self):
        g = build_graph(3, [(0, 1), (0, 2)], prestige=[0.6, 0.2, 0.2])
        table = ActivationTable(g, [frozenset({0})], mu=0.5)
        table.seed_all()
        table.spread_forward(0, parents={})
        assert table.activation(1, 0) > 0.0
        assert table.activation(2, 0) > 0.0


class TestActivatePropagation:
    def test_cascades_through_explored_parents(self):
        # Chain 0 -> 1 -> 2; parents say: 1 explored into 2, 0 into 1.
        g = build_graph(3, [(0, 1), (1, 2)], prestige=[0.1, 0.1, 0.8])
        table = ActivationTable(g, [frozenset({2})], mu=0.5)
        table.seed_all()
        parents = {2: {1: 1.0}, 1: {0: 1.0}}
        table.spread_backward(2, parents)
        # 1 got mu * a(2) * share; 0 then got a cascaded share from 1.
        assert table.activation(1, 0) > 0.0
        assert table.activation(0, 0) > 0.0
        assert table.activation(0, 0) < table.activation(1, 0)

    def test_callback_fires_on_increase_only(self):
        g = build_graph(3, [(0, 2), (1, 2)], prestige=[0.2, 0.2, 0.6])
        events = []
        table = ActivationTable(
            g, [frozenset({2})], mu=0.5, on_activation_change=events.append
        )
        table.seed_all()
        events.clear()
        table.spread_backward(2, parents={})
        assert set(events) == {0, 1}
        events.clear()
        table.spread_backward(2, parents={})  # same values: max-combine no-op
        assert events == []

    def test_attenuation_dies_out(self):
        # A long chain: activation decays geometrically, so far-away
        # ancestors receive (much) less.
        edges = [(i, i + 1) for i in range(5)]
        g = build_graph(6, edges, prestige=[0.1] * 5 + [0.5])
        table = ActivationTable(g, [frozenset({5})], mu=0.5)
        table.seed_all()
        parents = {i + 1: {i: 1.0} for i in range(5)}
        table.spread_backward(5, parents)
        values = [table.activation(i, 0) for i in range(5)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        assert values[0] < values[4] / 4
