"""Storage tiers for built engine state.

The service's snapshot files come in two physical layouts (see
:mod:`repro.service.snapshot`): the compressed zip container (format
v1, deserialized fully into RAM) and the page-aligned mapped container
(format v2, loaded lazily through ``np.memmap``).  This package holds
the *runtime* side of the mapped tier:

* :class:`~repro.storage.mapped.MappedSearchGraph` /
  :class:`~repro.storage.mapped.MappedInvertedIndex` — drop-in
  read-only implementations of the graph/index contracts whose
  adjacency rows and posting lists materialize on first touch;
* :class:`PinPolicy` — which rows are faulted in eagerly at load time
  (high-prestige and high-degree nodes, hot posting lists);
* :class:`StorageStats` — per-dataset fault/pin/residency counters the
  telemetry registry exports;
* :func:`resolve_storage_mode` — the ``ram`` / ``mapped`` / ``auto``
  knob resolution shared by every load path (explicit argument beats
  the ``REPRO_SNAPSHOT_MODE`` environment hook beats ``auto``).
"""

from repro.storage.stats import (
    STORAGE_MODES,
    PinPolicy,
    StorageStats,
    resolve_storage_mode,
)
from repro.storage.mapped import (
    MappedInvertedIndex,
    MappedSearchGraph,
    apply_pin_policy,
)

__all__ = [
    "STORAGE_MODES",
    "MappedInvertedIndex",
    "MappedSearchGraph",
    "PinPolicy",
    "StorageStats",
    "apply_pin_policy",
    "resolve_storage_mode",
]
