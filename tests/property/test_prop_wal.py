"""Property: replaying a recorded WAL onto the base snapshot yields a
dataset bit-identical to the live one that wrote it.

The same discipline as ``test_prop_live`` (graphs compare bit-for-bit:
adjacency order, weights, activation normalizers; index lookups agree
on every term), applied to the durability path: for any mutation
sequence journaled through :class:`repro.wal.MutationLog`,
``MutableDataset.replay(log, snapshot=...)`` must reconstruct the live
dataset exactly — including when the log spans **multiple segments**
and when the live side **compacted** mid-run (compaction folds the
overlay but is invisible in the journal, so the replayed overlay must
still match bit-for-bit).
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import KeywordSearchEngine
from repro.live import MutableDataset
from repro.service.snapshot import save_engine
from repro.wal import MutationLog

from tests.conftest import make_toy_db
from tests.live.conftest import assert_same_graph, assert_same_index
from tests.property.test_prop_live import WORDS, mutation_sequences


def run_wal_equivalence(batches, *, live_knobs=None) -> None:
    """Journal ``batches`` through a tiny-segment log, then replay."""
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = save_engine(
            Path(tmp) / "toy.snap",
            KeywordSearchEngine.from_database(make_toy_db()),
        )
        # segment_max_records=2 forces rotation constantly, so every
        # non-trivial run exercises the multi-segment read path.
        log = MutationLog(
            Path(tmp) / "toy.snap.wal", sync="off", segment_max_records=2
        )
        live = MutableDataset.from_snapshot(
            snapshot, journal=log, **(live_knobs or {"compact_ratio": None})
        )
        for batch in batches:
            live.mutate(batch)
        assert log.last_seq == live.version

        replayed = MutableDataset.replay(
            log, snapshot=snapshot, compact_ratio=None
        )
        assert replayed.version == live.version
        assert_same_graph(replayed.graph, live.graph)
        assert_same_index(replayed.index, live.index, extra_terms=WORDS)

        # A fresh read-only open from disk (what a restarted replica
        # does) replays identically too.
        log.close()
        reopened = MutationLog(Path(tmp) / "toy.snap.wal", readonly=True)
        replayed_cold = MutableDataset.replay(
            reopened, snapshot=snapshot, compact_ratio=None
        )
        assert_same_graph(replayed_cold.graph, live.graph)
        assert_same_index(replayed_cold.index, live.index, extra_terms=WORDS)


@given(batch=mutation_sequences())
@settings(max_examples=40, deadline=None)
def test_single_batch_replay_equals_live(batch):
    run_wal_equivalence([batch])


@given(batches=st.lists(mutation_sequences(), min_size=2, max_size=4))
@settings(max_examples=15, deadline=None)
def test_multi_commit_multi_segment_replay_equals_live(batches):
    run_wal_equivalence(batches)


@given(batches=st.lists(mutation_sequences(), min_size=2, max_size=4))
@settings(max_examples=15, deadline=None)
def test_replay_matches_live_across_compaction(batches):
    """The live side compacts after every commit; the journal never
    records compaction (it changes no answer), so the replayed overlay
    must still be bit-identical to the folded flat arrays."""
    run_wal_equivalence(batches, live_knobs={"compact_every": 1})


@given(batch=mutation_sequences())
@settings(max_examples=20, deadline=None)
def test_replay_from_mid_lineage_snapshot(batch):
    """Snapshotting mid-run and replaying only the tail of the log onto
    the newer snapshot reconstructs the same final state — the
    truncation story: the log only needs to reach back to the newest
    snapshot."""
    from repro.live.mutations import AddNode
    from repro.service.snapshot import save_snapshot

    with tempfile.TemporaryDirectory() as tmp:
        base = save_engine(
            Path(tmp) / "toy.snap",
            KeywordSearchEngine.from_database(make_toy_db()),
        )
        log = MutationLog(
            Path(tmp) / "toy.snap.wal", sync="off", segment_max_records=2
        )
        live = MutableDataset.from_snapshot(
            base, journal=log, compact_ratio=None
        )
        live.mutate(batch)
        version_at_snapshot = live.version
        # Snapshot the mid-run state (compaction keeps answers and the
        # version; the journal is untouched).
        epoch = live.compact()
        mid = save_snapshot(
            Path(tmp) / "mid.snap",
            epoch.graph,
            epoch.index,
            version=version_at_snapshot,
        )
        live.mutate([AddNode(label="tail", table="paper", text="quorum vector")])
        assert log.last_seq == live.version == version_at_snapshot + 1

        replayed = MutableDataset.replay(log, snapshot=mid, compact_ratio=None)
        # Only the tail record applies; the rest is baked into the
        # snapshot the replay started from.
        assert replayed.version == 1
        assert_same_graph(replayed.graph, live.graph)
        assert_same_index(replayed.index, live.index, extra_terms=WORDS)
        log.close()
