"""Worker-pool supervisor: spawn, watch, restart, drain.

The pool owns N worker processes (:mod:`repro.cluster.worker`), each
with a private request queue and a private response pipe.  Two
supervisor threads run alongside the caller:

* the **reader** multiplexes every worker's response pipe
  (``multiprocessing.connection.wait``) and completes the matching
  in-flight :class:`~concurrent.futures.Future`;
* the **monitor** polls worker liveness every ``health_interval``
  seconds.

Responses use per-worker pipes, not one shared queue, for crash
containment: a ``multiprocessing.Queue`` writer killed mid-put can die
holding the queue's shared write lock and wedge every other worker's
responses; a killed worker can only break its own pipe, whose buffered
responses stay readable up to EOF and which is discarded on restart.

Crash policy (the part that must never hang): when a worker dies, every
in-flight request routed to it completes with a *structured error
response* (``error_type="WorkerCrashedError"``) after a short grace
period that lets already-produced responses drain from its pipe, and —
unless the pool is closing — a replacement process is spawned on fresh
channels so subsequent requests are served.  Control futures (ping /
metrics / warmup) fail with the exception itself instead, since their
callers have exception semantics.

``close()`` sends each worker the stop sentinel, joins with a deadline,
kills stragglers, and fails anything still in flight with
``PoolClosedError`` — a closed pool leaves no waiter blocked.

Cancellation control channel: each worker also gets a small
shared-memory **cancel ring** (a ``multiprocessing.Array`` of job ids).
:meth:`WorkerPool.cancel` writes the doomed job id into its worker's
ring; the worker probes the ring from inside the search's cooperative
cancellation token (and once before starting each job, which covers
requests cancelled while still queued).  Shared memory rather than a
queue message because the request queue is FIFO: a cancel message would
arrive *behind* the very request it is meant to stop, and the worker
reads the queue only between jobs anyway.  Ring slots are overwritten
oldest-first; job ids are never reused, so a stale id in a slot is
harmless.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import ClusterError, PoolClosedError, WorkerCrashedError
from repro.cluster.worker import worker_main
from repro.service.wire import error_response_dict

__all__ = ["WorkerPool", "control_error"]


def control_error(payload) -> Optional[Exception]:
    """The exception a control payload carries, if it is one.

    A worker whose handler raised (e.g. ``SnapshotError`` warming from
    a corrupt file) replies ``{"error": ..., "error_type": ...}``
    instead of its normal payload.  Rebuild the library exception when
    the type names one, else wrap in :class:`ClusterError` — callers of
    ping/metrics/warmup have exception semantics, and a timings dict
    must never silently be an error dict.
    """
    if (
        not isinstance(payload, dict)
        or payload.get("error") is None
        or "result" in payload  # request responses carry errors inline
    ):
        return None
    import repro.errors as _errors

    exc_cls = getattr(_errors, payload.get("error_type") or "", None)
    if isinstance(exc_cls, type) and issubclass(exc_cls, Exception):
        try:
            return exc_cls(payload["error"])
        except Exception:  # pragma: no cover - exotic constructor
            pass
    return ClusterError(f"[{payload.get('error_type')}] {payload['error']}")


@dataclass
class _Job:
    """One in-flight message awaiting its response."""

    worker_id: int
    kind: str
    future: Future
    request: Optional[dict] = None


def _crash_response(request: Optional[dict], message: str) -> dict:
    """The response-shaped dict a crashed worker's request resolves to."""
    return error_response_dict(request, message, WorkerCrashedError.__name__)


class WorkerPool:
    """Supervised process pool keyed by integer worker ids.

    Parameters
    ----------
    specs:
        ``{worker_id: {dataset_name: snapshot_path}}`` — each worker's
        shard, as produced by
        :meth:`~repro.cluster.router.ShardRouter.assignments` joined
        with the snapshot paths.  Paths are stringified before they
        cross the boundary.
    settings:
        Plain-dict ``QueryService`` knobs forwarded to every worker
        (``cache_capacity``, ``cache_ttl``).
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"spawn"``:
        workers rebuild their world from snapshot files anyway, and
        forking a supervisor that runs reader/monitor threads is the
        classic fork-with-threads trap.
    health_interval:
        Seconds between monitor liveness sweeps.
    restart:
        Whether a dead worker is replaced (tests disable this to
        observe pure failure behaviour).
    event_sink:
        Optional ``callable(kind, **info)`` invoked on worker
        lifecycle transitions (``worker_crash`` with
        ``worker_id/pid/exitcode/in_flight``, ``worker_restart`` with
        ``worker_id/restarts``).  Exceptions it raises are swallowed —
        observability must never break crash handling.
    """

    #: Grace period after noticing a dead worker, letting responses it
    #: produced before dying drain from its pipe.
    CRASH_DRAIN_SECONDS = 0.25

    #: How long a submission waits for a crashed worker's replacement
    #: before giving up with :class:`WorkerCrashedError`.
    RESPAWN_WAIT_SECONDS = 5.0

    #: Slots in each worker's shared-memory cancel ring.  Bounds how
    #: many *concurrently pending* cancellations a worker can track;
    #: overwriting the oldest is safe (ids are unique, a lost cancel
    #: degrades to the request running to completion, never to a wrong
    #: answer).
    CANCEL_SLOTS = 32

    def __init__(
        self,
        specs: Mapping[int, Mapping[str, str]],
        *,
        settings: Optional[dict] = None,
        start_method: Optional[str] = "spawn",
        health_interval: float = 0.5,
        restart: bool = True,
        event_sink=None,
    ) -> None:
        if not specs:
            raise ValueError("at least one worker spec is required")
        self._specs = {
            int(worker_id): {name: str(path) for name, path in spec.items()}
            for worker_id, spec in specs.items()
        }
        self._settings = dict(settings or {})
        self._ctx = multiprocessing.get_context(start_method)
        self._health_interval = health_interval
        self._restart = restart
        self._event_sink = event_sink

        self._lock = threading.RLock()
        self._job_ids = itertools.count(1)
        self._inflight: dict[int, _Job] = {}
        self._processes: dict[int, Optional[multiprocessing.process.BaseProcess]] = {}
        self._queues: dict[int, object] = {}
        self._conns: dict[int, object] = {}
        self._cancel_cells: dict[int, object] = {}
        self._cancel_slot: dict[int, int] = {w: 0 for w in self._specs}
        self._restarts: dict[int, int] = {w: 0 for w in self._specs}
        self._started = False
        self._closed = False
        self._stop_event = threading.Event()
        self._reader: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn every worker and the supervisor threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise PoolClosedError("cannot start a closed WorkerPool")
            if self._started:
                return self
            self._started = True
            for worker_id in sorted(self._specs):
                self._spawn(worker_id)
        self._reader = threading.Thread(
            target=self._read_responses, name="repro-pool-reader", daemon=True
        )
        self._reader.start()
        self._monitor = threading.Thread(
            target=self._watch_health, name="repro-pool-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, worker_id: int) -> None:
        """Create the process + channel pair for ``worker_id`` (lock held)."""
        request_queue = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        # Fresh ring per generation: cancels aimed at a dead worker's
        # jobs die with it (those jobs were failed over already).
        cancel_cells = self._ctx.Array("q", self.CANCEL_SLOTS)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                self._specs[worker_id],
                self._settings,
                request_queue,
                send_conn,
                cancel_cells,
            ),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        process.start()
        # The child owns its copy now; keeping ours open would mask the
        # pipe's EOF when the child dies.
        send_conn.close()
        self._queues[worker_id] = request_queue
        self._conns[worker_id] = recv_conn
        self._cancel_cells[worker_id] = cancel_cells
        self._cancel_slot[worker_id] = 0
        self._processes[worker_id] = process

    def close(self, timeout: float = 10.0) -> None:
        """Drain and stop every worker; never leaves a waiter hanging."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            processes = dict(self._processes)
            queues = dict(self._queues)
            conns = dict(self._conns)
        for request_queue in queues.values():
            try:
                request_queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        deadline = time.monotonic() + timeout
        for process in processes.values():
            if process is None:
                continue
            process.join(timeout=max(deadline - time.monotonic(), 0.0))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        self._stop_event.set()
        for thread in (self._reader, self._monitor):
            if thread is not None:
                thread.join(timeout=2.0)
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
        for job in leftovers:
            self._fail_job(job, "worker pool closed with the request in flight")
        for conn in conns.values():
            conn.close()
        for request_queue in queues.values():
            request_queue.close()
            request_queue.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, worker_id: int, kind: str, *payload) -> Future:
        """Ship ``(kind, job_id, *payload)`` to ``worker_id``.

        Returns a future resolving to the worker's payload dict.  If the
        target worker is found dead here, crash handling (fail its
        in-flight work, restart) runs first so this submission lands on
        the replacement.  A worker with no live replacement — respawn
        still pending past ``RESPAWN_WAIT_SECONDS``, or ``restart``
        disabled — raises :class:`WorkerCrashedError` rather than
        queueing work nobody will ever read.
        """
        with self._lock:
            if self._closed:
                raise PoolClosedError("WorkerPool is closed")
            if not self._started:
                self.start()
            if worker_id not in self._specs:
                raise KeyError(f"unknown worker id {worker_id!r}")
        future: Future = Future()
        job_id = next(self._job_ids)
        # Exposed for cancellation: callers hand the id back to
        # :meth:`cancel` (the sharded service keys its request_id
        # registry on it).
        future.job_id = job_id  # type: ignore[attr-defined]
        future.worker_id = worker_id  # type: ignore[attr-defined]
        job = _Job(
            worker_id=worker_id,
            kind=kind,
            future=future,
            request=payload[0] if kind == "request" and payload else None,
        )
        deadline = time.monotonic() + self.RESPAWN_WAIT_SECONDS
        while True:
            with self._lock:
                if self._closed:
                    raise PoolClosedError("WorkerPool is closed")
                process = self._processes.get(worker_id)
            if process is None or not process.is_alive():
                if process is not None:
                    self._handle_crash(worker_id, process)
                    continue
                # Slot is None: a crash handler is mid-respawn (wait
                # for it) or restarts are disabled (fail now).
                if not self._restart:
                    raise WorkerCrashedError(
                        f"worker {worker_id} is down and restart is disabled"
                    )
                if time.monotonic() >= deadline:
                    raise WorkerCrashedError(
                        f"worker {worker_id} has no live replacement after "
                        f"{self.RESPAWN_WAIT_SECONDS}s"
                    )
                time.sleep(0.02)
                continue
            with self._lock:
                if self._closed:
                    raise PoolClosedError("WorkerPool is closed")
                # The generation guard closing the register/crash race:
                # if the worker died after the liveness check above, a
                # crash handler may already have collected its doomed
                # jobs and swapped in a fresh queue — registering now
                # and writing to the *old* queue would strand this job
                # forever.  Registering under the same lock that
                # verifies the process is still the observed one means
                # any later crash handling sees (and fails) this job.
                if self._processes.get(worker_id) is not process:
                    continue
                self._inflight[job_id] = job
                request_queue = self._queues[worker_id]
            break
        try:
            request_queue.put((kind, job_id, *payload))
        except (OSError, ValueError) as exc:  # pragma: no cover - queue gone
            with self._lock:
                self._inflight.pop(job_id, None)
            raise PoolClosedError(f"worker {worker_id} queue is closed") from exc
        return future

    def request(self, worker_id: int, request_dict: dict) -> Future:
        """Submit one request-shaped dict; resolves to a response dict.

        The returned future carries ``job_id`` / ``worker_id``
        attributes — the handle :meth:`cancel` takes.
        """
        return self.submit(worker_id, "request", request_dict)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: int) -> bool:
        """Ask the worker holding ``job_id`` to stop it cooperatively.

        Writes the id into the worker's shared-memory cancel ring; the
        worker notices inside the search's token checks (or before
        starting the job, if it was still queued) and responds with a
        structured cancelled/partial response through the normal pipe —
        the waiter is *not* failed here.  Returns True if the job was
        found in flight; False means it already completed (or never
        existed), which is not an error: cancellation is inherently
        racy and idempotent.
        """
        with self._lock:
            if self._closed:
                return False
            job = self._inflight.get(job_id)
            if job is None or job.kind != "request":
                return False
            cells = self._cancel_cells.get(job.worker_id)
            if cells is None:  # pragma: no cover - worker mid-respawn
                return False
            slot = self._cancel_slot[job.worker_id]
            self._cancel_slot[job.worker_id] = (slot + 1) % self.CANCEL_SLOTS
        cells[slot] = job_id
        return True

    # ------------------------------------------------------------------
    # health / observability
    # ------------------------------------------------------------------
    def ping(self, worker_id: int, timeout: float = 5.0) -> bool:
        """True iff ``worker_id`` answers a ping within ``timeout``."""
        try:
            payload = self.submit(worker_id, "ping").result(timeout=timeout)
        except Exception:
            return False
        return bool(payload.get("pong"))

    def metrics(self, timeout: float = 10.0) -> dict[int, dict]:
        """Per-worker ``QueryService.metrics`` dicts (with raw latency
        samples), omitting workers that failed to answer."""
        futures = {}
        for worker_id in sorted(self._specs):
            try:
                futures[worker_id] = self.submit(worker_id, "metrics", True)
            except PoolClosedError:
                raise
            except Exception:  # pragma: no cover - submit-time race
                continue
        collected = {}
        deadline = time.monotonic() + timeout
        for worker_id, future in futures.items():
            try:
                payload = future.result(
                    timeout=max(deadline - time.monotonic(), 0.0)
                )
            except Exception:
                continue
            if control_error(payload) is None:
                collected[worker_id] = payload
        return collected

    def warmup(self, timeout: float = 300.0) -> dict[int, dict]:
        """Ask every worker to build its engines now; returns per-worker
        ``{dataset: build_seconds}`` timing dicts."""
        futures = {
            worker_id: self.submit(worker_id, "warmup", None)
            for worker_id in sorted(self._specs)
        }
        timings = {}
        deadline = time.monotonic() + timeout
        for worker_id, future in futures.items():
            payload = future.result(
                timeout=max(deadline - time.monotonic(), 0.0)
            )
            error = control_error(payload)
            if error is not None:
                raise error
            timings[worker_id] = payload
        return timings

    def alive(self) -> dict[int, bool]:
        with self._lock:
            return {
                worker_id: process is not None and process.is_alive()
                for worker_id, process in self._processes.items()
            }

    def restarts(self) -> dict[int, int]:
        with self._lock:
            return dict(self._restarts)

    def pids(self) -> dict[int, Optional[int]]:
        with self._lock:
            return {
                worker_id: (process.pid if process is not None else None)
                for worker_id, process in self._processes.items()
            }

    def worker_ids(self) -> list[int]:
        return sorted(self._specs)

    def process(self, worker_id: int):
        """The live process object for ``worker_id`` (tests kill it to
        exercise crash recovery)."""
        with self._lock:
            return self._processes.get(worker_id)

    # ------------------------------------------------------------------
    # supervisor threads
    # ------------------------------------------------------------------
    def _read_responses(self) -> None:
        while not self._stop_event.is_set():
            with self._lock:
                watched = {conn: worker_id for worker_id, conn in self._conns.items()}
            if not watched:  # pragma: no cover - all workers down
                time.sleep(0.05)
                continue
            try:
                ready = multiprocessing.connection.wait(
                    list(watched), timeout=0.2
                )
            except OSError:  # pragma: no cover - conn torn down mid-wait
                continue
            for conn in ready:
                try:
                    while conn.poll():
                        _, job_id, payload = conn.recv()
                        self._complete(job_id, payload)
                except (EOFError, OSError):
                    # Worker died: its pipe is drained to EOF.  Stop
                    # watching this channel; the monitor (or a submit)
                    # fails the in-flight jobs and restarts.
                    with self._lock:
                        if self._conns.get(watched[conn]) is conn:
                            del self._conns[watched[conn]]

    def _complete(self, job_id: int, payload: dict) -> None:
        with self._lock:
            job = self._inflight.pop(job_id, None)
        # A missing job is a late response for work already failed over
        # (its worker was declared dead); the future is done, drop it.
        if job is not None and not job.future.done():
            job.future.set_result(payload)

    def _watch_health(self) -> None:
        while not self._stop_event.wait(self._health_interval):
            with self._lock:
                if self._closed:
                    return
                snapshot = dict(self._processes)
            for worker_id, process in snapshot.items():
                if process is not None and not process.is_alive():
                    self._handle_crash(worker_id, process)

    def _handle_crash(self, worker_id: int, dead_process) -> None:
        """Fail over one dead worker: structured errors for its
        in-flight jobs, then a replacement process (unless closing)."""
        with self._lock:
            if self._closed:
                return
            # Another path (monitor vs. submit) may have handled this
            # generation already; the process identity is the guard.
            if self._processes.get(worker_id) is not dead_process:
                return
            self._processes[worker_id] = None
            exitcode = dead_process.exitcode
            doomed_ids = [
                job_id
                for job_id, job in self._inflight.items()
                if job.worker_id == worker_id
            ]
        self._emit_event(
            "worker_crash",
            worker_id=worker_id,
            pid=dead_process.pid,
            exitcode=exitcode,
            in_flight=len(doomed_ids),
        )
        # Give responses the worker produced before dying a moment to
        # drain from its pipe — the reader completes those futures and
        # removes them from the in-flight table, shrinking the failures.
        if doomed_ids:
            time.sleep(self.CRASH_DRAIN_SECONDS)
        message = (
            f"worker {worker_id} crashed (exit code {exitcode}) "
            f"with the request in flight"
        )
        with self._lock:
            doomed = [
                self._inflight.pop(job_id)
                for job_id in doomed_ids
                if job_id in self._inflight
            ]
            stale_conn = self._conns.pop(worker_id, None)
        for job in doomed:
            self._fail_job(job, message)
        if stale_conn is not None:
            stale_conn.close()
        with self._lock:
            if self._closed or not self._restart:
                return
            if self._processes.get(worker_id) is None:
                self._restarts[worker_id] += 1
                restarts = self._restarts[worker_id]
                self._spawn(worker_id)
            else:  # pragma: no cover - lost the respawn race benignly
                return
        self._emit_event(
            "worker_restart", worker_id=worker_id, restarts=restarts
        )

    def _emit_event(self, kind: str, **info) -> None:
        """Hand a lifecycle event to the owner's sink, if any.  Sink
        failures are swallowed: observability must never break crash
        handling."""
        if self._event_sink is None:
            return
        try:
            self._event_sink(kind, **info)
        except Exception:  # pragma: no cover - defensive
            pass

    def _fail_job(self, job: _Job, message: str) -> None:
        if job.future.done():  # pragma: no cover - lost the race benignly
            return
        closed = "closed" in message
        if job.kind == "request":
            # The error type must name the real cause: a crashed worker
            # means "retry it, the pool restarted the shard", a closed
            # pool means there is nothing left to retry against.
            error_type = (
                PoolClosedError.__name__ if closed else WorkerCrashedError.__name__
            )
            job.future.set_result(
                error_response_dict(
                    job.request if isinstance(job.request, dict) else None,
                    message,
                    error_type,
                )
            )
        elif closed:
            job.future.set_exception(PoolClosedError(message))
        else:
            job.future.set_exception(WorkerCrashedError(message))
