"""Exhaustive oracle: keyword distances and full enumeration."""

from math import inf

import pytest

from repro.core.exhaustive import exhaustive_answers, keyword_distances
from repro.core.scoring import Scorer

from tests.helpers import build_graph, validate_answer_tree


class TestKeywordDistances:
    def test_chain(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        dist, sp = keyword_distances(g, frozenset({2}))
        assert dist[2] == 0.0
        assert dist[1] == pytest.approx(1.0)
        assert dist[0] == pytest.approx(2.0)
        assert sp[1][0] == 2
        assert sp[0][0] == 1

    def test_multi_source_takes_nearest(self):
        g = build_graph(4, [(0, 1), (0, 2), (2, 3)])
        dist, _ = keyword_distances(g, frozenset({1, 3}))
        assert dist[0] == pytest.approx(1.0)

    def test_agrees_with_networkx(self):
        import networkx as nx
        import random

        from tests.helpers import random_data_graph

        rng = random.Random(7)
        g = random_data_graph(rng, n_nodes=25, n_edges=60)
        targets = frozenset({0, 5})
        dist, _ = keyword_distances(g, targets)

        nxg = nx.MultiDiGraph()
        nxg.add_nodes_from(range(g.num_nodes))
        for u in g.nodes():
            for v, w, _ in g.out_edges(u):
                nxg.add_edge(u, v, weight=w)
        lengths = {}
        for node in nxg.nodes:
            best = inf
            for target in targets:
                try:
                    best = min(
                        best,
                        nx.shortest_path_length(
                            nxg, node, target, weight="weight"
                        ),
                    )
                except nx.NetworkXNoPath:
                    pass
            lengths[node] = best
        for node in range(g.num_nodes):
            ours = dist.get(node, inf)
            assert ours == pytest.approx(lengths[node])


class TestExhaustiveAnswers:
    def test_finds_connecting_tree(self):
        # 1 <- 0 -> 2; keywords at 1 and 2; best root is 0.
        g = build_graph(3, [(0, 1), (0, 2)])
        answers = exhaustive_answers(g, [frozenset({1}), frozenset({2})])
        assert answers
        best = answers[0]
        assert best.root == 0
        assert best.nodes() == {0, 1, 2}

    def test_sorted_by_score(self):
        g = build_graph(5, [(0, 1), (0, 2), (3, 1), (3, 2), (3, 4)])
        answers = exhaustive_answers(g, [frozenset({1}), frozenset({2})])
        scores = [t.score for t in answers]
        assert scores == sorted(scores, reverse=True)

    def test_rotations_deduplicated(self):
        g = build_graph(3, [(0, 1), (0, 2)])
        answers = exhaustive_answers(g, [frozenset({1}), frozenset({2})])
        signatures = [t.signature() for t in answers]
        assert len(signatures) == len(set(signatures))

    def test_all_trees_valid(self):
        g = build_graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
        sets = [frozenset({1, 4}), frozenset({5})]
        for tree in exhaustive_answers(g, sets):
            validate_answer_tree(g, sets, tree)

    def test_max_results(self):
        g = build_graph(4, [(0, 1), (2, 1), (3, 1), (0, 3)])
        sets = [frozenset({1})]
        full = exhaustive_answers(g, sets)
        capped = exhaustive_answers(g, sets, max_results=1)
        assert len(capped) == 1
        assert capped[0].signature() == full[0].signature()

    def test_max_edge_score_filters(self):
        g = build_graph(3, [(0, 1), (1, 2)])
        sets = [frozenset({0}), frozenset({2})]
        all_answers = exhaustive_answers(g, sets)
        cheap_only = exhaustive_answers(g, sets, max_edge_score=1.0)
        assert len(cheap_only) <= len(all_answers)
        assert all(t.edge_score <= 1.0 for t in cheap_only)

    def test_disconnected_keywords_no_answers(self):
        g = build_graph(4, [(0, 1), (2, 3)])
        assert exhaustive_answers(g, [frozenset({0}), frozenset({3})]) == []

    def test_custom_scorer_used(self):
        g = build_graph(3, [(0, 1), (0, 2)], prestige=[0.8, 0.1, 0.1])
        answers = exhaustive_answers(
            g, [frozenset({1}), frozenset({2})], Scorer(g, lam=1.0)
        )
        assert answers[0].score == pytest.approx((0.8 + 0.1 + 0.1) / 3.0)
