"""DataGraph construction and validation."""

import pytest

from repro.errors import GraphError, GraphFrozenError, UnknownNodeError
from repro.graph.digraph import DataGraph


class TestAddNode:
    def test_ids_are_dense_and_ordered(self):
        g = DataGraph()
        assert [g.add_node(f"n{i}") for i in range(5)] == [0, 1, 2, 3, 4]
        assert g.num_nodes == 5

    def test_metadata_roundtrip(self):
        g = DataGraph()
        node = g.add_node("Jim Gray", table="author", ref=("author", 7))
        assert g.label(node) == "Jim Gray"
        assert g.table(node) == "author"
        assert g.ref(node) == ("author", 7)

    def test_defaults_are_empty(self):
        g = DataGraph()
        node = g.add_node()
        assert g.label(node) == ""
        assert g.table(node) is None
        assert g.ref(node) is None

    def test_add_nodes_bulk(self):
        g = DataGraph()
        ids = g.add_nodes(["a", "b", "c"])
        assert ids == [0, 1, 2]
        assert g.label(2) == "c"


class TestAddEdge:
    def test_degrees_update(self):
        g = DataGraph()
        a, b, c = g.add_nodes("abc")
        g.add_edge(a, b)
        g.add_edge(c, b)
        assert g.indegree(b) == 2
        assert g.outdegree(a) == 1
        assert g.indegree(a) == 0

    def test_parallel_edges_allowed(self):
        g = DataGraph()
        a, b = g.add_nodes("ab")
        g.add_edge(a, b, 1.0)
        g.add_edge(a, b, 2.0)
        assert g.num_edges == 2
        assert g.indegree(b) == 2

    def test_self_loop_rejected(self):
        g = DataGraph()
        a = g.add_node("a")
        with pytest.raises(GraphError):
            g.add_edge(a, a)

    def test_nonpositive_weight_rejected(self):
        g = DataGraph()
        a, b = g.add_nodes("ab")
        with pytest.raises(GraphError):
            g.add_edge(a, b, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(a, b, -2.0)

    def test_unknown_node_rejected(self):
        g = DataGraph()
        a = g.add_node("a")
        with pytest.raises(UnknownNodeError):
            g.add_edge(a, 99)
        with pytest.raises(UnknownNodeError):
            g.add_edge(99, a)

    def test_forward_edges_iteration_order(self):
        g = DataGraph()
        a, b, c = g.add_nodes("abc")
        g.add_edge(a, b, 1.5)
        g.add_edge(b, c, 2.5)
        assert list(g.forward_edges()) == [(0, 1, 1.5), (1, 2, 2.5)]


class TestFreeze:
    def test_mutation_after_freeze_fails(self):
        g = DataGraph()
        a, b = g.add_nodes("ab")
        g.add_edge(a, b)
        g.freeze()
        with pytest.raises(GraphFrozenError):
            g.add_node("c")
        with pytest.raises(GraphFrozenError):
            g.add_edge(a, b)

    def test_len_is_node_count(self):
        g = DataGraph()
        g.add_nodes("abc")
        assert len(g) == 3
