"""Property tests: scoring monotonicity and signature invariance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer import AnswerTree
from repro.core.scoring import overall_score

scores = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
lams = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)


@given(e1=scores, e2=scores, n=st.floats(min_value=0.01, max_value=10.0), lam=lams)
@settings(max_examples=200)
def test_overall_score_monotone_decreasing_in_e(e1, e2, n, lam):
    lo, hi = sorted((e1, e2))
    assert overall_score(hi, n, lam) <= overall_score(lo, n, lam)


@given(
    e=scores,
    n1=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    n2=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    lam=lams,
)
@settings(max_examples=200)
def test_overall_score_monotone_increasing_in_n(e, n1, n2, lam):
    lo, hi = sorted((n1, n2))
    assert overall_score(e, lo, lam) <= overall_score(e, hi, lam)


@st.composite
def random_tree_paths(draw):
    """A random star-ish tree given as root-to-leaf paths."""
    root = 0
    n_paths = draw(st.integers(min_value=1, max_value=4))
    next_node = 1
    paths = []
    for _ in range(n_paths):
        length = draw(st.integers(min_value=0, max_value=3))
        path = [root]
        for _ in range(length):
            path.append(next_node)
            next_node += 1
        paths.append(tuple(path))
    return tuple(paths)


@given(paths=random_tree_paths())
@settings(max_examples=150)
def test_signature_invariant_under_path_reordering(paths):
    def tree_with(ordered_paths):
        return AnswerTree(
            root=0,
            paths=tuple(ordered_paths),
            dists=tuple(float(len(p) - 1) for p in ordered_paths),
            edge_score=0.0,
            node_score=1.0,
            score=1.0,
        )

    forward = tree_with(paths)
    reversed_order = tree_with(tuple(reversed(paths)))
    assert forward.signature() == reversed_order.signature()
    assert forward.nodes() == reversed_order.nodes()
    assert forward.leaves() == reversed_order.leaves()


@given(paths=random_tree_paths())
@settings(max_examples=150)
def test_tree_structure_consistency(paths):
    tree = AnswerTree(
        root=0,
        paths=paths,
        dists=tuple(float(len(p) - 1) for p in paths),
        edge_score=0.0,
        node_score=1.0,
        score=1.0,
    )
    nodes = tree.nodes()
    edges = tree.edges()
    # Tree property: edges == nodes - 1 (paths share only the root here).
    assert len(edges) == len(nodes) - 1
    # Every leaf is some path's endpoint.
    endpoints = {p[-1] for p in paths}
    assert tree.leaves() <= endpoints | {0}
    # Root reaches every node through the edge set.
    reached = {0}
    frontier = [0]
    children = {}
    for parent, child in edges:
        children.setdefault(parent, []).append(child)
    while frontier:
        x = frontier.pop()
        for child in children.get(x, ()):
            if child not in reached:
                reached.add(child)
                frontier.append(child)
    assert reached == nodes
