"""Engine-level explain reports: structure, score audit, and the
cross-backend determinism contract.

The canonical section of an explain report (seed resolution, parameter
echo, answers with full score decompositions) must be **byte-identical**
across the three expansion backends for every algorithm — that is what
makes an explain plan trustworthy evidence rather than a backend
artifact.  Non-canonical sections (timeline, costs, timings) may vary.
"""

import pytest

from repro.core.params import SearchParams
from repro.telemetry.accounting import SCORE_FORMULA, canonical_explain_bytes

BACKENDS = ("python", "scalar", "vectorized")
ALGORITHMS = ("bidirectional", "si-backward", "mi-backward")

QUERY = "stream paper"


def _params(backend: str) -> SearchParams:
    return SearchParams(expansion_backend=backend)


class TestReportStructure:
    def test_explain_off_by_default(self, dblp_small_engine):
        result = dblp_small_engine.search(QUERY, k=3)
        assert result.explain is None

    def test_report_shape(self, dblp_small_engine):
        result = dblp_small_engine.search(QUERY, k=3, explain=True)
        report = result.explain
        assert report["version"] == 1
        canonical = report["canonical"]
        assert canonical["algorithm"] == "bidirectional"
        assert canonical["keywords"] == ["stream", "paper"]
        # One seed row per keyword, in keyword order, with a bounded
        # sorted sample of origin ids.
        assert [seed["keyword"] for seed in canonical["seeds"]] == [
            "stream",
            "paper",
        ]
        for seed in canonical["seeds"]:
            assert seed["origin_count"] >= len(seed["origin_sample"]) > 0
            assert seed["origin_sample"] == sorted(seed["origin_sample"])
        assert len(canonical["answers"]) == len(result.answers)
        # Backend-selection knobs are excluded from the canonical echo.
        assert "expansion_backend" not in canonical["params"]
        assert "trace_every_n_pops" not in canonical["params"]
        assert "dmax" in canonical["params"]

    def test_decomposition_audits_released_score(self, dblp_small_engine):
        result = dblp_small_engine.search(QUERY, k=3, explain=True)
        lam = dblp_small_engine.params.lam
        for row, answer in zip(
            result.explain["canonical"]["answers"], result.answers
        ):
            decomposition = row["decomposition"]
            assert decomposition["formula"] == SCORE_FORMULA
            assert decomposition["lambda"] == pytest.approx(lam)
            # Recompute the paper's formula from the decomposed parts.
            recomputed = row["node_score"] ** lam / (1.0 + row["edge_score"])
            assert recomputed == pytest.approx(row["score"], rel=1e-9)
            assert row["score"] == pytest.approx(answer.tree.score)
            # Per-keyword path weights sum to the edge score.
            assert sum(
                path["dist"] for path in decomposition["paths"]
            ) == pytest.approx(row["edge_score"], rel=1e-9)
            for path in decomposition["paths"]:
                assert path["path"][0] == row["root"]

    def test_costs_and_timeline_populated(self, dblp_small_engine):
        result = dblp_small_engine.search(QUERY, k=3, explain=True)
        costs = result.explain["costs"]
        assert costs["pops_in"] + costs["pops_out"] > 0
        assert costs["resolve_hits"] > 0
        assert costs["heap_ops"] > 0
        assert result.explain["timings"]["elapsed"] > 0.0
        # The bidirectional scheduler records its switch decisions.
        switches = [
            event
            for event in result.explain["timeline"]
            if event.get("event") == "switch"
        ]
        assert switches, "bidirectional run recorded no direction switches"
        assert all("rule" in event for event in switches)

    def test_answer_timing_is_non_canonical(self, dblp_small_engine):
        result = dblp_small_engine.search(QUERY, k=3, explain=True)
        timing = result.explain["answer_timing"]
        assert len(timing) == len(result.answers)
        assert "answer_timing" not in result.explain["canonical"]
        for row in timing:
            assert row["output_pops"] >= row["generated_pops"] >= 0


class TestCrossBackendDeterminism:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_canonical_bytes_identical_across_backends(
        self, dblp_small_engine, algorithm
    ):
        blobs = {}
        for backend in BACKENDS:
            result = dblp_small_engine.search(
                QUERY,
                algorithm=algorithm,
                k=5,
                params=_params(backend),
                explain=True,
            )
            blobs[backend] = canonical_explain_bytes(result.explain)
        assert blobs["python"] == blobs["scalar"] == blobs["vectorized"], (
            f"canonical explain for {algorithm} differs across backends"
        )

    def test_repeat_run_is_byte_stable(self, dblp_small_engine):
        first = dblp_small_engine.search(QUERY, k=5, explain=True)
        second = dblp_small_engine.search(QUERY, k=5, explain=True)
        assert canonical_explain_bytes(first.explain) == canonical_explain_bytes(
            second.explain
        )
