"""Memory-mapped graph and index: lazy rows over snapshot arrays.

:class:`MappedSearchGraph` and :class:`MappedInvertedIndex` are
read-only subclasses of the in-RAM classes whose bulk state —
adjacency rows, posting lists, and the per-node/per-term text metadata
— stays in the snapshot file and materializes on first touch through
``np.memmap`` slices.  Only what every query needs (indptr bounds,
prestige, activation normalizers) is resident from the start; adjacency
and postings page in per row, and the text block (labels, tables, refs,
term vocabularies) decodes once on the first metadata or vocabulary
access.

Bit-identity contract: a materialized row is built through the exact
``tolist()``/``zip`` pipeline the compressed loader uses
(:func:`repro.service.snapshot._unpack_adjacency`), so every neighbor
id is the same Python int, every weight the same Python float, and
every search over a mapped graph scores answers bit-identically to the
same search over the RAM-loaded graph — the property
``tests/property/test_prop_storage.py`` pins across algorithms and
expansion backends.

Materialized rows are cached and never evicted: the Python working set
grows with the rows a workload actually touches (counted by
:class:`~repro.storage.stats.StorageStats`), while the OS page cache
underneath holds the raw arrays and stays evictable *and shared* —
N worker processes mapping one snapshot keep one physical copy of the
cold data, which is the bigger-than-RAM story.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.errors import SnapshotError
from repro.graph.searchgraph import Edge, SearchGraph
from repro.index.inverted import InvertedIndex
from repro.storage.stats import PinPolicy, StorageStats

__all__ = [
    "MappedInvertedIndex",
    "MappedSearchGraph",
    "apply_pin_policy",
]


class _TextBlob:
    """The snapshot's text metadata, decoded once on first access.

    The v2 layout stores labels, tables, refs and the two term
    vocabularies as one JSON blob in the *data* region rather than the
    header — parsing it is O(n) text work that a lazy load should not
    pay before a query actually reads a label or looks up a term.
    """

    __slots__ = ("_raw", "_expect", "_path", "_decode_refs", "_data")

    def __init__(
        self,
        raw,
        *,
        num_nodes: int,
        index_terms: int,
        relation_terms: int,
        path: str,
        decode_refs: Callable[[list], list],
    ) -> None:
        self._raw = raw
        self._expect = (num_nodes, index_terms, relation_terms)
        self._path = path
        self._decode_refs = decode_refs
        self._data: Optional[dict] = None

    def load(self) -> dict:
        data = self._data
        if data is None:
            try:
                data = json.loads(bytes(np.asarray(self._raw)).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise SnapshotError(
                    f"{self._path} has a corrupt text block: {exc}"
                ) from exc
            num_nodes, index_terms, relation_terms = self._expect
            if (
                len(data.get("labels", ())) != num_nodes
                or len(data.get("tables", ())) != num_nodes
                or len(data.get("refs", ())) != num_nodes
                or len(data.get("post_terms", ())) != index_terms
                or len(data.get("rel_terms", ())) != relation_terms
            ):
                raise SnapshotError(
                    f"{self._path} text block is inconsistent with its header"
                )
            data["refs"] = self._decode_refs(data["refs"])
            self._data = data
        return data


class _LazyTextField(Sequence):
    """One list out of a :class:`_TextBlob`, decoded on first access."""

    __slots__ = ("_blob", "_key", "_len")

    def __init__(self, blob: _TextBlob, key: str, length: int) -> None:
        self._blob = blob
        self._key = key
        self._len = length

    def __len__(self) -> int:
        return self._len

    def __getitem__(self, i):
        return self._blob.load()[self._key][i]

    def __iter__(self):
        return iter(self._blob.load()[self._key])


class _LazyAdjacency(Sequence):
    """One adjacency side as a lazily materialized sequence of rows.

    Quacks like the ``tuple[tuple[Edge, ...], ...]`` the base
    :class:`SearchGraph` stores: ``len()`` is the node count and
    ``[u]`` is ``u``'s row as a tuple of ``(neighbor, weight,
    is_forward)`` tuples, built from the mapped arrays on first access
    and cached thereafter.
    """

    __slots__ = ("_bounds", "_ids", "_weights", "_fwd", "_rows", "_stats")

    def __init__(self, indptr, ids, weights, fwd, stats: StorageStats) -> None:
        # Bounds are O(n) and consulted on every access: keep them as a
        # resident Python list (int64 scalars would leak numpy types
        # into slice arithmetic anyway).
        self._bounds = np.asarray(indptr).tolist()
        self._ids = ids
        self._weights = weights
        self._fwd = fwd
        self._rows: dict[int, tuple[Edge, ...]] = {}
        self._stats = stats

    def __len__(self) -> int:
        return len(self._bounds) - 1

    def __getitem__(self, u: int) -> tuple[Edge, ...]:
        row = self._rows.get(u)
        if row is None:
            if not 0 <= u < len(self):
                raise IndexError(u)
            lo, hi = self._bounds[u], self._bounds[u + 1]
            # Same tolist()/zip pipeline as the compressed loader: the
            # resulting Python ints/floats/bools are bit-identical to a
            # RAM load of the same file.
            row = tuple(
                zip(
                    self._ids[lo:hi].tolist(),
                    self._weights[lo:hi].tolist(),
                    self._fwd[lo:hi].astype(bool).tolist(),
                )
            )
            self._rows[u] = row
            self._stats.note_row(hi - lo)
        return row

    def __iter__(self) -> Iterator[tuple[Edge, ...]]:
        # Full iteration (snapshot re-save, compaction) faults every
        # row; that is inherent to the operation, not an accident.
        return (self[u] for u in range(len(self)))

    def row_length(self, u: int) -> int:
        """Degree of ``u`` without materializing the row."""
        return self._bounds[u + 1] - self._bounds[u]

    def pin_rows(self, nodes) -> None:
        """Materialize many rows in one vectorized pass.

        Per-row materialization costs three array slices and three
        ``tolist`` calls of Python overhead; for a pin set of hundreds
        of rows that overhead dominates a lazy load's warmup.  This
        gathers every pinned edge with one fancy-index per side array
        and cuts the flat lists back into rows — the element pipeline
        (``tolist``/``zip``/``tuple``) is unchanged, so the cached rows
        are bit-identical to demand-faulted ones.
        """
        rows = self._rows
        todo = [u for u in nodes if u not in rows]
        if not todo:
            return
        bounds = self._bounds
        lo = np.array([bounds[u] for u in todo], dtype=np.int64)
        lengths = np.array(
            [bounds[u + 1] - bounds[u] for u in todo], dtype=np.int64
        )
        total = int(lengths.sum())
        if total:
            starts = np.repeat(
                lo - np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths
            )
            pos = np.arange(total, dtype=np.int64) + starts
            ids = self._ids[pos].tolist()
            weights = self._weights[pos].tolist()
            fwd = self._fwd[pos].astype(bool).tolist()
        else:
            ids = weights = fwd = []
        offset = 0
        for u, length in zip(todo, lengths.tolist()):
            end = offset + length
            rows[u] = tuple(
                zip(ids[offset:end], weights[offset:end], fwd[offset:end])
            )
            self._stats.note_row(length)
            offset = end


class MappedSearchGraph(SearchGraph):
    """A :class:`SearchGraph` whose adjacency lives in a mapped snapshot.

    Prestige and the activation normalizers are resident; the two
    adjacency sides are :class:`_LazyAdjacency` objects and the
    per-node text metadata decodes from the snapshot's text blob on
    first access.  Every read accessor of the base class works
    unchanged through the sequence protocols; the overrides below are
    exactly the base members that would otherwise iterate all rows
    (``num_edges``, ``csr_arrays``) or forget the subclass
    (``with_prestige``).
    """

    @classmethod
    def _from_mapped(
        cls,
        *,
        out_indptr,
        out_dst,
        out_weight,
        out_fwd,
        in_indptr,
        in_src,
        in_weight,
        in_fwd,
        labels,
        tables,
        refs,
        num_forward_edges: int,
        prestige,
        in_inv_weight_sum,
        out_inv_weight_sum,
        stats: StorageStats,
    ) -> "MappedSearchGraph":
        n = len(labels)
        if len(tables) != n or len(refs) != n:
            raise ValueError("adjacency and per-node metadata lengths disagree")
        g = cls()
        g._out = _LazyAdjacency(out_indptr, out_dst, out_weight, out_fwd, stats)
        g._in = _LazyAdjacency(in_indptr, in_src, in_weight, in_fwd, stats)
        if len(g._out) != n or len(g._in) != n:
            raise ValueError("adjacency and per-node metadata lengths disagree")
        # Possibly-lazy sequences: stored as given, never tuple()d (that
        # would force the text blob at load time).
        g._labels = labels
        g._tables = tables
        g._refs = refs
        g._num_forward_edges = int(num_forward_edges)
        g._prestige = cls._validate_prestige(np.asarray(prestige), n)
        g._in_inv_weight_sum = tuple(np.asarray(in_inv_weight_sum).tolist())
        g._out_inv_weight_sum = tuple(np.asarray(out_inv_weight_sum).tolist())
        if len(g._in_inv_weight_sum) != n or len(g._out_inv_weight_sum) != n:
            raise ValueError("inv-weight-sum lengths disagree with adjacency")
        g._num_edges = int(g._out._bounds[-1])
        g.storage = stats
        return g

    @property
    def num_edges(self) -> int:
        # The base class sums row lengths, which would fault every row;
        # the stored indptr already knows the total.
        return self._num_edges

    def with_prestige(self, prestige) -> "MappedSearchGraph":
        g = MappedSearchGraph()
        g._out = self._out
        g._in = self._in
        g._labels = self._labels
        g._tables = self._tables
        g._refs = self._refs
        g._num_forward_edges = self._num_forward_edges
        g._in_inv_weight_sum = self._in_inv_weight_sum
        g._out_inv_weight_sum = self._out_inv_weight_sum
        g._prestige = self._validate_prestige(prestige, self.num_nodes)
        g._ref_to_node = self._ref_to_node
        g._num_edges = self._num_edges
        g.storage = self.storage
        return g

    def csr_arrays(self) -> dict[str, np.ndarray]:
        # Same contents as the base builder, straight from the mapped
        # arrays (the v2 format stores rows in original graph order, so
        # no per-edge loop is needed): indptr/dst copy verbatim, the
        # float64 weights narrow to float32 exactly as the per-element
        # assignment would.
        if self._csr_cache is None:
            out = self._out
            self._csr_cache = {
                "indptr": np.array(out._bounds, dtype=np.int64),
                "dst": np.array(out._ids, dtype=np.int32),
                "weight": np.array(out._weights, dtype=np.float32),
                "prestige": self._prestige.astype(np.float64),
            }
        return self._csr_cache

    def _mapped_csr_sides(self) -> dict[str, np.ndarray]:
        """Raw both-sides arrays for the kernel CSR fast path
        (:func:`repro.core.kernels.csr.graph_csr`)."""
        return {
            "in_indptr": np.array(self._in._bounds, dtype=np.int64),
            "in_src": np.array(self._in._ids, dtype=np.int32),
            "in_w": np.array(self._in._weights, dtype=np.float64),
            "out_indptr": np.array(self._out._bounds, dtype=np.int64),
            "out_dst": np.array(self._out._ids, dtype=np.int32),
            "out_w": np.array(self._out._weights, dtype=np.float64),
        }


class _LazyPostings(Mapping):
    """Term -> posting-set mapping over concatenated snapshot arrays.

    Materializes one term's node set on first access (same
    ``tolist()`` pipeline as the compressed loader, so members are the
    same Python ints) and caches it.  Iteration order matches the
    compressed loader's dict order: the snapshot stores terms sorted,
    and ``_unpack_postings`` inserts them in that order.

    The term list itself comes from the text blob, decoded on the
    first *by-name* access; posting rows pinned at load time via
    :meth:`pin_row` cache by row index and need no term names at all.
    """

    __slots__ = (
        "_terms_thunk", "_terms", "_positions",
        "_bounds", "_nodes", "_sets", "_by_index", "_stats",
    )

    def __init__(
        self,
        terms_thunk: Callable[[], list],
        indptr,
        nodes,
        stats: StorageStats,
    ) -> None:
        self._terms_thunk = terms_thunk
        self._terms: Optional[list[str]] = None
        self._positions: Optional[dict[str, int]] = None
        self._bounds = np.asarray(indptr).tolist()
        self._nodes = nodes
        self._sets: dict[str, set[int]] = {}
        self._by_index: dict[int, set[int]] = {}
        self._stats = stats

    def _ensure_terms(self) -> list[str]:
        terms = self._terms
        if terms is None:
            terms = list(self._terms_thunk())
            if len(terms) != len(self._bounds) - 1:
                raise SnapshotError(
                    "posting indptr and term vocabulary lengths disagree"
                )
            self._terms = terms
            self._positions = {term: i for i, term in enumerate(terms)}
        return terms

    def _row_set(self, i: int) -> set[int]:
        nodes = self._by_index.get(i)
        if nodes is None:
            lo, hi = self._bounds[i], self._bounds[i + 1]
            nodes = set(self._nodes[lo:hi].tolist())
            self._by_index[i] = nodes
            self._stats.note_postings(hi - lo)
        return nodes

    def pin_row(self, i: int) -> None:
        """Materialize the ``i``-th posting row (no term name needed)."""
        self._row_set(i)

    def __getitem__(self, term: str) -> set[int]:
        nodes = self._sets.get(term)
        if nodes is None:
            self._ensure_terms()
            i = self._positions[term]  # KeyError for unknown terms
            nodes = self._row_set(i)
            self._sets[term] = nodes
        return nodes

    def __contains__(self, term: object) -> bool:
        # The Mapping default probes __getitem__, which would fault the
        # posting list just to answer a membership test.
        self._ensure_terms()
        return term in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self._ensure_terms())

    def __len__(self) -> int:
        return len(self._bounds) - 1

    def frequency_of(self, i: int) -> int:
        """Posting size of the ``i``-th term without materializing it."""
        return self._bounds[i + 1] - self._bounds[i]


class MappedInvertedIndex(InvertedIndex):
    """An :class:`InvertedIndex` whose text postings live in a mapped
    snapshot.

    The text posting map is a :class:`_LazyPostings`; relation-name
    postings (a handful of table-name terms) materialize from the text
    blob on first index read.  The inherited ``lookup`` memoization
    works unchanged — it only uses the mapping protocol — and the
    ``add_*`` mutators are disabled: mapped state is read-only, live
    mutations go through :class:`~repro.live.overlay.OverlayIndex`
    deltas in RAM.
    """

    @classmethod
    def _from_mapped(
        cls,
        *,
        blob: _TextBlob,
        post_indptr,
        post_nodes,
        rel_indptr,
        rel_nodes,
        stats: StorageStats,
    ) -> "MappedInvertedIndex":
        # Bypass __init__: ``_relation_nodes`` is a lazy property here,
        # and the base constructor would try to assign over it.
        index = cls.__new__(cls)
        index._postings = _LazyPostings(
            lambda: blob.load()["post_terms"], post_indptr, post_nodes, stats
        )
        index._blob = blob
        index._rel_bounds = np.asarray(rel_indptr).tolist()
        index._rel_nodes_flat = rel_nodes
        index._rel_materialized = None
        index._lookup_cache = {}
        index.storage = stats
        return index

    @property
    def _relation_nodes(self) -> dict[str, set[int]]:
        rel = self._rel_materialized
        if rel is None:
            bounds = self._rel_bounds
            flat = np.asarray(self._rel_nodes_flat).tolist()
            rel = {
                term: set(flat[bounds[i] : bounds[i + 1]])
                for i, term in enumerate(self._blob.load()["rel_terms"])
            }
            self._rel_materialized = rel
        return rel

    def _read_only(self, what: str):
        raise TypeError(
            f"{what}: a mapped snapshot index is read-only; apply live "
            f"mutations through an overlay (repro.live), not in place"
        )

    def add_text(self, node: int, text: str) -> None:
        self._read_only("add_text")

    def add_term(self, node: int, term: str) -> None:
        self._read_only("add_term")

    def add_relation_node(self, relation: str, node: int) -> None:
        self._read_only("add_relation_node")

    def terms_by_frequency(self) -> list[tuple[str, int]]:
        # Posting sizes come from the indptr bounds — the base
        # implementation would materialize every posting set.
        postings = self._postings
        return sorted(
            (
                (term, postings.frequency_of(i))
                for i, term in enumerate(postings._ensure_terms())
            ),
            key=lambda item: (-item[1], item[0]),
        )


def apply_pin_policy(
    graph: MappedSearchGraph,
    index: MappedInvertedIndex,
    policy: Optional[PinPolicy],
    stats: StorageStats,
) -> None:
    """Fault in the policy's pin set and record it in ``stats``.

    Node selection: union of the top-``policy.nodes`` rows by prestige
    and by combined (in+out) degree, ties broken by node id — both
    rankings deterministic, so every replica pins the same set.  Term
    selection: the ``policy.terms`` largest text posting lists, ties by
    row index — which is term order, since the snapshot stores terms
    sorted; pinning by row index keeps the text blob untouched at load
    time.  Counters are zeroed afterwards so ``row_faults`` /
    ``posting_faults`` measure post-warmup demand misses, while the pin
    set itself is reported through ``pinned_*``.
    """
    policy = PinPolicy.coerce(policy)
    before = stats.resident_bytes

    pinned_nodes: set[int] = set()
    n = graph.num_nodes
    k = min(policy.nodes, n)
    if k > 0:
        order = np.argsort(-graph.prestige, kind="stable")
        pinned_nodes.update(order[:k].tolist())
        degree = np.diff(np.asarray(graph._out._bounds)) + np.diff(
            np.asarray(graph._in._bounds)
        )
        order = np.argsort(-degree, kind="stable")
        pinned_nodes.update(order[:k].tolist())
    ordered = sorted(pinned_nodes)
    graph._out.pin_rows(ordered)
    graph._in.pin_rows(ordered)

    postings = index._postings
    pinned_terms = 0
    if policy.terms > 0 and len(postings):
        ranked = sorted(
            range(len(postings)),
            key=lambda i: (-postings.frequency_of(i), i),
        )
        for i in ranked[: policy.terms]:
            postings.pin_row(i)
            pinned_terms += 1

    stats.pinned_nodes = len(pinned_nodes)
    stats.pinned_terms = pinned_terms
    stats.pinned_bytes = stats.resident_bytes - before
    stats.row_faults = 0
    stats.posting_faults = 0
