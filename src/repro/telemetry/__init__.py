"""Unified telemetry: tracing, metrics, events, SLOs, profiling.

Stdlib-only observability for the whole serving stack.  Seven pieces:

* :mod:`repro.telemetry.trace` — ``Tracer`` / ``Span`` / ``TraceStore``:
  one ``trace_id`` per query, a span tree crossing thread and process
  boundaries (``http → route → queue_wait → worker → engine``);
* :mod:`repro.telemetry.metrics` — ``MetricsRegistry``: counters,
  gauges and bucketed histograms every layer registers into, exported
  as JSON or Prometheus text exposition, mergeable across replicas;
* :mod:`repro.telemetry.slowlog` — ``SlowQueryLog``: a ring buffer of
  span trees for queries over a latency threshold;
* :mod:`repro.telemetry.events` — ``EventLog``: a monotonically
  sequenced ring of structured operational events (crashes, WAL
  repairs, reloads, SLO breaches), mergeable across replicas;
* :mod:`repro.telemetry.slo` — ``SloEngine``: declarative objectives
  evaluated over sliding windows of the registry with multi-window
  burn-rate alerting;
* :mod:`repro.telemetry.profile` — ``SamplingProfiler``: an always-on
  collapsed-stack sampler over ``sys._current_frames``;
* :mod:`repro.telemetry.dashboard` — ``render_dashboard``: the whole
  fleet on one dependency-free HTML page;
* :mod:`repro.telemetry.accounting` — explain reports
  (``build_explain_report`` / ``ExplainStore``), canonical query
  fingerprints and the mergeable space-saving workload sketch behind
  ``/debug/queries``.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and the full list
of exported metric families.
"""

from repro.telemetry.accounting import (
    ExplainStore,
    SpaceSavingSketch,
    WorkloadAnalytics,
    build_explain_report,
    canonical_explain_bytes,
    merge_sketch_exports,
    query_fingerprint,
)
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.events import SEVERITIES, EventLog, merge_events
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
    render_prometheus,
)
from repro.telemetry.profile import (
    SamplingProfiler,
    diff_profiles,
    merge_profiles,
    render_collapsed,
)
from repro.telemetry.slo import (
    SloEngine,
    SloObjective,
    burn_rate,
    default_objectives,
    histogram_bad_fraction,
)
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.trace import (
    Span,
    Tracer,
    TraceStore,
    build_span_tree,
    current_span,
    new_span_id,
    new_trace_id,
    render_span_tree,
    use_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "EventLog",
    "ExplainStore",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SEVERITIES",
    "SamplingProfiler",
    "SloEngine",
    "SloObjective",
    "SlowQueryLog",
    "SpaceSavingSketch",
    "Span",
    "Tracer",
    "TraceStore",
    "WorkloadAnalytics",
    "build_explain_report",
    "build_span_tree",
    "burn_rate",
    "canonical_explain_bytes",
    "current_span",
    "default_objectives",
    "diff_profiles",
    "histogram_bad_fraction",
    "merge_events",
    "merge_profiles",
    "merge_registries",
    "merge_sketch_exports",
    "query_fingerprint",
    "new_span_id",
    "new_trace_id",
    "render_collapsed",
    "render_dashboard",
    "render_prometheus",
    "render_span_tree",
    "use_span",
]
