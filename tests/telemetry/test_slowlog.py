"""Unit tests for the slow-query log ring buffer."""

import pytest

from repro.telemetry.slowlog import SlowQueryLog


class TestValidation:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            SlowQueryLog(threshold=-0.1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            SlowQueryLog(capacity=0)


class TestThreshold:
    def test_none_disables_recording(self):
        log = SlowQueryLog(threshold=None)
        assert log.record(elapsed=100.0) is False
        assert len(log) == 0

    def test_zero_records_everything(self):
        log = SlowQueryLog(threshold=0.0)
        assert log.record(elapsed=0.0) is True
        assert log.record(elapsed=0.001) is True
        assert len(log) == 2

    def test_below_threshold_skipped(self):
        log = SlowQueryLog(threshold=1.0)
        assert log.record(elapsed=0.5) is False
        assert log.record(elapsed=1.0) is True
        assert len(log) == 1


class TestEntries:
    def test_entry_fields(self):
        log = SlowQueryLog(threshold=0.0)
        log.record(
            elapsed=2.5,
            trace_id="abc",
            request={"dataset": "toy"},
            error_type="TimeoutError",
            span_tree={"roots": []},
            extra={"worker": 3},
        )
        (entry,) = log.entries()
        assert entry["elapsed"] == 2.5
        assert entry["trace_id"] == "abc"
        assert entry["request"] == {"dataset": "toy"}
        assert entry["error_type"] == "TimeoutError"
        assert entry["span_tree"] == {"roots": []}
        assert entry["worker"] == 3
        assert entry["recorded_at"] > 0

    def test_newest_first(self):
        log = SlowQueryLog(threshold=0.0)
        for elapsed in (1.0, 2.0, 3.0):
            log.record(elapsed=elapsed)
        assert [entry["elapsed"] for entry in log.entries()] == [3.0, 2.0, 1.0]

    def test_ring_capacity_drops_oldest(self):
        log = SlowQueryLog(threshold=0.0, capacity=2)
        for elapsed in (1.0, 2.0, 3.0):
            log.record(elapsed=elapsed)
        assert [entry["elapsed"] for entry in log.entries()] == [3.0, 2.0]

    def test_clear(self):
        log = SlowQueryLog(threshold=0.0)
        log.record(elapsed=1.0)
        log.clear()
        assert len(log) == 0
        assert log.entries() == []
