"""ASCII rendering of answer trees and results."""

from repro.render import render_result, render_tree


class TestRenderTree:
    def test_marks_matched_nodes(self, toy_engine):
        result = toy_engine.search("gray transaction", k=1)
        text = render_tree(result.best().tree, toy_engine.graph)
        assert "*" in text
        assert "score=" in text
        assert "Jim Gray" in text

    def test_without_graph_uses_ids(self, toy_engine):
        result = toy_engine.search("gray transaction", k=1)
        tree = result.best().tree
        text = render_tree(tree)
        assert str(tree.root) in text

    def test_indentation_reflects_depth(self, toy_engine):
        result = toy_engine.search("gray selinger", k=1)
        tree = result.best().tree
        text = render_tree(tree, toy_engine.graph)
        lines = text.splitlines()
        assert any(line.startswith("  +- ") for line in lines)

    def test_single_node_tree(self, toy_engine):
        result = toy_engine.search("transaction", k=1)
        tree = result.best().tree
        assert tree.size() == 1
        text = render_tree(tree, toy_engine.graph)
        assert "size=1" in text


class TestRenderResult:
    def test_header_and_limit(self, toy_engine):
        result = toy_engine.search("transaction", k=3)
        text = render_result(result, toy_engine.graph, limit=2)
        assert text.startswith("bidirectional:")
        assert text.count("--- answer") == min(2, len(result.answers))

    def test_empty_result(self, toy_engine):
        from repro.core.answer import SearchResult

        empty = SearchResult(algorithm="x", keywords=("a",))
        text = render_result(empty, toy_engine.graph)
        assert "0 answers" in text
