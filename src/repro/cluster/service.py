"""``ShardedQueryService``: the process-pool tier above ``QueryService``.

Same facade, different execution substrate: ``search`` / ``search_many``
/ ``metrics`` / ``warmup`` / context-manager semantics match
:class:`~repro.service.QueryService`, but requests are dispatched over
N worker *processes*, each holding a private snapshot-warmed
``QueryService`` — so a batch's pure-Python search time actually
divides across cores instead of serializing on one GIL (the ROADMAP's
first open item).

Everything crossing the process boundary is primitives: snapshot paths
at spawn time, request-shaped dicts out, response-shaped dicts back
(:mod:`repro.service.wire`).  Routing is deterministic
(:class:`~repro.cluster.router.ShardRouter`): a dataset lives on a
fixed replica set, and a given query always lands on the same replica —
which is also what makes each worker's private result cache effective.

Failure semantics extend the service contract across processes:

* a malformed request or unroutable dataset is answered supervisor-side
  as a structured error response;
* a deadline is enforced *worker-side first*: the request ships with
  its ``timeout``, the worker arms a cooperative
  :class:`~repro.core.cancellation.CancellationToken`, and the expired
  search stops within a couple of check intervals and frees the shard
  (``error_type="DeadlineExceededError"``, carrying partial answers
  when ``allow_partial``).  The supervisor still watches the clock as a
  backstop — a request that missed its deadline while *queued* is
  killed through the pool's cancel ring
  (:meth:`~repro.cluster.pool.WorkerPool.cancel`) so it never occupies
  the shard at all;
* requests carrying a ``request_id`` can be stopped explicitly through
  :meth:`ShardedQueryService.cancel` (what ``DELETE /search/<id>`` and
  the HTTP disconnect watcher call) — the shard stops searching, the
  waiter gets a structured ``SearchCancelledError`` response;
* a worker crash turns its in-flight requests into
  ``error_type="WorkerCrashedError"`` responses and the pool restarts
  the worker — callers never hang, and the *next* batch is served.

Supervisor-side events (deadline misses, malformed requests, crashes)
are recorded in a local :class:`~repro.service.metrics.ServiceMetrics`;
:meth:`metrics` merges it with every worker's export into one cluster
view (:func:`~repro.cluster.metrics.merge_metrics`).

Live updates (:mod:`repro.live`) propagate fleet-wide without process
restarts: :meth:`ShardedQueryService.apply` broadcasts a mutation
batch to every replica of the dataset's shard (one serialized stream,
so replicas stay bit-identical), each worker commits a new epoch and
bumps the version its result cache is keyed by, and
:meth:`dataset_versions` / :meth:`health` expose per-replica versions
so drift is observable.  :meth:`reload` hot-swaps a dataset from a
re-written snapshot file, no-opping on replicas whose content digest
already matches.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.core.engine import parse_query
from repro.core.params import SearchParams
from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    MutationError,
    PoolClosedError,
    SearchCancelledError,
    WorkerCrashedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.service import (
    QueryRequest,
    QueryResponse,
    coerce_request,
    normalize_search_args,
    request_fingerprint,
)
from repro.service.wire import request_to_dict, response_from_dict
from repro.telemetry.accounting import ExplainStore, merge_sketch_exports
from repro.telemetry.dashboard import algorithm_summary
from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import (
    SamplingProfiler,
    diff_profiles,
    merge_profiles,
    render_collapsed,
)
from repro.telemetry.slo import SloEngine, SloObjective, default_objectives
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.trace import Tracer, new_span_id, new_trace_id
from repro.wal.log import MutationLog
from repro.cluster.metrics import merge_metrics
from repro.cluster.pool import WorkerPool, control_error
from repro.cluster.router import ShardRouter

__all__ = ["ShardedQueryService"]


class ShardedQueryService:
    """Facade owning a shard router, a worker pool and merged metrics.

    Parameters
    ----------
    snapshots:
        ``{dataset_name: snapshot_path}`` — every dataset a worker may
        serve must exist as a snapshot file
        (:func:`repro.service.snapshot.save_engine`); workers load from
        disk, ``from_database`` never runs in the fleet.
    num_workers:
        Process count (default: the machine's CPU count).
    default_replicas / replicas:
        Replica fan-out per dataset (see :class:`ShardRouter`).  A
        single hot dataset on an 8-core box wants
        ``default_replicas=8``.
    cache_capacity / cache_ttl:
        Per-worker result-cache knobs.
    start_method:
        Worker start method (default ``"spawn"``; see ``WorkerPool``).
    restart:
        Restart-on-crash policy, on by default.
    cooperative_cancellation:
        Arm worker-side cancellation tokens (deadlines stop searches
        and free shards; ``cancel`` works).  False restores the old
        run-to-completion behaviour — the control arm of
        ``benchmarks/bench_cancellation.py``.
    cancel_grace:
        How long a deadline-missed ``allow_partial`` request waits for
        the cancelled search's partial response before settling for a
        bare deadline error.
    wal_dir:
        Directory for per-dataset durable mutation logs
        (:mod:`repro.wal`; ``<wal_dir>/<dataset>.wal``).  When set, the
        supervisor appends every :meth:`apply` batch to the dataset's
        log *before* broadcasting it, and every worker — including the
        replacement a restart-on-crash spawns — **replays the log at
        startup**, so a ``kill -9``'d replica recovers to exactly the
        last durable epoch instead of silently serving its snapshot.
        None (the default) keeps the PR-4 in-memory behaviour.
    wal_sync:
        Per-append durability policy for those logs: ``"commit"``
        fsyncs every batch, the ``"batched"`` default flushes every
        batch (a supervisor ``kill -9`` loses nothing) and fsyncs
        periodically, ``"off"`` defers flushing to rotation/close.
    tracing:
        Structured tracing, on by default: the supervisor mints a trace
        id per request (or adopts the caller's), records a ``route``
        span, and re-homes every span the worker process returns into
        its own :class:`~repro.telemetry.Tracer` — :meth:`trace`
        reconstructs the cross-process tree.  Forwarded to every
        worker's private ``QueryService``; False disables both sides.
    trace_capacity / slow_query_threshold / slow_log_capacity:
        Supervisor-side retention knobs: how many traces the store
        keeps, and the elapsed-seconds threshold / ring size of the
        slow-query log (:meth:`slow_queries`; ``None`` disables it).
    profiling / profile_interval:
        Always-on sampling profiler (:mod:`repro.telemetry.profile`),
        on by default: the supervisor and every worker run a
        ``SamplingProfiler`` at ``profile_interval`` seconds per
        sample; :meth:`profile` diffs snapshots fleet-wide.
    event_log_capacity:
        Ring size of the supervisor's (and each worker's) structured
        :class:`~repro.telemetry.events.EventLog`; worker events are
        pulled and re-sequenced into the supervisor's stream by
        :meth:`events`.
    slo_objectives / slo_interval:
        Burn-rate alerting (:mod:`repro.telemetry.slo`): objectives
        default to :func:`~repro.telemetry.slo.default_objectives`
        evaluated every ``slo_interval`` seconds by a background
        ticker (alerts fire into the event log and export ``slo_*``
        gauges).  An empty sequence disables SLOs; ``slo_interval=0``
        keeps evaluate-on-read only.
    accounting / explain_capacity:
        Per-query resource accounting (:mod:`repro.telemetry.accounting`),
        on by default: every worker keeps a workload sketch merged
        fleet-wide by :meth:`query_stats`, and the supervisor retains
        the last ``explain_capacity`` explain reports harvested from
        settled ``explain=True`` responses (:meth:`explain`).
    """

    def __init__(
        self,
        snapshots: Mapping[str, os.PathLike],
        *,
        num_workers: Optional[int] = None,
        default_replicas: int = 1,
        replicas: Optional[Mapping[str, int]] = None,
        cache_capacity: int = 1024,
        cache_ttl: Optional[float] = None,
        metrics_window: int = 2048,
        start_method: Optional[str] = "spawn",
        health_interval: float = 0.5,
        restart: bool = True,
        cooperative_cancellation: bool = True,
        cancel_grace: float = 1.0,
        wal_dir: Optional[os.PathLike] = None,
        wal_sync: str = "batched",
        tracing: bool = True,
        trace_capacity: int = 512,
        slow_query_threshold: Optional[float] = 1.0,
        slow_log_capacity: int = 128,
        profiling: bool = True,
        profile_interval: float = 0.02,
        event_log_capacity: int = 1024,
        slo_objectives: Optional[Sequence[SloObjective]] = None,
        slo_interval: float = 5.0,
        accounting: bool = True,
        explain_capacity: int = 128,
        storage_mode: Optional[str] = None,
    ) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if cancel_grace < 0:
            raise ValueError(f"cancel_grace must be >= 0, got {cancel_grace!r}")
        self.event_log = EventLog(event_log_capacity)
        self.router = ShardRouter(
            list(snapshots),
            num_workers,
            default_replicas=default_replicas,
            replicas=replicas,
        )
        paths = {name: str(path) for name, path in snapshots.items()}
        self._wals: dict[str, MutationLog] = {}
        self._wal_corruption: dict[str, int] = {}
        wal_paths: dict[str, str] = {}
        if wal_dir is not None:
            from repro.errors import SnapshotError
            from repro.service.snapshot import snapshot_info

            for name, snapshot_path in paths.items():
                wal_path = Path(wal_dir) / f"{name}.wal"
                try:
                    start = int(
                        snapshot_info(snapshot_path).get("dataset_version") or 0
                    )
                except SnapshotError:
                    start = 0
                log = MutationLog(wal_path, sync=wal_sync, start_seq=start)
                if log.last_seq < start:
                    # The snapshot was re-provisioned past this log's
                    # lineage (its records are superseded history);
                    # keeping them would leave every new append's
                    # sequence number trailing replica versions, which
                    # the idempotent-skip guard reads as "already
                    # applied".  Restart the log at the snapshot.
                    log.reset(start_seq=start)
                self._wals[name] = log
                wal_paths[name] = str(wal_path)
                self._note_wal_corruption(name, log)
        specs = {
            worker_id: {name: paths[name] for name in names}
            for worker_id, names in self.router.assignments().items()
        }
        self.pool = WorkerPool(
            specs,
            settings={
                "cache_capacity": cache_capacity,
                "cache_ttl": cache_ttl,
                "cooperative_cancellation": cooperative_cancellation,
                "wals": wal_paths,
                "tracing": tracing,
                "profiling": profiling,
                "profile_interval": profile_interval,
                "event_log_capacity": event_log_capacity,
                "accounting": accounting,
                # Storage tier every worker loads its snapshots into.
                # Replacement workers spawned after a crash reuse these
                # settings, so the tier survives restarts; under
                # "mapped" all workers mapping one snapshot file share
                # a single physical copy in the OS page cache.
                "storage_mode": storage_mode,
            },
            start_method=start_method,
            health_interval=health_interval,
            restart=restart,
            event_sink=self._pool_event,
        )
        self._cooperative = cooperative_cancellation
        self._cancel_grace = cancel_grace
        self.registry = MetricsRegistry()
        self._local_metrics = ServiceMetrics(metrics_window, registry=self.registry)
        self.tracer: Optional[Tracer] = Tracer(trace_capacity) if tracing else None
        self.slow_log = SlowQueryLog(slow_query_threshold, slow_log_capacity)
        # Explain reports are harvested supervisor-side from settled
        # responses (workers are restartable cattle; their stores die
        # with them), so ``GET /debug/explain/<id>`` works regardless of
        # which replica ran the query.  Workload sketches stay
        # worker-side and are merged on demand by :meth:`query_stats`.
        self.explain_store: Optional[ExplainStore] = (
            ExplainStore(explain_capacity) if accounting else None
        )
        self._active_lock = threading.Lock()
        self._active: dict[str, int] = {}
        # Fleet-level request accounting, recorded supervisor-side on
        # every settled response so the SLO engine never needs a worker
        # round-trip to evaluate: the families it watches live in this
        # registry.
        self._fleet_requests = self.registry.counter(
            "repro_fleet_requests_total",
            "Requests settled by the supervisor",
            labels=("dataset",),
        )
        self._fleet_failures = self.registry.counter(
            "repro_fleet_failures_total",
            "Requests settled with a structured error",
            labels=("dataset", "type"),
        )
        self._fleet_latency = self.registry.histogram(
            "repro_fleet_request_latency_seconds",
            "End-to-end request latency as seen by the supervisor",
            labels=("dataset",),
        )
        self.profiler: Optional[SamplingProfiler] = None
        if profiling:
            self.profiler = SamplingProfiler(interval=profile_interval)
            self.profiler.start()
        self._event_cursors: dict[int, int] = {}
        self._events_lock = threading.Lock()
        self.slo: Optional[SloEngine] = None
        self._slo_stop = threading.Event()
        self._slo_thread: Optional[threading.Thread] = None
        objectives = (
            default_objectives() if slo_objectives is None else list(slo_objectives)
        )
        if objectives:
            self.slo = SloEngine(
                objectives,
                source=self.registry.export,
                registry=self.registry,
                event_log=self.event_log,
                request_family="repro_fleet_requests_total",
                error_family="repro_fleet_failures_total",
                latency_family="repro_fleet_request_latency_seconds",
            )
            if slo_interval and slo_interval > 0:
                self._slo_thread = threading.Thread(
                    target=self._slo_loop,
                    args=(slo_interval,),
                    name="repro-slo-ticker",
                    daemon=True,
                )
                self._slo_thread.start()
        # One mutation stream per *dataset*: broadcasts from concurrent
        # callers must reach every replica's queue in the same order,
        # or replicas would assign different node ids to the same
        # AddNode and drift apart.  Per-dataset (not fleet-wide) so a
        # slow replica of one dataset never serializes applies — or a
        # WAL append's hold-through-collection — against another's.
        self._mutate_locks: dict[str, threading.Lock] = {
            name: threading.Lock() for name in paths
        }
        self._register_telemetry_collectors()

    def _register_telemetry_collectors(self) -> None:
        """Register fleet-state metric families, filled at export time.

        Collector-driven because their sources of truth live elsewhere
        (the pool's liveness map, the WAL's counters): the collector
        snapshots them whenever the registry is exported, so the
        request path never pays for fleet bookkeeping.
        """
        workers_total = self.registry.gauge(
            "repro_cluster_workers", "Configured worker processes"
        )
        workers_alive = self.registry.gauge(
            "repro_cluster_workers_alive", "Worker processes currently alive"
        )
        restarts = self.registry.counter(
            "repro_cluster_worker_restarts_total",
            "Crash-restarts performed by the worker pool",
            labels=("worker",),
        )
        wal_seq = self.registry.gauge(
            "repro_wal_last_seq",
            "Newest durable WAL sequence number",
            labels=("dataset",),
            merge="max",
        )
        wal_appends = self.registry.counter(
            "repro_wal_appends_total",
            "Mutation batches appended to the WAL",
            labels=("dataset",),
        )
        wal_fsyncs = self.registry.counter(
            "repro_wal_fsyncs_total",
            "fsync calls issued by the WAL",
            labels=("dataset",),
        )
        wal_bytes = self.registry.counter(
            "repro_wal_appended_bytes_total",
            "Bytes appended to the WAL",
            labels=("dataset",),
        )
        wal_corruption = self.registry.counter(
            "repro_wal_corruption_records_total",
            "Corrupt records detected while reading the WAL",
            labels=("dataset",),
        )

        def collect() -> None:
            alive = self.pool.alive()
            workers_total.set(self.router.num_workers)
            workers_alive.set(sum(alive.values()))
            for worker_id, count in self.pool.restarts().items():
                restarts.set_total(count, worker=str(worker_id))
            for name, log in self._wals.items():
                stats = log.stats()
                wal_seq.set(stats.get("last_seq", 0), dataset=name)
                wal_appends.set_total(stats.get("appends", 0), dataset=name)
                wal_fsyncs.set_total(stats.get("fsyncs", 0), dataset=name)
                wal_bytes.set_total(
                    stats.get("appended_bytes", 0), dataset=name
                )
                wal_corruption.set_total(
                    stats.get("corruption_records", 0), dataset=name
                )

        self.registry.add_collector(collect)

    def _note_wal_corruption(self, name: str, log: MutationLog) -> None:
        """Turn a freshly-opened log's corruption incidents into
        first-class operational events (the counter is collector-driven
        off ``log.stats()``, so this only handles the event side)."""
        incidents = log.corruption_events()
        if not incidents:
            return
        self._wal_corruption[name] = self._wal_corruption.get(name, 0) + len(
            incidents
        )
        for incident in incidents:
            outcome = (
                "repaired by truncating the tail"
                if incident.get("repaired")
                else "reads stop at the last valid record"
            )
            self.event_log.emit(
                "wal_corruption",
                f"WAL for dataset {name!r} hit corrupt data at offset "
                f"{incident.get('offset')}: {incident.get('reason')} "
                f"({outcome})",
                severity="warning",
                dataset=name,
                source="supervisor",
                path=incident.get("path"),
                offset=incident.get("offset"),
                reason=incident.get("reason"),
                last_valid_seq=incident.get("last_valid_seq"),
                repaired=incident.get("repaired"),
            )

    def _pool_event(self, kind: str, **info) -> None:
        """Event sink the worker pool calls from its health/crash
        machinery.  Never raises — an observability failure must not
        take down crash handling."""
        try:
            worker = info.get("worker_id")
            if kind == "worker_crash":
                self.event_log.emit(
                    "worker_crash",
                    f"worker {worker} (pid {info.get('pid')}) died with "
                    f"exit code {info.get('exitcode')}; "
                    f"{info.get('in_flight', 0)} request(s) were in flight",
                    severity="error",
                    source="pool",
                    **info,
                )
            elif kind == "worker_restart":
                self.event_log.emit(
                    "worker_restart",
                    f"worker {worker} respawned "
                    f"(restart #{info.get('restarts')})",
                    severity="warning",
                    source="pool",
                    **info,
                )
            else:  # pragma: no cover - future pool event kinds
                self.event_log.emit(kind, str(info), source="pool", **info)
        except Exception:  # pragma: no cover - defensive
            pass

    def _slo_loop(self, interval: float) -> None:
        while not self._slo_stop.wait(interval):
            try:
                if self.slo is not None:
                    self.slo.evaluate()
            except Exception:  # pragma: no cover - defensive
                pass

    def _record_fleet_outcome(
        self, request: Optional[QueryRequest], response: QueryResponse
    ) -> None:
        """Fleet-level per-dataset accounting for every settled
        response — the series the SLO engine's error-rate and latency
        objectives are evaluated over."""
        try:
            dataset = request.dataset if request is not None else "unknown"
            self._fleet_requests.inc(dataset=dataset)
            if response.error_type:
                self._fleet_failures.inc(
                    dataset=dataset, type=response.error_type
                )
            if response.elapsed:
                self._fleet_latency.observe(response.elapsed, dataset=dataset)
        except Exception:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    # registry view
    # ------------------------------------------------------------------
    def datasets(self) -> list[str]:
        """Dataset names the cluster serves, sorted."""
        return self.router.datasets()

    def warmup(
        self, names: Optional[Sequence[str]] = None, *, timeout: float = 300.0
    ) -> dict[str, float]:
        """Build every shard's engines from disk now.

        Returns ``{dataset: build_seconds}``, reporting each dataset's
        *slowest* replica — the one that gates fleet readiness.
        ``timeout`` bounds the whole fleet warmup: a worker alive but
        stuck loading (hung filesystem read) must surface as an error,
        not block startup forever — the same deadline discipline as
        :meth:`WorkerPool.warmup`.
        """
        wanted = set(names) if names is not None else None
        futures: dict[int, Future] = {}
        for worker_id, assigned in self.router.assignments().items():
            targets = (
                list(assigned)
                if wanted is None
                else [name for name in assigned if name in wanted]
            )
            if not targets:
                continue
            futures[worker_id] = self.pool.submit(worker_id, "warmup", targets)
        timings: dict[str, float] = {}
        deadline = time.monotonic() + timeout
        for future in futures.values():
            payload = future.result(
                timeout=max(deadline - time.monotonic(), 0.0)
            )
            error = control_error(payload)
            if error is not None:
                # e.g. a SnapshotError warming from a corrupt file —
                # re-raised here with its original type where possible.
                raise error
            for name, seconds in payload.items():
                timings[name] = max(timings.get(name, 0.0), seconds)
        return timings

    # ------------------------------------------------------------------
    # live mutations
    # ------------------------------------------------------------------
    def apply(
        self, dataset: str, mutations: Sequence, *, timeout: float = 60.0
    ) -> dict:
        """Apply a mutation batch on **every replica** of ``dataset``.

        The batch is validated once supervisor-side, then broadcast
        (under a fleet-wide mutation lock, so concurrent callers reach
        every replica in the same order) as ``mutate`` messages; each
        replica's private ``QueryService`` commits a new epoch and
        bumps its version-keyed cache.  No worker restarts: the commit
        is an in-process overlay.  Exception semantics like
        :meth:`warmup` — a replica that fails the batch raises here
        (``MutationError`` for bad batches, ``WorkerCrashedError`` for
        a crash; the survivors stay consistent because a bad batch
        rolls back atomically on every replica).

        Returns ``{"dataset", "version", "applied", "new_nodes",
        "compacted", "workers": {worker_id: version}, "drift"}`` —
        ``drift`` is True if replica versions disagree (observable via
        :meth:`health` too), which after a crash-restart means the
        replica reloaded its snapshot and missed earlier commits.

        Caution on timeouts: worker queues are serial, so a replica
        busy with a long search can push the collection past
        ``timeout``.  That raises a structured
        :class:`~repro.errors.ClusterError`, but the mutate message is
        *already enqueued* and commits when the worker drains — a blind
        retry would double-apply the batch.  Check
        :meth:`dataset_versions` first.

        With ``wal_dir`` set, the batch is appended to the dataset's
        durable log **before** the broadcast (write-ahead: the log is
        the recovery truth, so a crash mid-broadcast leaves replicas
        *behind* the log — recoverable by restart replay — never ahead
        of it), and the record's sequence number rides on the message
        so a replica whose startup replay already covered it
        acknowledges idempotently.  A batch every replica rejects rolls
        the record back; a timeout or crash keeps it, since the batch
        is still in flight.
        """
        from repro.live.mutations import coerce_mutations, mutation_to_dict

        from contextlib import ExitStack

        wire = [mutation_to_dict(m) for m in coerce_mutations(mutations)]
        replicas = self.router.replicas_for(dataset)
        log = self._wals.get(dataset)
        with ExitStack() as stack:
            stack.enter_context(self._mutate_locks[dataset])
            payload = {"dataset": dataset, "mutations": wire}
            seq: Optional[int] = None
            if log is not None and wire:
                # Empty batches are version no-ops on every replica
                # (commit() early-returns); journaling one would leave
                # a record that bumps nothing and desynchronize WAL
                # sequences from replica versions forever.
                seq = log.append(wire)
                payload["seq"] = seq
            futures = {
                worker_id: self.pool.submit(worker_id, "mutate", payload)
                for worker_id in replicas
            }
            if log is None:
                # PR-4 semantics: the lock only orders enqueueing; the
                # round-trip itself runs unserialized.
                stack.close()
                results = self._collect(
                    futures, "mutate", timeout=timeout, strict=True
                )
            else:
                # With a WAL the lock is held through collection too:
                # rolling a rejected record back is only sound while it
                # is still the log's tail.
                try:
                    results = self._collect(
                        futures, "mutate", timeout=timeout, strict=True
                    )
                except MutationError:
                    # A rejected batch rolls back atomically on every
                    # replica *of the same state*, so the record should
                    # not survive to be replayed at the next restart —
                    # but a drifted replica (e.g. one whose non-strict
                    # startup replay stopped early) can reject a batch
                    # its healthy siblings committed.  Reusing the
                    # sequence number would then make the siblings skip
                    # the *next* batch as a duplicate, so roll back
                    # only when no replica is known to have committed.
                    if self._no_replica_committed(
                        futures, timeout=min(timeout, 10.0)
                    ):
                        log.rollback_last()
                    raise
        versions = {
            worker_id: result["version"] for worker_id, result in results.items()
        }
        first = next(
            (r for r in results.values() if not r.get("skipped")),
            results[replicas[0]],
        )
        outcome = {
            "dataset": dataset,
            "version": max(versions.values()),
            "applied": first["applied"],
            "new_nodes": first["new_nodes"],
            "compacted": any(result["compacted"] for result in results.values()),
            "workers": {str(w): v for w, v in sorted(versions.items())},
            "drift": len(set(versions.values())) > 1,
        }
        if seq is not None:
            outcome["wal_seq"] = seq
        self.event_log.emit(
            "mutation_commit",
            f"dataset {dataset!r} committed {outcome['applied']} mutation(s) "
            f"at version {outcome['version']}",
            dataset=dataset,
            source="supervisor",
            version=outcome["version"],
            applied=outcome["applied"],
            wal_seq=seq,
        )
        if outcome["drift"]:
            self.event_log.emit(
                "version_drift",
                f"replica versions for dataset {dataset!r} disagree after "
                f"commit: {outcome['workers']} — a replica likely "
                f"crash-restarted from an older snapshot and needs a reload",
                severity="warning",
                dataset=dataset,
                source="supervisor",
                workers=outcome["workers"],
            )
        return outcome

    def _no_replica_committed(
        self, futures: Mapping[int, Future], *, timeout: float
    ) -> bool:
        """True iff every replica's mutate outcome resolved to an error
        payload — the precondition for rolling a WAL record back.  An
        outcome that cannot be confirmed (timeout, crash) counts as a
        possible commit: keeping a rejected record merely degrades to a
        warned stop at the next replay, while rolling back a committed
        one would silently desynchronize sequence numbers."""
        deadline = time.monotonic() + timeout
        for future in futures.values():
            try:
                result = future.result(
                    timeout=max(deadline - time.monotonic(), 0.0)
                )
            except Exception:
                return False
            if not isinstance(result, dict) or control_error(result) is None:
                return False
        return True

    def reload(
        self,
        dataset: str,
        snapshot_path,
        *,
        force: bool = False,
        timeout: float = 300.0,
    ) -> dict:
        """Hot-reload ``dataset`` from a snapshot file on every replica.

        Replicas already holding the file's content digest no-op
        (satellite of the versioned-snapshot work); the rest re-register
        and rebuild from disk — no process restart.  Returns
        ``{"dataset", "reloaded": {worker_id: bool}, "version"}``.

        With ``wal_dir`` set, the supervisor's log is **reset** to the
        replicas' post-reload version: the old records applied on top
        of the old lineage and replaying them onto the new file would
        rebuild the wrong state — and without the realignment the next
        ``apply``'s sequence number would trail the bumped replica
        versions, making every replica skip it as already-replayed.
        (A replica that crash-restarts *after* a reload still warms
        from its original spec snapshot and cannot replay the reset
        log past the reload point — the same observable-drift-then-
        reload story as before; restart the fleet on the new snapshot
        to make reloads crash-durable.)
        """
        replicas = self.router.replicas_for(dataset)
        payload = {"dataset": dataset, "path": str(snapshot_path), "force": force}
        # The dataset's mutation lock is held for the whole reload:
        # an apply interleaving between the replica swap and the log
        # reset would journal an old-lineage batch into the new log.
        with self._mutate_locks[dataset]:
            futures = {
                worker_id: self.pool.submit(worker_id, "reload", payload)
                for worker_id in replicas
            }
            results = self._collect(
                futures, "reload", timeout=timeout, strict=True
            )
            version = max(
                (int(result.get("version") or 0) for result in results.values()),
                default=0,
            )
            log = self._wals.get(dataset)
            if log is not None and any(
                result["reloaded"] for result in results.values()
            ):
                # A fleet-wide digest no-op changed nothing — the log
                # stays replayable.  Any actual reload starts a new
                # lineage.
                log.reset(start_seq=version)
        reloaded = {
            str(worker_id): bool(result["reloaded"])
            for worker_id, result in sorted(results.items())
        }
        if any(reloaded.values()):
            self.event_log.emit(
                "snapshot_reload",
                f"dataset {dataset!r} hot-reloaded from "
                f"{snapshot_path} on replicas "
                f"{sorted(w for w, did in reloaded.items() if did)} "
                f"(version {version})",
                dataset=dataset,
                source="supervisor",
                version=version,
                reloaded=reloaded,
            )
        return {
            "dataset": dataset,
            "reloaded": reloaded,
            "version": version,
        }

    def dataset_versions(self, *, timeout: float = 10.0) -> dict[str, dict[str, int]]:
        """Per-dataset epoch versions as seen by each replica:
        ``{dataset: {worker_id: version}}`` — the drift observability
        ``/healthz`` and ``/metrics`` surface.  Workers that fail to
        answer in time are omitted rather than blocking health checks.
        """
        results = self._broadcast(
            self.pool.worker_ids(), "versions", None, timeout=timeout, strict=False
        )
        collected: dict[str, dict[str, int]] = {}
        for worker_id, payload in results.items():
            for name, version in payload.get("versions", {}).items():
                collected.setdefault(name, {})[str(worker_id)] = int(version)
        return collected

    def _broadcast(
        self,
        worker_ids: Sequence[int],
        kind: str,
        payload: Optional[dict],
        *,
        timeout: float,
        strict: bool = True,
    ) -> dict[int, dict]:
        """Submit one control message to each worker; collect payloads.

        ``strict`` raises on any failure (submit error, timeout, or a
        worker-side error payload, rebuilt via :func:`control_error`);
        non-strict skips failed workers — the observability calls'
        contract.  A strict timeout raises a structured
        :class:`~repro.errors.ClusterError` that says the message is
        *still queued* — worker queues are serial, so it may yet be
        processed; callers must check :meth:`dataset_versions` before
        retrying a mutation or they risk double-applying it.
        (Mutation-ordering calls — :meth:`apply`, :meth:`reload` —
        submit under their dataset's mutation lock themselves.)
        """
        args = () if payload is None else (payload,)
        futures = {}
        for worker_id in worker_ids:
            try:
                futures[worker_id] = self.pool.submit(worker_id, kind, *args)
            except Exception:
                if strict:
                    raise
        return self._collect(futures, kind, timeout=timeout, strict=strict)

    def _collect(
        self,
        futures: Mapping[int, Future],
        kind: str,
        *,
        timeout: float,
        strict: bool,
    ) -> dict[int, dict]:
        """Await a broadcast's futures; see :meth:`_broadcast` for the
        strict/non-strict and timeout semantics."""
        deadline = time.monotonic() + timeout
        results: dict[int, dict] = {}
        for worker_id, future in futures.items():
            try:
                result = future.result(
                    timeout=max(deadline - time.monotonic(), 0.0)
                )
            except FutureTimeoutError:
                if strict:
                    raise ClusterError(
                        f"{kind} broadcast to worker {worker_id} timed out "
                        f"after {timeout}s; the message is still queued and "
                        f"may yet be processed — check dataset_versions() "
                        f"before retrying"
                    ) from None
                continue
            except Exception:
                if strict:
                    raise
                continue
            error = control_error(result)
            if error is not None:
                if strict:
                    raise error
                continue
            results[worker_id] = result
        return results

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def search(
        self,
        dataset: Union[str, QueryRequest],
        query: Optional[Union[str, Sequence[str]]] = None,
        *,
        algorithm: str = "bidirectional",
        k: Optional[int] = None,
        params: Optional[SearchParams] = None,
        timeout: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResponse:
        """Execute one query on its shard (same signature and dual
        calling convention as :meth:`QueryService.search`)."""
        request = normalize_search_args(
            dataset,
            query,
            algorithm=algorithm,
            k=k,
            params=params,
            timeout=timeout,
            use_cache=use_cache,
        )
        # Anchor the deadline *before* dispatch — crash-drain/respawn
        # waits inside the pool count against the caller's budget, the
        # same semantics search_many applies from its submission
        # instant.
        deadline = (
            time.monotonic() + request.timeout
            if request.timeout is not None
            else None
        )
        dispatched = self._dispatch(request)
        if isinstance(dispatched, QueryResponse):
            self._record_fleet_outcome(request, dispatched)
            return dispatched
        return self._await(request, dispatched, deadline)

    def search_many(
        self,
        requests: Sequence[Union[QueryRequest, tuple]],
        *,
        timeout: Optional[float] = None,
    ) -> list[QueryResponse]:
        """Execute a batch across the fleet; responses in request order.

        The whole batch is dispatched before any response is awaited,
        so shards run concurrently — this is the call whose CPU time
        finally spreads over cores.  Per-item failures (malformed item,
        unknown dataset, absent keyword, crash, deadline) come back as
        structured error responses in their slots, never exceptions.
        """
        prepared: list[Union[QueryRequest, QueryResponse]] = []
        for raw in requests:
            try:
                prepared.append(coerce_request(raw, default_timeout=timeout))
            except Exception as exc:
                prepared.append(self._malformed_response(exc))
        submitted = time.monotonic()
        dispatched = [
            self._dispatch(item) if isinstance(item, QueryRequest) else item
            for item in prepared
        ]
        responses: list[QueryResponse] = []
        for item, outcome in zip(prepared, dispatched):
            if isinstance(outcome, QueryResponse):
                self._record_fleet_outcome(
                    item if isinstance(item, QueryRequest) else None, outcome
                )
                responses.append(outcome)
                continue
            deadline = (
                submitted + item.timeout if item.timeout is not None else None
            )
            responses.append(self._await(item, outcome, deadline))
        return responses

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def metrics(self, *, include_samples: bool = False) -> dict:
        """One cluster-wide metrics dict.

        Worker exports (latency reservoirs included, so percentiles are
        exact) are merged with the supervisor's own counters; a
        ``cluster`` section adds fleet state — per-worker liveness,
        restart counts and shard assignments.

        Known divergence from the thread tier: a deadline-missed
        request is recorded twice — once here as a supervisor-side
        ``DeadlineExceededError`` and once by the worker when the
        abandoned search eventually completes.  The thread tier's
        exactly-once claim needs shared memory; across processes the
        honest choice is counting both sides rather than hiding either.
        """
        per_worker = self.pool.metrics()
        parts = list(per_worker.values())
        local = self._local_metrics.export(include_samples=True)
        local["registry"] = self.registry.export()
        if self._wals:
            # Workers replay the log read-only and let go of it; the
            # supervisor's writable tip is the durable truth the merged
            # datasets section should carry.
            local["datasets"] = {
                "wal_seq": {
                    name: log.last_seq
                    for name, log in sorted(self._wals.items())
                }
            }
        parts.append(local)
        merged = merge_metrics(parts)
        if not include_samples:
            for entry in merged.get("algorithms", {}).values():
                entry.pop("latency_samples", None)
        alive = self.pool.alive()
        merged["cluster"] = {
            "workers": self.router.num_workers,
            "alive": sum(alive.values()),
            "restarts": {str(w): n for w, n in sorted(self.pool.restarts().items())},
            "assignments": {
                str(w): list(names)
                for w, names in sorted(self.router.assignments().items())
            },
            "per_worker": {
                str(w): {
                    "requests_total": metrics.get("requests_total", 0),
                    "errors_total": metrics.get("errors_total", 0),
                }
                for w, metrics in sorted(per_worker.items())
            },
        }
        if self._wals:
            merged["cluster"]["wal_seq"] = {
                name: log.last_seq for name, log in sorted(self._wals.items())
            }
        return merged

    def cancel(self, request_id: str) -> bool:
        """Cancel an in-flight request by its ``QueryRequest.request_id``.

        Routed through the pool's cancel ring: the shard worker stops
        the search at its next cooperative check (or skips it entirely
        if still queued) and the waiter receives the structured
        cancelled/partial response.  Returns True if a live request
        with that id was found.  Always False with
        ``cooperative_cancellation=False`` — the workers discarded
        their cancel rings, so claiming success would be a lie.
        """
        if not self._cooperative:
            return False
        with self._active_lock:
            job_id = self._active.get(request_id)
        if job_id is None:
            return False
        return self.pool.cancel(job_id)

    def reset_metrics(self) -> None:
        self._local_metrics.reset()

    def health(
        self, *, include_versions: bool = True, versions_timeout: float = 2.0
    ) -> dict:
        """Fleet liveness summary for a health endpoint.

        ``versions`` maps each dataset to its per-replica epoch
        versions and ``version_drift`` names datasets whose replicas
        disagree — the observable signal that a replica missed a
        mutation broadcast (e.g. it crash-restarted from an older
        snapshot) and needs a :meth:`reload`.  A replica too busy to
        answer within ``versions_timeout`` (worker queues are serial,
        so a long search delays control messages) reports ``None`` and
        puts its datasets in ``version_unknown`` rather than silently
        vanishing — a wedged replica must never make the fleet look
        *more* consistent.  ``include_versions=False`` restores the
        pure supervisor-local (never-blocking) probe.
        """
        alive = self.pool.alive()
        payload = {
            "workers": self.router.num_workers,
            "alive": sum(alive.values()),
            "restarts": sum(self.pool.restarts().values()),
            "datasets": self.datasets(),
        }
        if self._wals:
            # The durable tip per dataset: a replica whose version
            # matches is fully recovered; one behind it (and behind its
            # siblings) shows up in version_drift below.
            payload["wal_seq"] = {
                name: log.last_seq for name, log in sorted(self._wals.items())
            }
        if include_versions:
            versions = self.dataset_versions(timeout=versions_timeout)
            for name in self.datasets():
                by_worker = versions.setdefault(name, {})
                for worker_id in self.router.replicas_for(name):
                    by_worker.setdefault(str(worker_id), None)
            payload["versions"] = versions
            payload["version_drift"] = sorted(
                name
                for name, by_worker in versions.items()
                if len({v for v in by_worker.values() if v is not None}) > 1
            )
            payload["version_unknown"] = sorted(
                name
                for name, by_worker in versions.items()
                if any(v is None for v in by_worker.values())
            )
        return payload

    def wal_seqs(self) -> dict[str, int]:
        """``{dataset: last durable WAL sequence}`` (empty without
        ``wal_dir``)."""
        return {name: log.last_seq for name, log in sorted(self._wals.items())}

    def close(self, timeout: float = 10.0) -> None:
        """Drain and stop the worker fleet (idempotent); durable logs
        are synced and closed last."""
        self._slo_stop.set()
        if self._slo_thread is not None:
            self._slo_thread.join(timeout=1.0)
            self._slo_thread = None
        if self.profiler is not None:
            self.profiler.stop()
        self.pool.close(timeout)
        for log in self._wals.values():
            log.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(
        self, request: QueryRequest
    ) -> Union[Future, QueryResponse]:
        """Route and ship one request; supervisor-side failures (bad
        query, unknown dataset) come back as an immediate response."""
        start = time.perf_counter()
        trace_id = request.trace_id
        route_span = None
        if self.tracer is not None:
            if trace_id is None:
                trace_id = new_trace_id()
            route_span = self.tracer.start_span(
                "route", trace_id=trace_id, parent_id=request.parent_span_id
            )
        try:
            keywords = parse_query(request.query)
            worker_id = self.router.route(
                request.dataset, (keywords, request.algorithm)
            )
        except Exception as exc:
            self._local_metrics.record_error(request.algorithm, type(exc).__name__)
            if route_span is not None:
                route_span.end(status="error")
            return QueryResponse(
                request=request,
                error=str(exc),
                error_type=type(exc).__name__,
                elapsed=time.perf_counter() - start,
                exception=exc,
                request_id=request.request_id,
                trace_id=trace_id,
            )
        wire_request = request_to_dict(request)
        if route_span is not None:
            route_span.set_attribute("dataset", request.dataset)
            route_span.set_attribute("worker", worker_id)
            # The worker's root span hangs off the route span: the wire
            # copy carries the context, the caller's object stays as
            # submitted.
            wire_request["trace_id"] = trace_id
            wire_request["parent_span_id"] = route_span.span_id
        if not self._cooperative:
            # Control arm: the supervisor owns the deadline; the worker
            # runs every search to completion (pre-cancellation
            # behaviour).  Cooperative mode ships the timeout so the
            # worker arms its own token and frees the shard on expiry.
            wire_request["timeout"] = None
        try:
            future = self.pool.request(worker_id, wire_request)
        except PoolClosedError:
            if route_span is not None:
                route_span.end(status="error")
            raise  # caller bug, like searching a closed QueryService
        except Exception as exc:
            # e.g. WorkerCrashedError with restarts disabled: the shard
            # is gone, which is an answer, not an exception.
            self._local_metrics.record_error(request.algorithm, type(exc).__name__)
            if route_span is not None:
                route_span.end(status="error")
            return QueryResponse(
                request=request,
                error=str(exc),
                error_type=type(exc).__name__,
                elapsed=time.perf_counter() - start,
                exception=exc,
                request_id=request.request_id,
                trace_id=trace_id,
            )
        if route_span is not None:
            route_span.end()
            future.trace_id = trace_id  # type: ignore[attr-defined]
            future.route_span = route_span  # type: ignore[attr-defined]
        if self._cooperative and request.request_id is not None:
            with self._active_lock:
                self._active[request.request_id] = future.job_id  # type: ignore[attr-defined]
        return future

    def _await(
        self,
        request: QueryRequest,
        future: Future,
        deadline: Optional[float],
    ) -> QueryResponse:
        try:
            response = self._await_inner(request, future, deadline)
            self._record_fleet_outcome(request, response)
            return response
        finally:
            if request.request_id is not None:
                job_id = getattr(future, "job_id", None)
                with self._active_lock:
                    if self._active.get(request.request_id) == job_id:
                        del self._active[request.request_id]

    def _await_inner(
        self,
        request: QueryRequest,
        future: Future,
        deadline: Optional[float],
    ) -> QueryResponse:
        payload: Optional[dict] = None
        try:
            if deadline is None:
                payload = future.result()
            else:
                payload = future.result(
                    timeout=max(deadline - time.monotonic(), 0.0)
                )
        except FutureTimeoutError:
            payload = None
        if payload is None:
            # Deadline passed without a response.  Cooperative mode:
            # kill the request through the cancel ring — a search in
            # flight stops at its next check, a request still *queued*
            # never starts — then, for partial-results requests, give
            # the worker's answer a grace period to arrive.  (In the
            # common case the worker's own deadline token already
            # fired and its structured response is moments away.)
            cancelled = False
            job_id = getattr(future, "job_id", None)
            if self._cooperative and job_id is not None:
                cancelled = self.pool.cancel(job_id)
            if self._cooperative and request.allow_partial:
                try:
                    payload = future.result(timeout=self._cancel_grace)
                except FutureTimeoutError:  # pragma: no cover - stuck shard
                    payload = None
            if payload is None:
                self._local_metrics.record_error(
                    request.algorithm, DeadlineExceededError.__name__
                )
                suffix = (
                    "the shard worker is stopping it cooperatively"
                    if cancelled or self._cooperative
                    else "the shard worker keeps running it in the background"
                )
                return self._absorb_trace(
                    request,
                    future,
                    QueryResponse(
                        request=request,
                        error=f"deadline of {request.timeout}s exceeded "
                        f"({suffix})",
                        error_type=DeadlineExceededError.__name__,
                        elapsed=request.timeout or 0.0,
                    ),
                )
        response = response_from_dict(payload)
        if (
            deadline is not None
            and response.error_type == SearchCancelledError.__name__
            and time.monotonic() >= deadline
        ):
            # The ring cancel was *caused* by the deadline; surface the
            # cause, not the mechanism.
            response.error_type = DeadlineExceededError.__name__
            response.error = (
                f"deadline of {request.timeout}s exceeded ({response.error})"
            )
        # Hand the caller back the exact object it submitted (the wire
        # copy lost nothing, but identity is friendlier than equality).
        response.request = request
        if response.error_type == WorkerCrashedError.__name__:
            # Worker-side errors are counted by the worker; a crash is
            # the one failure only the supervisor can account for.
            self._local_metrics.record_error(
                request.algorithm, WorkerCrashedError.__name__
            )
            response.exception = WorkerCrashedError(response.error)
        return self._absorb_trace(request, future, response)

    def _absorb_trace(
        self, request: QueryRequest, future: Future, response: QueryResponse
    ) -> QueryResponse:
        """Re-home the worker's spans in the supervisor tracer, stamp
        trace/request ids on the response, and feed the slow-query log.

        Also synthesizes the ``queue_wait`` span — the gap between the
        route span ending (request enqueued) and the worker's root span
        starting — which neither process can time alone.  The response
        hands its span list over to the tracer rather than carrying it:
        supervisor callers read trees through :meth:`trace`.
        """
        if response.request_id is None:
            response.request_id = request.request_id
        result = response.result
        if (
            self.explain_store is not None
            and result is not None
            and result.explain is not None
            and request.request_id is not None
        ):
            # Harvest before any early return: explain retention must
            # not depend on tracing being enabled.
            self.explain_store.put(request.request_id, result.explain)
        trace_id = getattr(future, "trace_id", None)
        if self.tracer is None or trace_id is None:
            response.spans = None
            return response
        if response.trace_id is None:
            response.trace_id = trace_id
        route_span = getattr(future, "route_span", None)
        spans = response.spans
        if spans:
            self.tracer.ingest(span for span in spans if isinstance(span, dict))
            if route_span is not None and route_span.duration is not None:
                route_end = route_span.started_at + route_span.duration
                worker_start = min(
                    (
                        span["start"]
                        for span in spans
                        if isinstance(span, dict)
                        and span.get("parent_id") == route_span.span_id
                        and isinstance(span.get("start"), (int, float))
                    ),
                    default=None,
                )
                if worker_start is not None:
                    self.tracer.ingest(
                        [
                            {
                                "name": "queue_wait",
                                "trace_id": trace_id,
                                "span_id": new_span_id(),
                                "parent_id": route_span.span_id,
                                "start": route_end,
                                "duration": max(0.0, worker_start - route_end),
                                "status": "ok",
                                "attributes": {},
                            }
                        ]
                    )
        response.spans = None
        if (
            self.slow_log.threshold is not None
            and response.elapsed >= self.slow_log.threshold
        ):
            self.slow_log.record(
                elapsed=response.elapsed,
                trace_id=trace_id,
                request={
                    "dataset": request.dataset,
                    "query": (
                        request.query
                        if isinstance(request.query, str)
                        else list(request.query)
                    ),
                    "algorithm": request.algorithm,
                    "request_id": request.request_id,
                },
                error_type=response.error_type,
                span_tree=self.tracer.trace(trace_id),
                extra={
                    "fingerprint": request_fingerprint(request),
                    "explain_available": bool(
                        self.explain_store is not None
                        and request.request_id is not None
                        and self.explain_store.get(request.request_id)
                        is not None
                    ),
                },
            )
        return response

    def trace(self, trace_id: str) -> Optional[dict]:
        """The reconstructed cross-process span tree for ``trace_id``
        (``None`` when unknown, evicted, or tracing is off)."""
        if self.tracer is None:
            return None
        return self.tracer.trace(trace_id)

    def slow_queries(self) -> list[dict]:
        """Supervisor-side slow-query entries, newest first."""
        return self.slow_log.entries()

    def explain(self, request_id: str) -> Optional[dict]:
        """The retained explain report for ``request_id``, or None.

        Reports are harvested from worker responses as they settle, so
        they survive worker restarts for as long as the bounded store
        keeps them.
        """
        if self.explain_store is None:
            return None
        return self.explain_store.get(request_id)

    def query_stats(self, *, timeout: float = 5.0) -> dict:
        """The fleet-wide workload-analytics export.

        Broadcasts a sketch pull to every live worker and folds the
        replies with
        :func:`repro.telemetry.accounting.merge_sketch_exports` — the
        mergeable-summaries combine, so per-fingerprint counts stay
        over-estimates with known error even though each replica only
        saw its own slice of the workload.  Non-strict: a busy or
        crashed replica is simply absent from this pull.
        """
        results = self._broadcast(
            self.pool.worker_ids(), "queries", None, timeout=timeout,
            strict=False,
        )
        exports = [
            payload["queries"]
            for payload in results.values()
            if isinstance(payload.get("queries"), dict)
        ]
        return merge_sketch_exports(exports)

    # ------------------------------------------------------------------
    # operational intelligence
    # ------------------------------------------------------------------
    def _pull_worker_events(self, *, timeout: float = 2.0) -> None:
        """Merge every worker's event log into the supervisor's.

        Each worker keeps its own monotonically-sequenced log; the
        supervisor pulls incrementally with a per-worker cursor and
        re-sequences into its own stream (``ingest`` preserves the
        worker-side seq as ``remote_seq``).  A worker whose reported
        ``last_seq`` went *backwards* restarted with a fresh log — the
        cursor resets and its events are re-pulled from zero.  Serial
        worker queues mean a busy replica delays its answer; non-strict
        collection skips it until the next pull.
        """
        with self._events_lock:
            futures: dict[int, Future] = {}
            for worker_id in self.pool.worker_ids():
                since = self._event_cursors.get(worker_id, 0)
                try:
                    futures[worker_id] = self.pool.submit(
                        worker_id, "events", {"since": since}
                    )
                except Exception:
                    continue
            results = self._collect(
                futures, "events", timeout=timeout, strict=False
            )
            for worker_id, payload in results.items():
                last = int(payload.get("last_seq") or 0)
                if last < self._event_cursors.get(worker_id, 0):
                    try:
                        payload = self.pool.submit(
                            worker_id, "events", {"since": 0}
                        ).result(timeout=timeout)
                    except Exception:
                        continue
                    if (
                        not isinstance(payload, dict)
                        or control_error(payload) is not None
                    ):
                        continue
                    last = int(payload.get("last_seq") or 0)
                for event in payload.get("events") or []:
                    if isinstance(event, dict):
                        self.event_log.ingest(
                            event, source=f"worker-{worker_id}"
                        )
                self._event_cursors[worker_id] = last

    def events(
        self,
        since: int = 0,
        *,
        limit: Optional[int] = None,
        pull: bool = True,
        timeout: float = 2.0,
    ) -> dict:
        """The merged fleet event stream after ``since`` (a supervisor
        sequence number): ``{"events": [...], "last_seq": N}``.  Worker
        logs are pulled first unless ``pull=False``."""
        if pull:
            self._pull_worker_events(timeout=timeout)
        return {
            "events": self.event_log.events(since=since, limit=limit),
            "last_seq": self.event_log.last_seq,
        }

    def slo_status(self) -> list[dict]:
        """Evaluate every objective now; ``[]`` when SLOs are off."""
        if self.slo is None:
            return []
        return self.slo.evaluate()

    def _profile_snapshots(self, *, timeout: float = 5.0) -> dict[str, dict]:
        """Cumulative profiler snapshots, keyed by process."""
        snaps: dict[str, dict] = {}
        if self.profiler is not None:
            snaps["supervisor"] = self.profiler.snapshot()
        results = self._broadcast(
            self.pool.worker_ids(), "profile", None, timeout=timeout,
            strict=False,
        )
        for worker_id, payload in results.items():
            snap = payload.get("profile")
            if isinstance(snap, dict):
                snaps[f"worker-{worker_id}"] = snap
        return snaps

    def profile_snapshot(self) -> Optional[dict]:
        """The merged *cumulative* fleet profile (since process start);
        ``None`` when profiling is off everywhere."""
        snaps = self._profile_snapshots()
        if not snaps:
            return None
        return merge_profiles(snaps.values())

    def profile(
        self, seconds: float = 2.0, *, timeout: float = 5.0
    ) -> Optional[str]:
        """Profile the whole fleet for ``seconds`` and render the
        merged window as collapsed stacks (``stack count`` lines,
        hottest first) — ``None`` when profiling is disabled.

        Implemented as two cumulative snapshots and a diff, so the
        samplers never pause and a worker busy serving is *exactly*
        what shows up in the window.  A worker that restarts inside
        the window contributes its whole new lifetime (its "before"
        snapshot died with it) — close enough for a hot-stack view.
        """
        before = self._profile_snapshots(timeout=timeout)
        time.sleep(max(0.0, seconds))
        after = self._profile_snapshots(timeout=timeout)
        if not after:
            return None
        windows = []
        for key, snap in after.items():
            prior = before.get(key)
            windows.append(
                diff_profiles(prior, snap) if prior is not None else snap
            )
        merged = merge_profiles(windows)
        return render_collapsed(merged)

    def dashboard_data(self) -> dict:
        """Everything :func:`~repro.telemetry.dashboard.render_dashboard`
        needs, in one pass: health, merged metrics, SLO status, the
        merged event stream, slow queries and the cumulative profile."""
        health = self.health()
        merged = self.metrics()
        slo = self.slo.evaluate() if self.slo is not None else []
        self._pull_worker_events()
        versions = {
            name: ", ".join(
                f"w{worker}={'?' if version is None else version}"
                for worker, version in sorted(by_worker.items())
            )
            for name, by_worker in health.get("versions", {}).items()
        }
        return {
            "service": type(self).__name__,
            "generated_at": time.time(),
            "health": {
                "status": (
                    "ok" if health["alive"] == health["workers"] else "degraded"
                ),
                "workers": health["workers"],
                "workers_alive": health["alive"],
                "restarts": {
                    str(w): n for w, n in sorted(self.pool.restarts().items())
                },
                "versions": versions,
                "version_drift": health.get("version_drift", []),
                "wal_seq": health.get("wal_seq", {}),
            },
            "metrics": {
                "requests_total": merged.get("requests_total", 0),
                "errors_total": merged.get("errors_total", 0),
                "cache_hit_rate": merged.get("cache_hit_rate"),
                "algorithms": algorithm_summary(merged.get("algorithms", {})),
            },
            "slo": slo,
            "events": self.event_log.events(limit=50),
            "slow_queries": self.slow_queries()[:10],
            "queries": self.query_stats(),
            "profile": self.profile_snapshot(),
        }

    def _malformed_response(self, exc: Exception) -> QueryResponse:
        self._local_metrics.record_error("invalid-request", type(exc).__name__)
        return QueryResponse(
            request=None,
            error=str(exc),
            error_type=type(exc).__name__,
            exception=exc,
        )
