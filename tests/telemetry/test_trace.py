"""Unit tests for the tracing primitives (span, store, tree rendering)."""

import pytest

from repro.telemetry.trace import (
    Span,
    TraceStore,
    Tracer,
    build_span_tree,
    current_span,
    new_span_id,
    new_trace_id,
    render_span_tree,
    use_span,
)


class TestIds:
    def test_trace_ids_are_32_hex_and_unique(self):
        a, b = new_trace_id(), new_trace_id()
        assert len(a) == 32 and len(b) == 32
        int(a, 16)  # must parse as hex
        assert a != b

    def test_span_ids_are_16_hex_and_unique(self):
        a, b = new_span_id(), new_span_id()
        assert len(a) == 16 and len(b) == 16
        int(a, 16)
        assert a != b


class TestSpan:
    def test_to_dict_shape(self):
        span = Span("work", trace_id="t" * 32, parent_id="p" * 16)
        span.set_attribute("pops", 7)
        span.end()
        data = span.to_dict()
        assert set(data) == {
            "name",
            "trace_id",
            "span_id",
            "parent_id",
            "start",
            "duration",
            "status",
            "attributes",
        }
        assert data["name"] == "work"
        assert data["parent_id"] == "p" * 16
        assert data["status"] == "ok"
        assert data["attributes"] == {"pops": 7}
        assert data["duration"] >= 0.0

    def test_end_is_idempotent_first_call_wins(self):
        span = Span("once", trace_id=new_trace_id())
        span.end(duration=1.5)
        span.end(status="error", duration=99.0)
        assert span.duration == 1.5
        assert span.status == "ok"

    def test_end_duration_override_and_status(self):
        span = Span("synth", trace_id=new_trace_id())
        span.end(status="error", duration=0.25)
        assert span.ended
        assert span.duration == 0.25
        assert span.status == "error"

    def test_end_delivers_to_sink_exactly_once(self):
        seen = []
        span = Span("s", trace_id=new_trace_id(), sink=seen.append)
        span.end()
        span.end()
        assert len(seen) == 1
        assert seen[0]["span_id"] == span.span_id

    def test_child_shares_trace_and_sink_parents_correctly(self):
        seen = []
        parent = Span("parent", trace_id=new_trace_id(), sink=seen.append)
        child = parent.child("child")
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        child.end()
        assert seen and seen[0]["name"] == "child"

    def test_set_attributes_merges(self):
        span = Span("s", trace_id=new_trace_id())
        span.set_attribute("a", 1)
        span.set_attributes({"b": 2, "a": 3})
        assert span.attributes == {"a": 3, "b": 2}


class TestAmbientSpan:
    def test_default_is_none(self):
        assert current_span() is None

    def test_use_span_sets_and_restores(self):
        span = Span("ambient", trace_id=new_trace_id())
        with use_span(span) as active:
            assert active is span
            assert current_span() is span
        assert current_span() is None

    def test_use_span_none_masks_outer(self):
        outer = Span("outer", trace_id=new_trace_id())
        with use_span(outer):
            with use_span(None):
                assert current_span() is None
            assert current_span() is outer

    def test_use_span_does_not_end_the_span(self):
        span = Span("still-open", trace_id=new_trace_id())
        with use_span(span):
            pass
        assert not span.ended


class TestTraceStore:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceStore(0)

    def test_add_and_get_round_trip(self):
        store = TraceStore()
        span = Span("s", trace_id="abc").end()
        store.add(span.to_dict())
        spans = store.get("abc")
        assert spans is not None and len(spans) == 1
        assert spans[0]["name"] == "s"
        assert store.get("missing") is None

    def test_duplicate_span_id_is_deduped(self):
        store = TraceStore()
        data = Span("s", trace_id="abc").end().to_dict()
        store.add(data)
        store.add(dict(data))
        assert len(store.get("abc")) == 1

    def test_spans_without_trace_id_are_ignored(self):
        store = TraceStore()
        store.add({"name": "x", "span_id": "y"})
        store.add({"name": "x", "span_id": "y", "trace_id": None})
        store.add({"name": "x", "span_id": "y", "trace_id": ""})
        assert len(store) == 0

    def test_lru_evicts_whole_traces(self):
        store = TraceStore(capacity=2)
        for trace_id in ("t1", "t2", "t3"):
            store.add(Span("s", trace_id=trace_id).end().to_dict())
        assert store.get("t1") is None
        assert store.get("t2") is not None
        assert store.get("t3") is not None

    def test_touching_a_trace_refreshes_its_lru_slot(self):
        store = TraceStore(capacity=2)
        store.add(Span("a", trace_id="t1").end().to_dict())
        store.add(Span("b", trace_id="t2").end().to_dict())
        # Adding to t1 again makes t2 the eviction candidate.
        store.add(Span("c", trace_id="t1").end().to_dict())
        store.add(Span("d", trace_id="t3").end().to_dict())
        assert store.get("t1") is not None
        assert store.get("t2") is None

    def test_ingest_filters_non_dicts(self):
        store = TraceStore()
        store.ingest(None)
        store.ingest(["junk", 42, Span("s", trace_id="t").end().to_dict()])
        assert len(store.get("t")) == 1

    def test_tree_returns_none_for_unknown_trace(self):
        assert TraceStore().tree("nope") is None


class TestTracer:
    def test_start_span_mints_trace_id_when_absent(self):
        tracer = Tracer()
        span = tracer.start_span("root")
        assert len(span.trace_id) == 32

    def test_finished_spans_land_in_the_store(self):
        tracer = Tracer()
        span = tracer.start_span("root")
        span.end()
        assert tracer.spans_for(span.trace_id)[0]["name"] == "root"
        assert span.trace_id in tracer.trace_ids()

    def test_span_contextmanager_sets_ambient_and_ends(self):
        tracer = Tracer()
        with tracer.span("cm") as span:
            assert current_span() is span
        assert span.ended
        assert span.status == "ok"
        assert current_span() is None

    def test_span_contextmanager_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("x")
        assert span.status == "error"
        stored = tracer.spans_for(span.trace_id)[0]
        assert stored["status"] == "error"

    def test_trace_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.child("leaf").end()
        tree = tracer.trace(root.trace_id)
        assert tree["span_count"] == 2
        assert tree["roots"][0]["name"] == "root"
        assert tree["roots"][0]["children"][0]["name"] == "leaf"


class TestBuildSpanTree:
    def _span(self, name, span_id, parent_id=None, start=0.0):
        return {
            "name": name,
            "trace_id": "t",
            "span_id": span_id,
            "parent_id": parent_id,
            "start": start,
            "duration": 0.001,
            "status": "ok",
            "attributes": {},
        }

    def test_orphans_become_roots(self):
        tree = build_span_tree(
            [
                self._span("root", "a"),
                self._span("orphan", "b", parent_id="gone"),
            ]
        )
        assert tree["span_count"] == 2
        assert [root["name"] for root in tree["roots"]] == ["root", "orphan"]

    def test_children_sorted_by_start(self):
        tree = build_span_tree(
            [
                self._span("root", "a", start=0.0),
                self._span("late", "c", parent_id="a", start=2.0),
                self._span("early", "b", parent_id="a", start=1.0),
            ]
        )
        names = [child["name"] for child in tree["roots"][0]["children"]]
        assert names == ["early", "late"]

    def test_empty_input(self):
        tree = build_span_tree([])
        assert tree == {"trace_id": None, "span_count": 0, "roots": []}


class TestRenderSpanTree:
    def test_renders_indentation_status_and_attrs(self):
        root = Span("root", trace_id="t")
        child = root.child("child")
        child.set_attributes({"pops": 12, "items": [1, 2, 3], "rate": 0.5})
        child.end(status="error", duration=0.002)
        root.end(duration=0.010)
        tree = build_span_tree([root.to_dict(), child.to_dict()])
        text = render_span_tree(tree)
        lines = text.splitlines()
        assert lines[0].startswith("root  10.000 ms")
        assert lines[1].startswith("  child  2.000 ms [error]")
        # Attributes sorted by key; lists summarized.
        assert "items=<3 items> pops=12 rate=0.5" in lines[1]
