"""Candidate-network enumeration over the schema graph."""

import pytest

from repro.relational.schema import ForeignKey, Schema, Table
from repro.sparse.candidate_networks import (
    CandidateNetwork,
    CNNode,
    enumerate_candidate_networks,
)

SIMPLE = Schema(
    tables=(
        Table("author", ("id", "name"), text_columns=("name",)),
        Table("paper", ("id", "title"), text_columns=("title",)),
        Table("writes", ("id", "author_id", "paper_id")),
    ),
    foreign_keys=(
        ForeignKey("writes", "author_id", "author"),
        ForeignKey("writes", "paper_id", "paper"),
    ),
)


class TestValidity:
    def test_single_node_total_cn(self):
        cn = CandidateNetwork(nodes=(CNNode("paper", frozenset({"x"})),), edges=())
        assert cn.is_valid(["x"])
        assert not cn.is_valid(["x", "y"])

    def test_free_leaf_invalid(self):
        fk = SIMPLE.foreign_keys[0]
        cn = CandidateNetwork(
            nodes=(CNNode("writes", frozenset({"x"})), CNNode("author", frozenset())),
            edges=((0, 1, fk),),
        )
        assert cn.is_total(["x"])
        assert not cn.is_minimal(["x"])

    def test_redundant_leaf_invalid(self):
        fk_a, fk_p = SIMPLE.foreign_keys
        cn = CandidateNetwork(
            nodes=(
                CNNode("author", frozenset({"x"})),
                CNNode("writes", frozenset()),
                CNNode("paper", frozenset({"x"})),
            ),
            edges=((1, 0, fk_a), (1, 2, fk_p)),
        )
        # Either keyword leaf could be dropped: not minimal.
        assert not cn.is_minimal(["x"])

    def test_classic_author_paper_cn_valid(self):
        fk_a, fk_p = SIMPLE.foreign_keys
        cn = CandidateNetwork(
            nodes=(
                CNNode("author", frozenset({"gray"})),
                CNNode("writes", frozenset()),
                CNNode("paper", frozenset({"transaction"})),
            ),
            edges=((1, 0, fk_a), (1, 2, fk_p)),
        )
        assert cn.is_valid(["gray", "transaction"])


class TestCanonicalForm:
    def test_isomorphic_trees_share_form(self):
        fk_a, fk_p = SIMPLE.foreign_keys
        a = CandidateNetwork(
            nodes=(
                CNNode("author", frozenset({"x"})),
                CNNode("writes", frozenset()),
                CNNode("paper", frozenset({"y"})),
            ),
            edges=((1, 0, fk_a), (1, 2, fk_p)),
        )
        b = CandidateNetwork(
            nodes=(
                CNNode("paper", frozenset({"y"})),
                CNNode("writes", frozenset()),
                CNNode("author", frozenset({"x"})),
            ),
            edges=((1, 2, fk_a), (1, 0, fk_p)),
        )
        assert a.canonical_form() == b.canonical_form()

    def test_different_keywords_differ(self):
        a = CandidateNetwork(nodes=(CNNode("paper", frozenset({"x"})),), edges=())
        b = CandidateNetwork(nodes=(CNNode("paper", frozenset({"y"})),), edges=())
        assert a.canonical_form() != b.canonical_form()


class TestEnumeration:
    def test_two_keyword_author_paper(self):
        cns = enumerate_candidate_networks(SIMPLE, ["gray", "transaction"], 3)
        forms = {cn.canonical_form() for cn in cns}
        assert len(forms) == len(cns)  # deduplicated
        # The classic author^{gray} - writes - paper^{transaction} CN
        # must be present (in both keyword arrangements).
        author_paper = [
            cn
            for cn in cns
            if cn.size == 3
            and {node.table for node in cn.nodes} == {"author", "writes", "paper"}
        ]
        assert author_paper

    def test_all_results_valid_and_within_size(self):
        cns = enumerate_candidate_networks(SIMPLE, ["x", "y"], 4)
        for cn in cns:
            assert cn.size <= 4
            assert cn.is_valid(["x", "y"])

    def test_single_keyword_single_node_cns(self):
        cns = enumerate_candidate_networks(SIMPLE, ["x"], 1)
        assert {cn.nodes[0].table for cn in cns} == {"author", "paper", "writes"}
        assert all(cn.size == 1 for cn in cns)

    def test_empty_tuple_sets_pruned(self):
        def has_tuples(table, subset):
            return table == "paper"  # only papers match anything

        cns = enumerate_candidate_networks(
            SIMPLE, ["x"], 3, has_tuples=has_tuples
        )
        assert cns
        for cn in cns:
            for node in cn.nodes:
                if not node.is_free:
                    assert node.table == "paper"

    def test_max_networks_cap(self):
        cns = enumerate_candidate_networks(SIMPLE, ["x", "y"], 5, max_networks=3)
        assert len(cns) <= 3

    def test_max_partials_cap_stops_early(self):
        few = enumerate_candidate_networks(SIMPLE, ["x", "y"], 6, max_partials=50)
        full = enumerate_candidate_networks(SIMPLE, ["x", "y"], 6)
        assert len(few) <= len(full)

    def test_size_grows_cn_count_monotonically(self):
        sizes = [
            len(enumerate_candidate_networks(SIMPLE, ["x", "y"], s))
            for s in (1, 2, 3, 4)
        ]
        assert sizes == sorted(sizes)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            enumerate_candidate_networks(SIMPLE, ["x"], 0)

    def test_redundant_internal_node_cn_found(self):
        """A valid CN may contain a non-free node contributing no new
        keyword (see module docstring of candidate_networks)."""
        schema = Schema(
            tables=(
                Table("a", ("id", "t"), text_columns=("t",)),
                Table("n", ("id", "t", "a_id"), text_columns=("t",)),
                Table("b", ("id", "t", "n_id"), text_columns=("t",)),
            ),
            foreign_keys=(
                ForeignKey("n", "a_id", "a"),
                ForeignKey("b", "n_id", "n"),
            ),
        )
        cns = enumerate_candidate_networks(schema, ["x", "y", "z"], 3)
        target = [
            cn
            for cn in cns
            if cn.size == 3
            and any(
                node.table == "n" and node.keywords == frozenset({"y"})
                for node in cn.nodes
            )
            and any(
                node.table == "b" and node.keywords == frozenset({"y", "z"})
                for node in cn.nodes
            )
            and any(
                node.table == "a" and node.keywords == frozenset({"x"})
                for node in cn.nodes
            )
        ]
        assert target, "a^{x} - n^{y} - b^{y,z} must be enumerated"
