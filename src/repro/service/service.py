"""Query service: named engines, cached results, concurrent batches.

The layer the ROADMAP's production north star needs above
:class:`~repro.core.engine.KeywordSearchEngine`:

* **Engine registry** — one engine per dataset name, registered eagerly
  (:meth:`QueryService.register_engine`), lazily from a database
  (:meth:`register_database`), or from a disk snapshot
  (:meth:`register_snapshot`) so restarts skip graph/prestige/index
  builds.  Lazy builds are per-dataset locked: under concurrent traffic
  exactly one thread pays the construction cost.
* **Result cache** — a shared :class:`~repro.service.cache.ResultCache`
  (LRU + TTL) keyed on the canonicalized query identity; repeated
  queries are answered in microseconds without touching the graph.
* **Batch execution** — :meth:`search_many` fans requests over a
  ``ThreadPoolExecutor`` and honours per-request deadlines.  Responses
  never raise: errors (unknown dataset, absent keyword, deadline
  exceeded) come back as structured :class:`QueryResponse` objects, the
  contract an HTTP front-end can map onto status codes directly.
* **Metrics** — :meth:`metrics` exports per-algorithm latency
  percentiles, cache hit rate and error counters as a plain dict.
* **Live mutations** — :meth:`apply` commits a
  :mod:`repro.live` mutation batch against a dataset (upgrading it to
  a :class:`~repro.live.MutableDataset` on first touch): new requests
  see the new epoch, in-flight searches finish on theirs, and the
  result cache is keyed by :meth:`dataset_version` so a commit makes
  stale entries unreachable atomically.  :meth:`reload_snapshot`
  hot-swaps a dataset from a re-written snapshot file, no-opping when
  the file's content digest matches what is already served.
* **Durability** — :meth:`attach_wal` opens the dataset's
  :mod:`repro.wal` mutation log: records the served state is missing
  are replayed (crash recovery to exactly the last durable epoch) and
  every later commit is journaled write-ahead; :meth:`save_snapshot`
  truncates segments the new snapshot covers.

Threads, not processes: search holds the GIL, so a batch's *CPU* time is
not divided across cores — what batching buys is overlap of cache hits
with in-flight searches, deduplication of identical queries through the
cache, deadline enforcement, and a single shared warm engine.  A
process-pool sharding tier is the ROADMAP follow-up.

Deadlines are enforced *cooperatively*: the service arms a
:class:`~repro.core.cancellation.CancellationToken` from each request's
deadline and threads it into the engine's pop loop, so a deadline miss
actually stops the losing search within a couple of check intervals and
frees its worker thread — the capacity win
``benchmarks/bench_cancellation.py`` measures.  The expired query's
response is a structured ``error_type="DeadlineExceededError"``; with
``QueryRequest.allow_partial=True`` it additionally carries the
bound-certified answers the search had already released, flagged
``complete=False``.  Explicit cancellation rides the same token:
requests carrying a ``request_id`` can be stopped mid-flight through
:meth:`QueryService.cancel` (what the HTTP front-end's ``DELETE
/search/<id>`` and client-disconnect mapping call).  Construct with
``cooperative_cancellation=False`` to fall back to the old
abandon-the-thread behaviour (the benchmark's control arm).
"""

from __future__ import annotations

import functools
import inspect
import threading
import time
from collections import deque
from pathlib import Path
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.core.answer import SearchResult
from repro.core.cancellation import CancellationToken
from repro.core.engine import ALGORITHMS, KeywordSearchEngine, parse_query
from repro.core.params import SearchParams
from repro.errors import (
    DeadlineExceededError,
    SearchCancelledError,
    UnknownDatasetError,
)
from repro.service.cache import ResultCache, canonical_cache_key
from repro.service.metrics import ServiceMetrics
from repro.telemetry.accounting import (
    ExplainStore,
    WorkloadAnalytics,
    query_fingerprint,
)
from repro.telemetry.dashboard import algorithm_summary
from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import (
    SamplingProfiler,
    diff_profiles,
    render_collapsed,
)
from repro.telemetry.slo import SloEngine, SloObjective, default_objectives
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.trace import Tracer, new_trace_id, use_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.dataset import MutableDataset
    from repro.live.mutations import MutationResult
    from repro.wal.log import MutationLog

__all__ = [
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "coerce_request",
    "normalize_search_args",
    "request_fingerprint",
]

_MISS = object()


@functools.lru_cache(maxsize=256)
def _accepts_token(search_fn) -> bool:
    """Whether an engine's ``search`` takes the ``token`` kwarg.

    Duck-typed engines (tests, embedders) predating cooperative
    cancellation must keep working; they simply run uncancellable, with
    the deadline watcher's structured response as the fallback.

    Memoized — the answer is a property of the function, and the
    reflection must stay off the per-request hot path.  Callers pass
    the *underlying* function (``__func__`` for bound methods) so the
    cache neither grows per bound-method object nor pins engine
    instances alive.
    """
    try:
        parameters = inspect.signature(search_fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return False
    return "token" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


class _DatasetJournal:
    """Commit journal adapter pinning WAL sequence numbers to the
    service's *effective* dataset version.

    ``MutableDataset`` only knows its own epoch counter; the cache keys
    (and replica drift checks) run on the effective version — base
    generation plus epoch.  Appending with the explicit expected
    sequence makes :class:`repro.wal.MutationLog` reject any
    misalignment (e.g. a re-registration that bumped the base under an
    attached log), failing the commit loudly instead of recording an
    unreplayable history.
    """

    __slots__ = ("_log", "_service", "_name")

    def __init__(self, log: "MutationLog", service: "QueryService", name: str):
        self._log = log
        self._service = service
        self._name = name

    def append(self, mutations, *, seq=None, recompute_prestige=False) -> int:
        del seq  # the service's effective version is authoritative
        return self._log.append(
            mutations,
            seq=self._service.dataset_version(self._name) + 1,
            recompute_prestige=recompute_prestige,
        )


class _Once:
    """A test-and-set token: exactly one of N racers wins the claim.

    Settles who records a deadline-missed request's metrics — the
    deadline watcher or the still-running worker — without the window a
    bare ``Event`` check-then-act leaves open.
    """

    __slots__ = ("_lock", "_claimed")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._claimed = False

    def claim(self) -> bool:
        with self._lock:
            if self._claimed:
                return False
            self._claimed = True
            return True


@dataclass(frozen=True)
class QueryRequest:
    """One keyword query addressed to a registered dataset.

    Attributes
    ----------
    dataset:
        Registry name the query runs against.
    query:
        Query string or keyword sequence (sequences are normalized to
        tuples so requests stay hashable).
    algorithm:
        ``"bidirectional"`` (default), ``"si-backward"`` or
        ``"mi-backward"``.
    k:
        Top-k override; folded into the effective params before caching
        so ``k=10`` via either spelling shares a cache entry.
    params:
        Full :class:`SearchParams` override (defaults to the engine's).
    timeout:
        Per-request deadline in seconds, measured from when the request
        is handed to the executor.
    deadline_ms:
        The same deadline in milliseconds — the spelling HTTP clients
        think in.  Normalized into ``timeout`` at construction (the
        canonical field; ``deadline_ms`` reads None afterwards); setting
        both is an error.
    use_cache:
        Set False to force a fresh search (the result still refreshes
        the cache for later callers).
    allow_partial:
        When the deadline fires (or the request is cancelled), attach
        the bound-certified answers the search had already released to
        the error response (``result.complete`` is False).  Default
        False: an expired query returns only the structured error.
    explain:
        Run the query with the engine's explain mode on: the response's
        ``result.explain`` carries the structured report (seed
        resolution, sampled expansion timeline, per-answer score
        decomposition) and the service retains it in its bounded
        explain store, keyed by ``request_id``.  Explain requests bypass
        the cache *read* (a cached result has no report to attach) but
        still refresh the cache with a report-stripped copy.
    request_id:
        Optional caller-chosen id making the request cancellable
        mid-flight via ``cancel(request_id)`` on either service tier
        (and ``DELETE /search/<id>`` over HTTP).
    trace_id:
        Trace this request belongs to.  Minted at the outermost layer
        that sees the request (the HTTP front door, the cluster
        supervisor, or the service itself when absent) and echoed on
        the response; all spans the request produces share it.
    parent_span_id:
        Span id the executing service should parent its ``worker`` span
        under — how the supervisor's ``route`` span and the worker
        process's spans join into one tree.
    """

    dataset: str
    query: Union[str, tuple[str, ...]]
    algorithm: str = "bidirectional"
    k: Optional[int] = None
    params: Optional[SearchParams] = None
    timeout: Optional[float] = None
    deadline_ms: Optional[float] = None
    use_cache: bool = True
    allow_partial: bool = False
    explain: bool = False
    request_id: Optional[str] = None
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.query, (str, tuple)):
            object.__setattr__(self, "query", tuple(self.query))
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{sorted(ALGORITHMS)}"
            )
        if self.deadline_ms is not None:
            if self.timeout is not None:
                raise ValueError(
                    "set timeout (seconds) or deadline_ms (milliseconds), "
                    "not both"
                )
            object.__setattr__(self, "timeout", self.deadline_ms / 1000.0)
            object.__setattr__(self, "deadline_ms", None)
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")


@dataclass
class QueryResponse:
    """Outcome of one request: a result, or a structured error.

    The one case carrying both: a deadline-expired or cancelled request
    with ``allow_partial=True`` keeps its error fields *and* attaches
    the partial result (``result.complete`` is False) — the paper's
    anytime semantics surfaced at the service boundary.

    ``request`` is None only when the raw batch item was too malformed
    to build a :class:`QueryRequest` at all (unknown algorithm, wrong
    shape) — the error fields then carry the construction failure.
    """

    request: Optional[QueryRequest]
    result: Optional[SearchResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    cached: bool = False
    elapsed: float = 0.0
    #: Echo of ``request.request_id`` — present on every path (success,
    #: error, deadline, cancel) so callers correlate without keeping the
    #: request object around.
    request_id: Optional[str] = None
    #: The trace this response belongs to (minted by the executing
    #: service when the request carried none); key into
    #: ``service.trace(...)`` / ``GET /debug/trace/<id>``.
    trace_id: Optional[str] = None
    #: Finished span dicts produced while executing this request — how
    #: spans cross the worker→supervisor process boundary (the
    #: supervisor ingests and clears them).
    spans: Optional[list] = field(default=None, repr=False)
    #: The original exception object, for in-process callers that want
    #: exception semantics back (``error``/``error_type`` carry the
    #: wire-friendly view; a deadline miss has no exception object).
    exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_for_error(self) -> "QueryResponse":
        """Re-raise the recorded error (for callers preferring exceptions)."""
        if self.exception is not None:
            raise self.exception
        if self.error is not None:
            described = (
                f"query {self.request.query!r} on {self.request.dataset!r}"
                if self.request is not None
                else "malformed request"
            )
            message = f"{described} failed: [{self.error_type}] {self.error}"
            if self.error_type == DeadlineExceededError.__name__:
                raise DeadlineExceededError(message)
            raise RuntimeError(message)
        return self


def coerce_request(
    request, *, default_timeout: Optional[float] = None
) -> QueryRequest:
    """Normalize one batch item into a :class:`QueryRequest`.

    Accepts a prepared request (given ``default_timeout``, a request
    without its own deadline picks it up) or a ``(dataset, query[,
    algorithm])`` tuple.  Shared by :meth:`QueryService.search_many` and
    the cluster tier's supervisor, so both layers reject malformed items
    identically.  Raises on anything else — callers turn the exception
    into a structured error response.
    """
    if isinstance(request, QueryRequest):
        if request.timeout is None and default_timeout is not None:
            return replace(request, timeout=default_timeout)
        return request
    dataset, query, *rest = request
    if len(rest) > 1:
        raise ValueError(
            f"batch tuple must be (dataset, query[, algorithm]), got "
            f"{len(rest) + 2} elements — build a QueryRequest for more knobs"
        )
    return QueryRequest(
        dataset=dataset,
        query=query if isinstance(query, str) else tuple(query),
        algorithm=rest[0] if rest else "bidirectional",
        timeout=default_timeout,
    )


def normalize_search_args(
    dataset: Union[str, QueryRequest],
    query: Optional[Union[str, Sequence[str]]],
    *,
    algorithm: str,
    k: Optional[int],
    params,
    timeout: Optional[float],
    use_cache: bool,
) -> QueryRequest:
    """Resolve ``search``'s dual calling convention to one request.

    Both the thread tier and the cluster tier accept either a prepared
    :class:`QueryRequest` or the ``(dataset, query, ...)`` shorthand —
    not both: keyword overrides alongside a request object would be
    silently shadowed by the request's own fields, so they are
    rejected.  Shared so the two facades can never drift.
    """
    if isinstance(dataset, QueryRequest):
        overrides = (
            query is not None
            or algorithm != "bidirectional"
            or k is not None
            or params is not None
            or timeout is not None
            or use_cache is not True
        )
        if overrides:
            raise ValueError(
                "pass either a QueryRequest or (dataset, query, ...) "
                "keywords, not both — the request object already fixes "
                "those fields"
            )
        return dataset
    if query is None:
        raise ValueError("query is required when dataset is a name")
    return QueryRequest(
        dataset=dataset,
        query=query if isinstance(query, str) else tuple(query),
        algorithm=algorithm,
        k=k,
        params=params,
        timeout=timeout,
        use_cache=use_cache,
    )


def request_fingerprint(request: QueryRequest) -> str:
    """Canonical workload fingerprint for a request.

    Normalizes through the engine's own query parser so
    ``"beer wine"`` and ``("Wine", "beer")`` collapse to one
    fingerprint, then folds in the algorithm and the shape-affecting
    knobs (``k`` plus any explicit params override).  Used as the
    aggregation key of the workload sketch and stamped onto slow-log
    entries.
    """
    try:
        terms = parse_query(request.query)
    except Exception:
        terms = (str(request.query),)
    return query_fingerprint(
        terms,
        algorithm=request.algorithm,
        params={
            "k": request.k,
            "params": asdict(request.params) if request.params else None,
        },
    )


class QueryService:
    """Facade owning engines, cache, executor and metrics.

    Usable as a context manager; :meth:`close` shuts the executor down.

    ``cooperative_cancellation`` (default True) arms a
    :class:`CancellationToken` per request so deadlines and explicit
    :meth:`cancel` calls actually stop the search and free its thread;
    False restores the old abandon-the-thread behaviour (kept as the
    control arm of ``benchmarks/bench_cancellation.py``).
    ``cancel_grace`` bounds how long a deadline-missed *partial-results*
    request waits for the cancelled search to hand back what it has —
    cooperative checks make that a few milliseconds; the grace only
    matters if a search is stuck in a non-cooperative section.
    """

    #: Cancellation-storm event: this many cancellations inside the
    #: window emit one ``cancellation_storm`` warning (then re-arm only
    #: after a quiet window — a storm is one event, not a stream).
    CANCEL_STORM_THRESHOLD = 10
    CANCEL_STORM_WINDOW = 10.0

    def __init__(
        self,
        *,
        cache_capacity: int = 1024,
        cache_ttl: Optional[float] = None,
        max_workers: int = 8,
        metrics_window: int = 2048,
        clock: Callable[[], float] = time.monotonic,
        cooperative_cancellation: bool = True,
        cancel_grace: float = 1.0,
        tracing: bool = True,
        trace_capacity: int = 256,
        slow_query_threshold: Optional[float] = 1.0,
        slow_log_capacity: int = 128,
        profiling: bool = False,
        profile_interval: float = 0.02,
        event_log_capacity: int = 512,
        slo_objectives: Optional[Sequence[SloObjective]] = None,
        accounting: bool = True,
        explain_capacity: int = 128,
        analytics_capacity: int = 64,
        storage_mode: Optional[str] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        if cancel_grace < 0:
            raise ValueError(f"cancel_grace must be >= 0, got {cancel_grace!r}")
        self.cache = ResultCache(cache_capacity, cache_ttl, clock=clock)
        self.registry = MetricsRegistry()
        self._metrics = ServiceMetrics(metrics_window, registry=self.registry)
        self.tracer: Optional[Tracer] = Tracer(trace_capacity) if tracing else None
        self.slow_log = SlowQueryLog(slow_query_threshold, slow_log_capacity)
        self.event_log = EventLog(event_log_capacity)
        # Per-query resource accounting: retained explain reports plus a
        # heavy-hitter sketch of cost/latency per query fingerprint.
        # ``accounting=False`` is the control arm of
        # ``benchmarks/bench_telemetry_overhead.py``.
        self.explain_store: Optional[ExplainStore] = (
            ExplainStore(explain_capacity) if accounting else None
        )
        self.analytics: Optional[WorkloadAnalytics] = (
            WorkloadAnalytics(analytics_capacity) if accounting else None
        )
        self.profiler: Optional[SamplingProfiler] = None
        if profiling:
            self.profiler = SamplingProfiler(profile_interval)
            self.profiler.start()
        # SLO burn-rate alerting over this tier's own registry families
        # (per-algorithm counters — objectives here are fleet-wide;
        # dataset-scoped objectives belong to the cluster tier, whose
        # supervisor counters carry a dataset label).
        objectives = (
            default_objectives() if slo_objectives is None else tuple(slo_objectives)
        )
        self.slo: Optional[SloEngine] = None
        if objectives:
            self.slo = SloEngine(
                objectives,
                source=self.registry.export,
                registry=self.registry,
                event_log=self.event_log,
                request_family="repro_requests_total",
                error_family="repro_errors_total",
                latency_family="repro_request_latency_seconds",
            )
        # Default storage tier for snapshot registrations: None defers
        # to each load's own resolution (explicit arg, then the
        # REPRO_SNAPSHOT_MODE environment hook, then "auto").
        self._storage_mode = storage_mode
        self._max_workers = max_workers
        self._cooperative = cooperative_cancellation
        self._cancel_grace = cancel_grace
        self._engines: dict[str, KeywordSearchEngine] = {}
        self._factories: dict[str, Callable[[], KeywordSearchEngine]] = {}
        self._mutable: dict[str, "MutableDataset"] = {}
        self._wals: dict[str, "MutationLog"] = {}
        self._detached_wals: list["MutationLog"] = []
        # Corruption incidents harvested from each attached log (the
        # log instance may close after replay; the count must survive).
        self._wal_corruption: dict[str, int] = {}
        self._versions: dict[str, int] = {}
        self._snapshot_sources: dict[str, str] = {}
        self._snapshot_digests: dict[str, Optional[str]] = {}
        self._build_seconds: dict[str, float] = {}
        self._registry_lock = threading.Lock()
        self._build_locks: dict[str, threading.Lock] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._active_lock = threading.Lock()
        self._active: dict[str, CancellationToken] = {}
        # Cancellation-storm detector: a burst of cancellations usually
        # means one shared cause (deadline too tight after a deploy, a
        # stuck shard) rather than many unlucky queries — worth one
        # operational event, not one per request.
        self._cancel_times: deque[float] = deque()
        self._cancel_storm_lock = threading.Lock()
        self._cancel_storm_until = 0.0
        self._closed = False
        self._register_telemetry_collectors()

    def _register_telemetry_collectors(self) -> None:
        """Declare the service/live/wal metric families and the
        export-time collector that reads their live state."""
        registry = self.registry
        cache_entries = registry.gauge(
            "repro_cache_entries", "Result cache entries currently held"
        )
        cache_capacity = registry.gauge(
            "repro_cache_capacity", "Result cache capacity"
        )
        cache_evictions = registry.counter(
            "repro_cache_evictions_total", "Result cache LRU evictions"
        )
        cache_expirations = registry.counter(
            "repro_cache_expirations_total", "Result cache TTL expirations"
        )
        datasets_built = registry.gauge(
            "repro_datasets_built", "Datasets with a built engine"
        )
        dataset_version = registry.gauge(
            "repro_dataset_version",
            "Live-mutation epoch per dataset",
            labels=("dataset",),
            merge="max",
        )
        wal_last_seq = registry.gauge(
            "repro_wal_last_seq",
            "Last durable WAL sequence number per dataset",
            labels=("dataset",),
            merge="max",
        )
        wal_appends = registry.counter(
            "repro_wal_appends_total",
            "WAL records appended",
            labels=("dataset",),
        )
        wal_fsyncs = registry.counter(
            "repro_wal_fsyncs_total",
            "WAL fsync calls",
            labels=("dataset",),
        )
        wal_bytes = registry.counter(
            "repro_wal_appended_bytes_total",
            "WAL bytes appended",
            labels=("dataset",),
        )
        wal_replayed = registry.counter(
            "repro_wal_replayed_records_total",
            "WAL records replayed during recovery",
            labels=("dataset",),
        )
        wal_corruption = registry.counter(
            "repro_wal_corruption_records_total",
            "WAL corruption incidents detected (and repaired when the "
            "log was writable)",
            labels=("dataset",),
        )
        registry.counter(
            "repro_mutations_applied_total",
            "Mutation batches committed",
            labels=("dataset",),
        )
        # Mapped-storage residency (datasets served from a memory-mapped
        # snapshot; see docs/STORAGE.md).  Fault counters measure
        # post-pin demand misses; byte gauges are working-set estimates.
        storage_mapped = registry.gauge(
            "repro_storage_mapped_bytes",
            "Bytes of snapshot data served via memory mapping per dataset",
            labels=("dataset",),
            merge="max",
        )
        storage_resident = registry.gauge(
            "repro_storage_resident_bytes",
            "Estimated bytes of materialized (resident) mapped rows per dataset",
            labels=("dataset",),
            merge="max",
        )
        storage_pinned_nodes = registry.gauge(
            "repro_storage_pinned_nodes",
            "Adjacency rows pinned at load time per mapped dataset",
            labels=("dataset",),
            merge="max",
        )
        storage_pinned_terms = registry.gauge(
            "repro_storage_pinned_terms",
            "Posting lists pinned at load time per mapped dataset",
            labels=("dataset",),
            merge="max",
        )
        storage_pinned_bytes = registry.gauge(
            "repro_storage_pinned_bytes",
            "Estimated bytes of load-time pinned rows per mapped dataset",
            labels=("dataset",),
            merge="max",
        )
        storage_row_faults = registry.counter(
            "repro_storage_row_faults_total",
            "Adjacency rows materialized on demand per mapped dataset",
            labels=("dataset",),
        )
        storage_posting_faults = registry.counter(
            "repro_storage_posting_faults_total",
            "Posting lists materialized on demand per mapped dataset",
            labels=("dataset",),
        )

        def collect() -> None:
            stats = self.cache.stats()
            cache_entries.set(stats["size"])
            cache_capacity.set(stats["capacity"])
            cache_evictions.set_total(stats["evictions"])
            cache_expirations.set_total(stats["expirations"])
            with self._registry_lock:
                registered = sorted(
                    self._engines.keys()
                    | self._factories.keys()
                    | self._mutable.keys()
                )
                built = len(self._engines.keys() | self._mutable.keys())
                versions = {
                    name: self._effective_version_locked(name)
                    for name in registered
                }
                logs = dict(self._wals)
                corruption = dict(self._wal_corruption)
            datasets_built.set(built)
            for name, incidents in corruption.items():
                wal_corruption.set_total(incidents, dataset=name)
            for name, version in versions.items():
                dataset_version.set(version, dataset=name)
            for name, log in logs.items():
                wal_stats = log.stats()
                wal_last_seq.set(wal_stats["last_seq"], dataset=name)
                wal_appends.set_total(
                    wal_stats.get("appends", 0), dataset=name
                )
                wal_fsyncs.set_total(wal_stats.get("fsyncs", 0), dataset=name)
                wal_bytes.set_total(
                    wal_stats.get("appended_bytes", 0), dataset=name
                )
                wal_replayed.set_total(
                    wal_stats.get("replayed_records", 0), dataset=name
                )
            with self._registry_lock:
                engines = dict(self._engines)
            for name, engine in engines.items():
                # Tolerate engine doubles without a graph (tests).
                storage = getattr(getattr(engine, "graph", None), "storage", None)
                if storage is None:
                    continue
                counters = storage.snapshot()
                storage_mapped.set(counters["mapped_bytes"], dataset=name)
                storage_resident.set(counters["resident_bytes"], dataset=name)
                storage_pinned_nodes.set(counters["pinned_nodes"], dataset=name)
                storage_pinned_terms.set(counters["pinned_terms"], dataset=name)
                storage_pinned_bytes.set(counters["pinned_bytes"], dataset=name)
                storage_row_faults.set_total(counters["row_faults"], dataset=name)
                storage_posting_faults.set_total(
                    counters["posting_faults"], dataset=name
                )

        registry.add_collector(collect)

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register_engine(self, name: str, engine: KeywordSearchEngine) -> None:
        """Register an already-built engine under ``name``.

        Re-registering an existing name replaces its engine, bumps the
        dataset's version (so version-keyed cache entries go stale) and
        purges its cached results — the old engine's answers must not
        outlive it.
        """
        with self._registry_lock:
            replacing = self._replace_registration_locked(name)
            self._engines[name] = engine
            self._build_seconds.setdefault(name, 0.0)
        self._close_detached_wals()
        if replacing:
            self._shred_cache(name)

    def register_factory(
        self, name: str, factory: Callable[[], KeywordSearchEngine]
    ) -> None:
        """Register a lazy engine builder; it runs (once) on first use.

        Like :meth:`register_engine`, replacing an existing name bumps
        the dataset's version and purges its cached results.
        """
        with self._registry_lock:
            replacing = self._replace_registration_locked(name)
            self._factories[name] = factory
            self._build_locks.setdefault(name, threading.Lock())
        self._close_detached_wals()
        if replacing:
            self._shred_cache(name)

    def register_mutable(
        self,
        name: str,
        dataset: "MutableDataset",
        *,
        wal_path=None,
        wal_sync: str = "batched",
    ) -> None:
        """Register a live :class:`~repro.live.MutableDataset`.

        Queries run against the dataset's *current epoch* engine;
        :meth:`apply` commits mutations and advances the version the
        result cache is keyed by.  ``wal_path`` opens (or resumes) a
        durable mutation log there and journals every commit into it —
        shorthand for a follow-up :meth:`attach_wal` call; ``wal_sync``
        picks the :mod:`repro.wal` sync policy (``"commit"`` fsyncs
        every commit, the ``"batched"`` default flushes each commit and
        fsyncs periodically, ``"off"`` leaves flushing to rotation).
        """
        with self._registry_lock:
            replacing = self._replace_registration_locked(name)
            self._mutable[name] = dataset
            self._build_seconds.setdefault(name, 0.0)
        self._close_detached_wals()
        if replacing:
            self._shred_cache(name)
        if wal_path is not None:
            self.attach_wal(name, wal_path, sync=wal_sync)

    def _shred_cache(self, name: str) -> None:
        """Purge ``name``'s cached results after a re-registration and
        record the shred as an operational event (a replaced engine's
        answers must not outlive it — and an operator should see that
        the fleet just lost its warm cache for the dataset)."""
        purged = self.cache.purge(lambda key: key[0] == name)
        self.event_log.emit(
            "cache_shred",
            f"purged {purged} cached result(s) for {name!r} after "
            f"re-registration",
            severity="info",
            dataset=name,
            source="service",
            purged=purged,
        )

    def _replace_registration_locked(self, name: str) -> bool:
        """Shared replacement sequence (registry lock held): bump the
        version past the prior effective one, clear every registry
        slot, forget snapshot provenance, and detach any attached WAL.

        Provenance must go on every path that is not itself a snapshot
        registration — otherwise a later :meth:`reload_snapshot`
        against the old file would see a matching digest and
        incorrectly no-op while the service serves something else
        (:meth:`register_snapshot` re-records the source right after
        its inner :meth:`register_factory` cleared it).  The WAL must
        go too: its sequence lineage belongs to the replaced content,
        and leaving it attached would wedge every later commit on an
        out-of-order append (re-attach explicitly — or via
        :meth:`reload_snapshot`, which starts a fresh log itself).
        Returns whether an existing registration was replaced — the
        caller's cue to purge the dataset's cached results (and close
        the detached log, stashed in ``_detached_wals``) outside the
        lock.
        """
        replacing = (
            name in self._engines
            or name in self._factories
            or name in self._mutable
        )
        if replacing:
            self._versions[name] = self._effective_version_locked(name) + 1
        self._engines.pop(name, None)
        self._factories.pop(name, None)
        self._mutable.pop(name, None)
        self._snapshot_sources.pop(name, None)
        self._snapshot_digests.pop(name, None)
        stale_wal = self._wals.pop(name, None)
        if stale_wal is not None:
            self._detached_wals.append(stale_wal)
        return replacing

    def _close_detached_wals(self) -> None:
        """Close logs detached by a re-registration, outside the
        registry lock (closing fsyncs).  A stale dataset still holding
        one through its journal then fails its next commit loudly
        instead of appending to a lineage no longer served."""
        while True:
            with self._registry_lock:
                if not self._detached_wals:
                    return
                log = self._detached_wals.pop()
            log.close()

    def _effective_version_locked(self, name: str) -> int:
        """The dataset version cache keys embed (registry lock held).

        ``_versions[name]`` is a *base* generation counter: every
        replacement (re-register, reload) jumps it past the prior
        effective version, and a mutable dataset adds its own monotone
        epoch on top.  The sum therefore strictly increases across
        every event that can change answers — commits and
        replacements — which is the invariant that makes version-keyed
        cache entries impossible to serve stale.
        """
        base = self._versions.get(name, 0)
        dataset = self._mutable.get(name)
        return base + dataset.version if dataset is not None else base

    def register_database(
        self,
        name: str,
        db,
        *,
        params: Optional[SearchParams] = None,
        compute_prestige: bool = True,
    ) -> None:
        """Register a database to be built into an engine on first use."""
        self.register_factory(
            name,
            lambda: KeywordSearchEngine.from_database(
                db, params=params, compute_prestige=compute_prestige
            ),
        )

    def register_snapshot(
        self,
        name: str,
        path,
        *,
        params: Optional[SearchParams] = None,
        storage_mode: Optional[str] = None,
        pin_policy=None,
    ) -> None:
        """Register a disk snapshot; loading replaces ``from_database``.

        ``storage_mode`` picks the tier the lazy build loads into
        (``ram`` / ``mapped`` / ``auto``); omitted, it falls back to the
        service-wide default from the constructor, then the usual
        per-load resolution.  ``pin_policy`` is forwarded to mapped
        loads (see :class:`repro.storage.PinPolicy`).
        """
        from repro.errors import SnapshotError
        from repro.service.snapshot import load_engine, snapshot_info

        if storage_mode is None:
            storage_mode = self._storage_mode

        def factory():
            # Record the digest of the file actually loaded (the file
            # may be rewritten later — reload_snapshot compares against
            # what this service *serves*, not what is on disk now).  A
            # concurrent swap between the two reads at worst records a
            # stale digest, which degrades to an unnecessary reload.
            try:
                digest = snapshot_info(path).get("content_digest")
            except SnapshotError:
                digest = None
            engine = load_engine(
                path,
                params=params,
                storage_mode=storage_mode,
                pin_policy=pin_policy,
            )
            with self._registry_lock:
                # Stamp only while this path is still the registered
                # source — a build that lost a re-registration race
                # must not resurrect stale provenance.
                if self._snapshot_sources.get(name) == str(path):
                    self._snapshot_digests[name] = digest
            return engine

        self.register_factory(name, factory)
        with self._registry_lock:
            # Remembered (no I/O here — the file may not exist yet) so
            # reload_snapshot can later compare content digests and
            # no-op when this worker already holds the epoch.
            self._snapshot_sources[name] = str(path)
            self._snapshot_digests.pop(name, None)

    def reload_snapshot(
        self,
        name: str,
        path,
        *,
        params: Optional[SearchParams] = None,
        force: bool = False,
        storage_mode: Optional[str] = None,
        pin_policy=None,
    ) -> dict:
        """Re-register ``name`` from ``path`` without a process restart.

        The fleet-wide purge/reload story: compares the new file's
        content digest (:func:`repro.service.snapshot.snapshot_info`)
        against what this service is already serving and **no-ops**
        when they match — a broadcast reload is then free on replicas
        that already hold the epoch.  A dataset with *committed* live
        mutations never no-ops: reloading it deliberately resets to
        the snapshot.  Returns ``{"dataset", "reloaded", "version",
        "digest"}``.
        """
        from repro.service.snapshot import snapshot_info

        info = snapshot_info(path)
        digest = info.get("content_digest")
        if not force and digest is not None:
            current = self._current_snapshot_digest(name)
            if current == digest:
                return {
                    "dataset": name,
                    "reloaded": False,
                    "version": self.dataset_version(name),
                    "digest": digest,
                }
        with self._registry_lock:
            prior_log = self._wals.get(name)
        prior_wal = (
            (prior_log.path, prior_log.sync_policy)
            if prior_log is not None
            else None
        )
        # Registration detaches and closes the old log: its records
        # applied on top of the *old* base, so against the reloaded
        # file they are unreplayable history, and a stale dataset's
        # in-flight commit must fail loudly against a closed log —
        # never land an old-lineage batch in the new one.
        self.register_snapshot(
            name,
            path,
            params=params,
            storage_mode=storage_mode,
            pin_policy=pin_policy,
        )
        self._close_detached_wals()
        with self._registry_lock:
            self._snapshot_digests[name] = digest
            # Convergence rule: every replica adopting this file lands
            # on ``snapshot_version + 1`` — strictly above any replica
            # the file could have been saved from (the saver stamps its
            # own effective version), so cache keys stay monotone AND
            # replicas with different histories stop reporting drift
            # for identical content.  Reloading a snapshot *older* than
            # this service's own state keeps the local ``prior + 1``
            # (the max), which is the genuinely-ambiguous rollback case
            # — drift stays visible until a fresh snapshot propagates.
            self._versions[name] = max(
                self._versions.get(name, 0),
                int(info.get("dataset_version") or 0) + 1,
            )
            version = self._versions.get(name, 0)
        if prior_wal is not None:
            from repro.wal.log import MutationLog

            fresh = MutationLog.fresh(
                prior_wal[0], sync=prior_wal[1], start_seq=version
            )
            with self._registry_lock:
                self._wals[name] = fresh
        self.event_log.emit(
            "snapshot_reload",
            f"reloaded {name!r} from snapshot (version {version})",
            severity="info",
            dataset=name,
            source="service",
            version=version,
            digest=digest,
        )
        return {
            "dataset": name,
            "reloaded": True,
            "version": version,
            "digest": digest,
        }

    def _current_snapshot_digest(self, name: str) -> Optional[str]:
        """Digest of the snapshot this service serves for ``name``, or
        None when unknown (never registered from a file, mutated since,
        or the file predates digests)."""
        from repro.errors import SnapshotError
        from repro.service.snapshot import snapshot_info

        with self._registry_lock:
            dataset = self._mutable.get(name)
            if dataset is not None and dataset.version > 0:
                # A commit landed: the served state diverged from any
                # file.  (A version-0 mutable — upgraded but never
                # successfully mutated — still equals its snapshot.)
                return None
            digest = self._snapshot_digests.get(name)
            if digest is not None:
                return digest
            if name in self._engines or dataset is not None:
                # Built, but not from a digest-recorded snapshot load:
                # we cannot prove equality, so never no-op.
                return None
            source = self._snapshot_sources.get(name)
        if source is None:
            return None
        # Still lazy: the registered factory will read this same file
        # when it first builds, so the file's current digest *is* what
        # this service would serve.
        try:
            return snapshot_info(source).get("content_digest")
        except SnapshotError:
            return None

    def attach_wal(
        self,
        name: str,
        path=None,
        *,
        sync: str = "batched",
        replay: bool = True,
        writable: bool = True,
        strict: bool = True,
        **log_knobs,
    ) -> dict:
        """Open dataset ``name``'s durable mutation log: replay what the
        served state is missing, then journal every later commit.

        This is the crash-recovery entry point (call it right after
        registering the dataset): records newer than the served state —
        the snapshot's ``dataset_version`` for snapshot-registered
        datasets, the current effective version otherwise — are applied
        in sequence, landing the dataset on exactly the log's last
        durable epoch.  ``path`` defaults to the registered snapshot's
        sibling ``<snapshot>.wal`` (:func:`repro.wal.default_wal_path`).

        ``sync`` is the durability knob per commit (see
        :mod:`repro.wal`): ``"commit"`` fsyncs each append, the default
        ``"batched"`` flushes each append (commits survive a process
        ``kill -9``) and fsyncs every few, ``"off"`` defers flushing
        entirely.  ``writable=False`` replays without taking ownership
        of the log — what a cluster replica does, since only the
        supervisor appends.  ``strict=False`` lets replay stop at a
        record that fails to apply (warning) instead of raising.

        Raises :class:`~repro.errors.WalError` when exact recovery is
        impossible: a replay gap (log truncated past the snapshot) or,
        for writable logs, a log *behind* the served state (commits
        happened unjournaled — save a snapshot and reset instead).
        Returns ``{"dataset", "path", "replayed", "wal_seq",
        "version"}``.
        """
        from repro.errors import SnapshotError, WalError
        from repro.wal.log import MutationLog, default_wal_path

        with self._registry_lock:
            registered = (
                name in self._engines
                or name in self._factories
                or name in self._mutable
            )
            if not registered:
                raise UnknownDatasetError(name)
            source = self._snapshot_sources.get(name)
        if path is None:
            if source is None:
                raise ValueError(
                    f"dataset {name!r} was not registered from a snapshot; "
                    f"pass an explicit WAL path"
                )
            path = default_wal_path(source)
        snap_version = 0
        if source is not None:
            from repro.service.snapshot import snapshot_info

            try:
                snap_version = int(
                    snapshot_info(source).get("dataset_version") or 0
                )
            except SnapshotError:
                snap_version = 0
        with self._registry_lock:
            dataset = self._mutable.get(name)
            live_version = dataset.version if dataset is not None else 0
            if live_version == 0 and self._versions.get(name, 0) < snap_version:
                # Adopt the snapshot's version baseline: WAL sequence
                # numbers continue the snapshot's history instead of
                # restarting at zero on every process start.  Only for
                # a dataset with no live commits — absorbing committed
                # (necessarily unjournaled) epochs into the baseline
                # would let old log records replay on top of a
                # diverged state instead of failing loudly below.
                self._versions[name] = snap_version
        effective = self.dataset_version(name)
        if writable:
            log = MutationLog(path, sync=sync, start_seq=effective, **log_knobs)
        else:
            try:
                log = MutationLog(path, readonly=True, **log_knobs)
            except WalError:
                # No log on disk yet: nothing to recover, nothing to own.
                return {
                    "dataset": name,
                    "path": str(path),
                    "replayed": 0,
                    "wal_seq": effective,
                    "version": effective,
                }
        try:
            replayed = 0
            if replay and log.last_seq > effective:
                dataset = self._mutable_dataset(name)
                replayed = dataset.replay_records(
                    log.records(start_after=effective),
                    expected=effective + 1,
                    strict=strict,
                )
                if replayed:
                    self.cache.purge(lambda key: key[0] == name)
                if strict and log.last_seq > self.dataset_version(name):
                    raise WalError(
                        f"replay gap for {name!r}: the log ends at seq "
                        f"{log.last_seq} but its retained records only "
                        f"reach version {self.dataset_version(name)} "
                        f"(older segments were truncated past this "
                        f"snapshot; recover from a newer one)"
                    )
            effective = self.dataset_version(name)
            if writable and log.last_seq < effective:
                raise WalError(
                    f"WAL for {name!r} ends at seq {log.last_seq} but the "
                    f"served state is already at version {effective}: "
                    f"commits happened without a journal.  save_snapshot() "
                    f"and attach a fresh log instead"
                )
        except BaseException:
            log.close()
            raise
        if writable:
            with self._registry_lock:
                stale = self._wals.get(name)
                self._wals[name] = log
                dataset = self._mutable.get(name)
            if stale is not None and stale is not log:
                stale.close()
            if dataset is not None:
                dataset.attach_journal(_DatasetJournal(log, self, name))
        else:
            log.close()
        self._note_wal_events(name, log, replayed)
        return {
            "dataset": name,
            "path": str(path),
            "replayed": replayed,
            "wal_seq": log.last_seq,
            "version": effective,
        }

    def _note_wal_events(self, name: str, log, replayed: int) -> None:
        """Turn a just-attached log's recovery outcome into first-class
        signals: one event per corruption incident (plus the
        ``repro_wal_corruption_records_total`` counter) and a replay
        event when records were applied — the operational record of a
        crash recovery, visible without anyone catching Python
        warnings."""
        incidents = log.corruption_events()
        if incidents:
            with self._registry_lock:
                self._wal_corruption[name] = self._wal_corruption.get(
                    name, 0
                ) + len(incidents)
        for incident in incidents:
            self.event_log.emit(
                "wal_corruption",
                f"WAL for {name!r} damaged at byte {incident['offset']} "
                f"({incident['reason']}); "
                + (
                    "tail repaired, "
                    if incident.get("repaired")
                    else "replay stopped, "
                )
                + f"last valid seq {incident['last_valid_seq']}",
                severity="warning",
                dataset=name,
                source="wal",
                **{
                    key: incident[key]
                    for key in ("path", "offset", "reason", "last_valid_seq", "repaired")
                    if key in incident
                },
            )
        if replayed:
            self.event_log.emit(
                "wal_replay",
                f"replayed {replayed} WAL record(s) for {name!r} to seq "
                f"{log.last_seq}",
                severity="info",
                dataset=name,
                source="wal",
                replayed=replayed,
                wal_seq=log.last_seq,
            )

    def wal_seqs(self) -> dict[str, int]:
        """``{dataset: last durable WAL sequence}`` for every dataset
        with an attached (writable) log."""
        with self._registry_lock:
            logs = dict(self._wals)
        return {name: log.last_seq for name, log in sorted(logs.items())}

    def save_snapshot(self, name: str, path):
        """Write dataset ``name``'s built state to ``path`` (building it
        first if still lazy); returns the path written.  The snapshot
        records the dataset's current version.  A mutable dataset is
        compacted first — snapshots hold flat arrays, and compaction
        changes no answer (or version).  With a WAL attached **and**
        ``path`` being the dataset's registered snapshot source,
        segments the new snapshot makes redundant (every record at or
        below its ``dataset_version``) are deleted afterwards — the
        log only ever needs to reach back to the newest snapshot.
        Saving to any *other* path (a backup, a new provision file)
        leaves the log alone: crash recovery still registers the
        original source and must be able to replay up from it."""
        from repro.service.snapshot import save_engine, save_snapshot

        with self._registry_lock:
            live = self._mutable.get(name)
        if live is not None:
            epoch = live.compact()
            # The version must come from the epoch actually being
            # written, not a later dataset_version() read — a commit
            # racing this save would otherwise stamp (and truncate the
            # WAL past) a version the file does not contain.
            with self._registry_lock:
                version = self._versions.get(name, 0) + epoch.version
            written = save_snapshot(
                path, epoch.graph, epoch.index, version=version
            )
        else:
            engine = self.engine(name)
            version = self.dataset_version(name)
            written = save_engine(path, engine, version=version)
        with self._registry_lock:
            log = self._wals.get(name)
            source = self._snapshot_sources.get(name)
        if (
            log is not None
            and source is not None
            and Path(source).resolve() == written.resolve()
        ):
            log.truncate(version)
        return written

    def datasets(self) -> list[str]:
        """Registered dataset names (built or lazy), sorted."""
        with self._registry_lock:
            return sorted(
                self._engines.keys()
                | self._factories.keys()
                | self._mutable.keys()
            )

    def dataset_version(self, name: str) -> int:
        """The dataset's current effective version (0 until it changes).

        This is what result-cache keys embed: every mutation commit and
        every engine replacement advances it, so stale cached answers
        become unreachable the instant the new state is visible (see
        :meth:`_effective_version_locked` for the monotonicity
        argument).
        """
        with self._registry_lock:
            return self._effective_version_locked(name)

    def dataset_versions(self) -> dict[str, int]:
        """``{dataset: version}`` for every registered dataset."""
        return {name: self.dataset_version(name) for name in self.datasets()}

    def engine(self, name: str) -> KeywordSearchEngine:
        """The engine for ``name``, building/loading it on first use.

        A mutable dataset answers with its *current epoch's* engine —
        requests that already hold an older epoch's engine keep
        searching it unperturbed (MVCC by immutability).

        Factory identity guards the slow build: if the dataset is
        re-registered (or reloaded) while a lazy build is in flight,
        the stale build's result is discarded and resolution restarts —
        storing it would silently shadow the replacement under the
        already-bumped cache version.
        """
        while True:
            with self._registry_lock:
                dataset = self._mutable.get(name)
                if dataset is not None:
                    return dataset.engine
                engine = self._engines.get(name)
                if engine is not None:
                    return engine
                factory = self._factories.get(name)
                if factory is None:
                    raise UnknownDatasetError(name)
                build_lock = self._build_locks.setdefault(name, threading.Lock())
            with build_lock:
                # Double-checked: a concurrent builder may have
                # finished (factory popped), or a re-registration may
                # have swapped the factory — both restart resolution.
                with self._registry_lock:
                    if self._factories.get(name) is not factory:
                        continue
                start = time.perf_counter()
                engine = factory()
                elapsed = time.perf_counter() - start
                with self._registry_lock:
                    if self._factories.get(name) is not factory:
                        continue  # replaced mid-build: discard stale engine
                    self._engines[name] = engine
                    self._factories.pop(name, None)
                    self._build_seconds[name] = elapsed
                return engine

    def warmup(self, names: Optional[Sequence[str]] = None) -> dict[str, float]:
        """Build/load the given datasets (default: all registered) now.

        Returns ``{name: build_seconds}`` — snapshot-backed entries come
        in orders of magnitude under ``from_database`` ones, which is the
        point of snapshotting.
        """
        targets = list(names) if names is not None else self.datasets()
        timings = {}
        for name in targets:
            self.engine(name)
            with self._registry_lock:
                timings[name] = self._build_seconds.get(name, 0.0)
        return timings

    # ------------------------------------------------------------------
    # live mutations
    # ------------------------------------------------------------------
    def apply(self, dataset: str, mutations: Sequence) -> "MutationResult":
        """Apply a mutation batch to ``dataset`` and commit a new epoch.

        ``mutations`` holds :mod:`repro.live.mutations` objects or
        their wire dicts (what ``POST /mutate`` ships).  A dataset not
        yet registered mutable is upgraded in place on first apply: its
        built engine is wrapped in a
        :class:`~repro.live.MutableDataset` and every later query runs
        against the dataset's current epoch.

        Correctness contract: the commit bumps the dataset version the
        result cache is keyed by, so a result computed against the old
        epoch can never be served afterwards; in-flight searches keep
        the epoch they started on and complete unperturbed.  The old
        version's entries are also purged eagerly — pure capacity
        hygiene, the version key already made them unreachable.
        """
        live = self._mutable_dataset(dataset)
        outcome = live.mutate(mutations)
        with self._registry_lock:
            version = self._effective_version_locked(dataset)
        purged = self.cache.purge(
            lambda key: key[0] == dataset and key[-1] != version
        )
        self.registry.counter("repro_mutations_applied_total").inc(
            dataset=dataset
        )
        self.event_log.emit(
            "mutation_commit",
            f"committed {outcome.applied} mutation(s) to {dataset!r} "
            f"(version {version}, {purged} cached result(s) shredded)",
            severity="info",
            dataset=dataset,
            source="service",
            version=version,
            applied=outcome.applied,
            cache_purged=purged,
        )
        from repro.live.mutations import MutationResult

        return MutationResult(
            dataset=dataset,
            version=version,
            applied=outcome.applied,
            new_nodes=outcome.new_nodes,
            compacted=outcome.epoch.compacted,
            cache_purged=purged,
        )

    def _mutable_dataset(self, name: str) -> "MutableDataset":
        """The live dataset for ``name``, upgrading a frozen engine on
        first use (double-checked under the registry lock)."""
        from repro.live.dataset import MutableDataset

        while True:
            with self._registry_lock:
                dataset = self._mutable.get(name)
                if dataset is not None:
                    return dataset
            engine = self.engine(name)  # may build lazily; raises UnknownDataset
            with self._registry_lock:
                dataset = self._mutable.get(name)
                if dataset is not None:
                    return dataset
                if self._engines.get(name) is not engine:
                    # Re-registered between the build and this lock:
                    # wrapping the stale engine would silently discard
                    # the replacement.  Resolve again.
                    continue
                dataset = MutableDataset.from_engine(engine)
                log = self._wals.get(name)
                if log is not None:
                    # A WAL attached while the dataset was still frozen
                    # starts journaling at the first commit that can
                    # exist — this upgrade.
                    dataset.attach_journal(_DatasetJournal(log, self, name))
                self._mutable[name] = dataset
                self._engines.pop(name, None)
                self._factories.pop(name, None)
                # Snapshot provenance survives the upgrade: at version
                # 0 the served content still equals the file, so a
                # reload no-op stays possible — important because a
                # *failed* (rolled-back) batch also lands here.  The
                # digest check goes dead the moment a commit lands
                # (_current_snapshot_digest keys off dataset.version).
                return dataset

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def search(
        self,
        dataset: Union[str, QueryRequest],
        query: Optional[Union[str, Sequence[str]]] = None,
        *,
        algorithm: str = "bidirectional",
        k: Optional[int] = None,
        params: Optional[SearchParams] = None,
        timeout: Optional[float] = None,
        use_cache: bool = True,
        token: Optional[CancellationToken] = None,
    ) -> QueryResponse:
        """Execute one query synchronously.

        Accepts either a prepared :class:`QueryRequest` or the
        ``(dataset, query, ...)`` shorthand — not both: keyword
        overrides alongside a request object would be silently shadowed
        by the request's own fields, so they are rejected.  With a
        ``timeout`` the request runs on the executor so the deadline is
        enforced.  ``token`` is an optional caller-owned
        :class:`CancellationToken` (composes with the deadline token
        the service arms itself).
        """
        request = normalize_search_args(
            dataset,
            query,
            algorithm=algorithm,
            k=k,
            params=params,
            timeout=timeout,
            use_cache=use_cache,
        )
        if request.timeout is None:
            return self._execute(request, None, self._arm_token(request, token))
        future, record, armed = self._submit(request, token)
        return self._await(
            request, future, time.monotonic() + request.timeout, record, armed
        )

    def search_many(
        self,
        requests: Sequence[Union[QueryRequest, tuple]],
        *,
        timeout: Optional[float] = None,
        token: Optional[CancellationToken] = None,
    ) -> list[QueryResponse]:
        """Execute a batch concurrently; responses in request order.

        ``requests`` holds :class:`QueryRequest` objects or ``(dataset,
        query)`` / ``(dataset, query, algorithm)`` tuples.  ``timeout``
        is a default per-request deadline for requests without their
        own; each deadline is measured from batch submission.  A shared
        ``token`` cancels the whole batch at once.

        Never raises per-item: a malformed item (unknown algorithm,
        wrong shape) yields an error response in its slot and the rest
        of the batch still runs.
        """
        prepared: list[Union[QueryRequest, QueryResponse]] = []
        for raw in requests:
            try:
                prepared.append(coerce_request(raw, default_timeout=timeout))
            except Exception as exc:
                prepared.append(self._malformed_response(exc))
        submitted = time.monotonic()
        submissions = [
            self._submit(item, token) if isinstance(item, QueryRequest) else None
            for item in prepared
        ]
        responses: list[QueryResponse] = []
        for item, submission in zip(prepared, submissions):
            if submission is None or not isinstance(item, QueryRequest):
                assert isinstance(item, QueryResponse)
                responses.append(item)  # malformed: already a response
                continue
            future, record, armed = submission
            deadline = submitted + item.timeout if item.timeout is not None else None
            responses.append(self._await(item, future, deadline, record, armed))
        return responses

    def cancel(self, request_id: str) -> bool:
        """Cancel an in-flight request by its ``QueryRequest.request_id``.

        The running search stops at its next cooperative check and its
        response comes back through the normal path
        (``error_type="SearchCancelledError"``, carrying partial
        answers when the request set ``allow_partial``).  Returns True
        if a live request with that id was found.
        """
        with self._active_lock:
            armed = self._active.get(request_id)
        if armed is None:
            return False
        armed.cancel()
        return True

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def metrics(self, *, include_samples: bool = False) -> dict:
        """Latency percentiles, cache and error counters as a plain dict.

        ``include_samples=True`` adds the raw latency reservoirs (see
        :meth:`ServiceMetrics.export`) — what the cluster tier ships to
        its supervisor so merged percentiles are exact.
        """
        exported = self._metrics.export(include_samples=include_samples)
        exported["cache"] = self.cache.stats()
        with self._registry_lock:
            registered = sorted(
                self._engines.keys()
                | self._factories.keys()
                | self._mutable.keys()
            )
            built = sorted(self._engines.keys() | self._mutable.keys())
            versions = {
                name: self._effective_version_locked(name) for name in registered
            }
            exported["datasets"] = {
                "registered": registered,
                "built": built,
                "build_seconds": dict(sorted(self._build_seconds.items())),
                "versions": versions,
            }
            logs = dict(self._wals)
        if logs:
            exported["datasets"]["wal_seq"] = {
                name: log.last_seq for name, log in sorted(logs.items())
            }
        exported["registry"] = self.registry.export()
        return exported

    def reset_metrics(self) -> None:
        self._metrics.reset()

    def trace(self, trace_id: str) -> Optional[dict]:
        """The reconstructed span tree for ``trace_id``, or None (absent
        trace, or tracing disabled)."""
        return self.tracer.trace(trace_id) if self.tracer is not None else None

    def slow_queries(self) -> list[dict]:
        """Slow-query log entries, newest first (see :class:`SlowQueryLog`)."""
        return self.slow_log.entries()

    def events(self, since: int = 0) -> dict:
        """Operational events with ``seq > since`` plus the log head —
        the polling contract behind ``GET /debug/events?since=<seq>``."""
        return {
            "events": self.event_log.events(since),
            "last_seq": self.event_log.last_seq,
        }

    def profile_snapshot(self) -> Optional[dict]:
        """Cumulative collapsed-stack counts (None when profiling is
        off) — the wire shape workers ship to the supervisor."""
        return self.profiler.snapshot() if self.profiler is not None else None

    def profile(self, seconds: float = 2.0) -> Optional[str]:
        """Collapsed-stack text for the next ``seconds`` of sampling.

        Snapshot-diff over the always-on profiler: the caller's thread
        sleeps, the service keeps serving.  None when profiling is off.
        """
        if self.profiler is None:
            return None
        before = self.profiler.snapshot()
        time.sleep(max(0.0, seconds))
        after = self.profiler.snapshot()
        return render_collapsed(diff_profiles(before, after))

    def explain(self, request_id: str) -> Optional[dict]:
        """The retained explain report for ``request_id``, or None.

        Reports are kept in a bounded FIFO store; only requests that ran
        with ``explain=True`` (and carried a request id) leave one.
        """
        if self.explain_store is None:
            return None
        return self.explain_store.get(request_id)

    def query_stats(self) -> dict:
        """Workload analytics export: the top-K heavy-hitter sketch of
        per-fingerprint query counts, latency and cost vectors (the
        shape :func:`repro.telemetry.accounting.merge_sketch_exports`
        merges across replicas).  Empty-shaped when accounting is off.
        """
        if self.analytics is None:
            return {"capacity": 0, "total": 0, "floor": 0, "entries": []}
        return self.analytics.export()

    def slo_status(self) -> list[dict]:
        """Evaluate the configured objectives now and return their
        status (burn rates per window, firing state).  Empty when SLOs
        are disabled (``slo_objectives=()``)."""
        return self.slo.evaluate() if self.slo is not None else []

    def dashboard_data(self) -> dict:
        """Everything the ops dashboard renders, as one JSON-safe dict
        (see :func:`repro.telemetry.dashboard.render_dashboard`)."""
        exported = self.metrics()
        datasets = exported.get("datasets") or {}
        return {
            "service": type(self).__name__,
            "generated_at": time.time(),
            "health": {
                "status": "ok",
                "versions": datasets.get("versions") or {},
                "wal_seq": datasets.get("wal_seq") or {},
            },
            "metrics": {
                "requests_total": exported.get("requests_total"),
                "errors_total": exported.get("errors_total"),
                "cache_hit_rate": exported.get("cache_hit_rate"),
                "algorithms": algorithm_summary(exported.get("algorithms")),
            },
            "slo": self.slo_status(),
            "events": self.event_log.events(limit=50),
            "slow_queries": self.slow_queries()[:10],
            "queries": self.query_stats(),
            "profile": self.profile_snapshot(),
        }

    def close(self, *, wait: bool = True) -> None:
        """Shut the executor down (idempotent); engines stay usable.

        ``wait=False`` returns immediately, leaving any in-flight
        (e.g. deadline-abandoned) searches to finish on their worker
        threads in the background — the choice for callers whose own
        deadline matters more than a clean join.
        """
        if self.profiler is not None:
            self.profiler.stop()
        with self._executor_lock:
            self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=wait)
                self._executor = None
        with self._registry_lock:
            logs = list(self._wals.values()) + self._detached_wals
            self._detached_wals = []
        for log in logs:
            log.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _malformed_response(self, exc: Exception) -> QueryResponse:
        self._metrics.record_error("invalid-request", type(exc).__name__)
        return QueryResponse(
            request=None,
            error=str(exc),
            error_type=type(exc).__name__,
            exception=exc,
        )

    def _arm_token(
        self, request: QueryRequest, token: Optional[CancellationToken]
    ) -> Optional[CancellationToken]:
        """The token a request's search will tick, or None.

        Cooperative mode arms a fresh token per request — deadline from
        ``request.timeout`` (anchored now, i.e. at submission),
        ``check_every`` from the effective params, the caller's token
        as parent — so deadline expiry, explicit :meth:`cancel` and a
        caller-side cancel all stop the same search.  Non-cooperative
        mode forwards only the caller's token untouched.  A request
        with no cancellation source at all (no deadline, no caller
        token, no ``request_id``) runs token-free, which also keeps
        duck-typed engines without a ``token`` kwarg working.
        """
        if not self._cooperative:
            return token
        if (
            request.timeout is None
            and token is None
            and request.request_id is None
        ):
            return None
        if request.params is not None:
            interval = request.params.cancel_check_interval
        else:
            # Peek only at already-built engines: arming must not pay
            # (or serialize on) a lazy build — that happens on the
            # worker thread in _execute.
            with self._registry_lock:
                engine = self._engines.get(request.dataset)
                if engine is None:
                    live = self._mutable.get(request.dataset)
                    if live is not None:
                        engine = live.engine
            interval = (
                engine.params.cancel_check_interval
                if engine is not None
                else SearchParams().cancel_check_interval
            )
        deadline = (
            time.monotonic() + request.timeout
            if request.timeout is not None
            else None
        )
        return CancellationToken(
            deadline=deadline, check_every=interval, parent=token
        )

    def _submit(
        self, request: QueryRequest, token: Optional[CancellationToken] = None
    ) -> tuple[Future, _Once, Optional[CancellationToken]]:
        record = _Once()
        armed = self._arm_token(request, token)
        # Register for cancel() here, at submission — not when _execute
        # starts — so a request still *queued* behind a busy executor is
        # already cancellable (its pre-fired token then stops the search
        # at the first pop).  The cluster tier's cancel ring gives
        # queued requests the same treatment.
        registered = self._register_active(request, armed)
        try:
            with self._executor_lock:
                if self._closed:
                    raise RuntimeError("QueryService is closed")
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self._max_workers,
                        thread_name_prefix="repro-query",
                    )
                future = self._executor.submit(
                    self._execute, request, record, armed, time.time()
                )
                return future, record, armed
        except BaseException:
            if registered:
                self._unregister_active(request, armed)
            raise

    def _register_active(
        self, request: QueryRequest, token: Optional[CancellationToken]
    ) -> bool:
        if token is None or request.request_id is None:
            return False
        with self._active_lock:
            self._active[request.request_id] = token
        return True

    def _unregister_active(
        self, request: QueryRequest, token: Optional[CancellationToken]
    ) -> None:
        with self._active_lock:
            if self._active.get(request.request_id) is token:
                del self._active[request.request_id]

    def _await(
        self,
        request: QueryRequest,
        future: Future,
        deadline: Optional[float],
        record: Optional[_Once] = None,
        token: Optional[CancellationToken] = None,
    ) -> QueryResponse:
        if deadline is None:
            return future.result()
        remaining = deadline - time.monotonic()
        try:
            return future.result(timeout=max(remaining, 0.0))
        except FutureTimeoutError:
            pass
        if token is not None and self._cooperative:
            # Cooperative path: tell the search to stop (its own
            # deadline normally fired already; an explicit cancel also
            # covers a search armed late, e.g. behind a slow engine
            # build).  For partial-results requests, give the search a
            # grace period to hand back what it has — a few
            # milliseconds when checks run — then fall through to the
            # plain deadline response.  The cooperative guard matters:
            # in the control arm the token is the *caller's own*
            # (possibly shared across a batch), and firing it here
            # would cancel sibling searches in the mode that promises
            # run-to-completion.
            token.cancel("deadline")
            if request.allow_partial:
                try:
                    return future.result(timeout=self._cancel_grace)
                except FutureTimeoutError:  # pragma: no cover - stuck search
                    pass
        # The logical request is recorded exactly once; whoever wins
        # the claim — this deadline watcher or the still-running
        # worker — does the recording.
        if record is None or record.claim():
            self._metrics.record_error(
                request.algorithm, DeadlineExceededError.__name__
            )
        suffix = (
            "search stopping at its next cooperative check"
            if token is not None and self._cooperative
            else "search keeps running in the background"
        )
        return QueryResponse(
            request=request,
            error=f"deadline of {request.timeout}s exceeded ({suffix})",
            error_type=DeadlineExceededError.__name__,
            elapsed=request.timeout or 0.0,
            request_id=request.request_id,
            trace_id=request.trace_id,
        )

    def _execute(
        self,
        request: QueryRequest,
        record: Optional[_Once] = None,
        token: Optional[CancellationToken] = None,
        submitted_at: Optional[float] = None,
    ) -> QueryResponse:
        """Run one request, never raising — any failure (library error,
        broken factory, engine bug) becomes a structured error response,
        the contract :meth:`search_many` promises.  ``record``, when
        given, is the exactly-once metrics claim shared with the
        deadline watcher: if the watcher already recorded this request
        as a deadline miss, this worker stays silent (its result still
        refreshes the cache).  ``token`` is the armed cancellation
        token the search will tick."""
        # Re-registering here is an idempotent overwrite for executor
        # submissions (already registered at _submit time) and the
        # actual registration for the inline no-deadline path.
        registered = self._register_active(request, token)
        try:
            return self._execute_inner(request, record, token, submitted_at)
        finally:
            if registered:
                self._unregister_active(request, token)

    def _execute_inner(
        self,
        request: QueryRequest,
        record: Optional[_Once],
        token: Optional[CancellationToken],
        submitted_at: Optional[float] = None,
    ) -> QueryResponse:
        """Trace wrapper around :meth:`_run_request`: mints the trace id
        when the request carries none, opens the ``worker`` root span,
        synthesizes ``queue_wait`` from the executor hand-off gap, and
        stamps ``request_id`` / ``trace_id`` / ``spans`` onto whatever
        response comes back (every path, success or error)."""
        tracer = self.tracer
        if tracer is None:
            response = self._run_request(request, record, token, None)
            response.request_id = request.request_id
            response.trace_id = request.trace_id
            self._finalize_accounting(request, response)
            return response
        trace_id = request.trace_id or new_trace_id()
        root = tracer.start_span(
            "worker", trace_id=trace_id, parent_id=request.parent_span_id
        )
        if submitted_at is not None:
            root.child("queue_wait").end(
                duration=max(0.0, root.started_at - submitted_at)
            )
        try:
            response = self._run_request(request, record, token, root)
        except BaseException:
            root.end(status="error")
            raise
        root.set_attributes(
            {
                "dataset": request.dataset,
                "algorithm": request.algorithm,
                "cached": response.cached,
            }
        )
        if request.request_id is not None:
            root.set_attribute("request_id", request.request_id)
        if response.error_type is not None:
            root.set_attribute("error_type", response.error_type)
        root.end(status="ok" if response.ok else "error")
        response.request_id = request.request_id
        response.trace_id = trace_id
        response.spans = tracer.spans_for(trace_id)
        self._finalize_accounting(request, response)
        self._maybe_record_slow(request, response, trace_id)
        return response

    def _finalize_accounting(
        self, request: QueryRequest, response: QueryResponse
    ) -> None:
        """Fold one finished request into the accounting layer.

        Cache hits are skipped in the workload sketch — their cost was
        charged when the result was computed; charging the hit again
        would double-count the fingerprint's resource usage (latency of
        hits is already visible in the service metrics).
        """
        result = response.result
        if self.analytics is not None and not response.cached:
            costs = (
                result.stats.cost_vector()
                if result is not None and result.stats is not None
                else None
            )
            self.analytics.record(
                request_fingerprint(request),
                elapsed=response.elapsed,
                costs=costs,
            )
        if (
            self.explain_store is not None
            and result is not None
            and result.explain is not None
            and request.request_id is not None
        ):
            self.explain_store.put(request.request_id, result.explain)

    def _maybe_record_slow(
        self, request: QueryRequest, response: QueryResponse, trace_id: str
    ) -> None:
        if (
            self.slow_log.threshold is None
            or response.elapsed < self.slow_log.threshold
        ):
            return
        span_tree = (
            self.tracer.trace(trace_id) if self.tracer is not None else None
        )
        self.slow_log.record(
            elapsed=response.elapsed,
            trace_id=trace_id,
            request={
                "dataset": request.dataset,
                "query": (
                    request.query
                    if isinstance(request.query, str)
                    else list(request.query)
                ),
                "algorithm": request.algorithm,
                "request_id": request.request_id,
            },
            error_type=response.error_type,
            span_tree=span_tree,
            extra={
                "fingerprint": request_fingerprint(request),
                "explain_available": bool(
                    self.explain_store is not None
                    and request.request_id is not None
                    and self.explain_store.get(request.request_id) is not None
                ),
            },
        )

    @staticmethod
    def _call_engine(engine, request, run_params, token):
        # ``explain`` is passed only when asked for, so stub engines in
        # tests that don't accept the keyword keep working.
        kwargs = {"algorithm": request.algorithm, "params": run_params}
        if request.explain:
            kwargs["explain"] = True
        if token is not None:
            kwargs["token"] = token
        return engine.search(request.query, **kwargs)

    def _run_request(
        self,
        request: QueryRequest,
        record: Optional[_Once],
        token: Optional[CancellationToken],
        root,
    ) -> QueryResponse:
        start = time.perf_counter()
        try:
            # Version before engine: if a commit lands between the two
            # reads, a result computed on the *new* epoch gets cached
            # under the old (already unreachable) key — wasted space,
            # never a stale answer.  The opposite order could cache an
            # old epoch's answers under the new version.
            version = self.dataset_version(request.dataset)
            engine = self.engine(request.dataset)
            run_params = request.params if request.params is not None else engine.params
            if request.k is not None:
                run_params = run_params.with_(max_results=request.k)
            key = canonical_cache_key(
                request.dataset,
                request.query,
                request.algorithm,
                run_params,
                version=version,
            )
        except Exception as exc:
            return self._error_response(request, exc, start, record)

        if root is not None:
            root.set_attribute("dataset_version", version)
            wal = self._wals.get(request.dataset)
            if wal is not None:
                root.set_attribute("wal_seq", wal.last_seq)

        # An explain request must actually run the engine — a cached
        # result has no report to attach — so it skips the cache *read*
        # but still refreshes the cache (stripped) on the way out.
        if request.use_cache and not request.explain:
            cached = self.cache.get(key, _MISS)
            if cached is not _MISS:
                elapsed = time.perf_counter() - start
                if record is None or record.claim():
                    self._metrics.record_request(
                        request.algorithm, elapsed, cached=True
                    )
                if root is not None:
                    root.set_attribute("cache", "hit")
                return QueryResponse(
                    request=request, result=cached, cached=True, elapsed=elapsed
                )
        if root is not None:
            root.set_attribute(
                "cache",
                "miss" if request.use_cache and not request.explain else "bypass",
            )

        search = engine.search
        run_token = (
            token
            if token is not None
            and _accepts_token(getattr(search, "__func__", search))
            else None
        )
        engine_span = root.child("engine") if root is not None else None
        try:
            if engine_span is not None:
                with use_span(engine_span):
                    result = self._call_engine(
                        engine, request, run_params, run_token
                    )
                engine_span.end()
            else:
                result = self._call_engine(engine, request, run_params, run_token)
        except Exception as exc:
            if engine_span is not None:
                engine_span.end(status="error")
            return self._error_response(request, exc, start, record)
        if not result.complete:
            return self._cancelled_response(request, result, start, record, token)
        self.cache.put(
            key,
            replace(result, explain=None) if result.explain is not None else result,
        )
        elapsed = time.perf_counter() - start
        if record is None or record.claim():
            self._metrics.record_request(
                request.algorithm, elapsed, cached=False if request.use_cache else None
            )
        return QueryResponse(request=request, result=result, elapsed=elapsed)

    def _cancelled_response(
        self,
        request: QueryRequest,
        result: SearchResult,
        start: float,
        record: Optional[_Once],
        token: Optional[CancellationToken],
    ) -> QueryResponse:
        """The structured response for a cooperatively stopped search.

        Never cached: a ``complete=False`` result is an artifact of one
        request's deadline, not the query's answer.  The partial result
        rides along only when the request opted in via
        ``allow_partial``.
        """
        elapsed = time.perf_counter() - start
        now = time.monotonic()
        reason = result.cancel_reason or "cancelled"
        deadline = token.deadline if token is not None else None
        if reason == "deadline":
            error_type = DeadlineExceededError.__name__
            error = (
                f"deadline of {request.timeout}s exceeded; search stopped "
                f"cooperatively with {len(result.answers)} answers released"
            )
            exception: Exception = DeadlineExceededError(error)
            overrun = max(0.0, now - deadline) if deadline is not None else 0.0
            reclaimed = 0.0
        else:
            error_type = SearchCancelledError.__name__
            error = (
                f"search cancelled with {len(result.answers)} answers released"
            )
            exception = SearchCancelledError(reason)
            overrun = 0.0
            # The measurable win: the thread frees this far ahead of the
            # deadline budget it was allowed to burn.
            reclaimed = max(0.0, deadline - now) if deadline is not None else 0.0
        self._metrics.record_cancellation(
            reason,
            reclaimed_seconds=reclaimed,
            overrun_seconds=overrun,
        )
        self._note_cancellation(now, reason, request.dataset)
        if record is None or record.claim():
            self._metrics.record_error(request.algorithm, error_type)
        return QueryResponse(
            request=request,
            result=result if request.allow_partial else None,
            error=error,
            error_type=error_type,
            elapsed=elapsed,
            exception=exception,
        )

    def _note_cancellation(
        self, now: float, reason: str, dataset: Optional[str]
    ) -> None:
        """Feed the cancellation-storm detector; emit at most one
        ``cancellation_storm`` event per stormy window.  A burst of
        cancellations has one shared cause (a too-tight deadline after
        a deploy, a stuck shard) and deserves one operational event."""
        with self._cancel_storm_lock:
            window = self.CANCEL_STORM_WINDOW
            times = self._cancel_times
            times.append(now)
            while times and times[0] < now - window:
                times.popleft()
            count = len(times)
            if count < self.CANCEL_STORM_THRESHOLD or now < self._cancel_storm_until:
                return
            self._cancel_storm_until = now + window
        try:
            self.event_log.emit(
                "cancellation_storm",
                f"{count} cancellations in the last {window:g}s "
                f"(latest: {reason})",
                severity="warning",
                dataset=dataset,
                source="service",
                count=count,
                window=window,
                reason=reason,
            )
        except Exception:  # pragma: no cover - observability never breaks serving
            pass

    def _error_response(
        self,
        request: QueryRequest,
        exc: Exception,
        start: float,
        record: Optional[_Once] = None,
    ) -> QueryResponse:
        if record is None or record.claim():
            self._metrics.record_error(request.algorithm, type(exc).__name__)
        return QueryResponse(
            request=request,
            error=str(exc),
            error_type=type(exc).__name__,
            elapsed=time.perf_counter() - start,
            exception=exc,
        )
