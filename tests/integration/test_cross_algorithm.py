"""Cross-algorithm agreement on random graphs, with the oracle as judge.

At full exhaustion (huge top-k, no budget, dmax above the diameter) all
three algorithms must agree with the exhaustive oracle on the best
answer, and every answer each emits must be a valid tree whose score
matches the oracle's score for that skeleton.
"""

import random

import pytest

from repro.core.backward_mi import BackwardExpandingSearch
from repro.core.backward_si import SingleIteratorBackwardSearch
from repro.core.bidirectional import BidirectionalSearch
from repro.core.exhaustive import exhaustive_answers
from repro.core.params import SearchParams

from tests.helpers import random_data_graph, random_keyword_sets, validate_answer_tree

ALGORITHMS = [
    BidirectionalSearch,
    SingleIteratorBackwardSearch,
    BackwardExpandingSearch,
]

EXHAUST = SearchParams(max_results=500, dmax=40, max_combos_per_node=512)


def oracle_scores(graph, keyword_sets):
    return {
        tree.signature(): tree.score
        for tree in exhaustive_answers(graph, keyword_sets)
    }


@pytest.mark.parametrize("seed", range(8))
def test_algorithms_agree_with_oracle(seed):
    rng = random.Random(seed)
    graph = random_data_graph(
        rng, n_nodes=rng.randint(8, 20), n_edges=rng.randint(10, 35)
    )
    k = rng.randint(1, 3)
    keyword_sets = random_keyword_sets(rng, graph, k=k, max_size=3)
    oracle = exhaustive_answers(graph, keyword_sets)
    by_signature = {tree.signature(): tree for tree in oracle}

    for cls in ALGORITHMS:
        result = cls(
            graph,
            tuple(f"k{i}" for i in range(k)),
            keyword_sets,
            params=EXHAUST,
        ).run()
        label = cls.algorithm

        if not oracle:
            assert not result.answers, f"{label} invented answers"
            continue
        assert result.answers, f"{label} found nothing; oracle has {len(oracle)}"
        # The single-iterator algorithms share the oracle's answer model
        # (shortest path per keyword per root) so the best scores agree
        # exactly; MI-Backward keeps per-*origin* paths (paper Section
        # 4.6) and may therefore find strictly better-scoring trees, but
        # never worse.
        if cls is BackwardExpandingSearch:
            assert result.best().score >= oracle[0].score - 1e-9, label
        else:
            assert result.best().score == pytest.approx(oracle[0].score), label
        for answer in result.answers:
            validate_answer_tree(graph, keyword_sets, answer.tree)


@pytest.mark.parametrize("seed", range(4))
def test_oracle_answers_appear_in_all_outputs(seed):
    """Every oracle tree is found by every algorithm at exhaustion
    (algorithms may emit additional superseded-path trees on top)."""
    rng = random.Random(100 + seed)
    graph = random_data_graph(rng, n_nodes=12, n_edges=20)
    keyword_sets = random_keyword_sets(rng, graph, k=2, max_size=2)
    oracle_signatures = {
        tree.signature() for tree in exhaustive_answers(graph, keyword_sets)
    }
    for cls in (SingleIteratorBackwardSearch, BidirectionalSearch):
        result = cls(graph, ("a", "b"), keyword_sets, params=EXHAUST).run()
        assert oracle_signatures <= set(result.signatures()), cls.algorithm


@pytest.mark.parametrize("seed", range(4))
def test_output_scores_nearly_sorted_at_exhaustion(seed):
    """Section 5.7's empirical claim: answers come out in (almost)
    correct order.  SI/Bidirectional are exactly sorted here; MI's
    richer per-origin emission may produce a stray small inversion
    (the paper's 'almost all queries'), so it gets slack."""
    rng = random.Random(200 + seed)
    graph = random_data_graph(rng, n_nodes=14, n_edges=24)
    keyword_sets = random_keyword_sets(rng, graph, k=2, max_size=2)
    for cls in ALGORITHMS:
        result = cls(graph, ("a", "b"), keyword_sets, params=EXHAUST).run()
        scores = result.scores()
        inversions = [
            b - a for a, b in zip(scores, scores[1:]) if b > a + 1e-9
        ]
        if cls is BackwardExpandingSearch:
            assert len(inversions) <= max(1, len(scores) // 5), cls.algorithm
            if scores and inversions:
                assert max(inversions) < 0.1 * scores[0], cls.algorithm
        else:
            assert not inversions, cls.algorithm
