"""Float64 CSR views of a :class:`~repro.graph.searchgraph.SearchGraph`.

The graph's own ``csr_arrays()`` is the paper's compact ``16|V| + 8|E|``
index — ``float32`` weights, out-adjacency only.  The kernels need
more: exact ``float64`` weights (so batched relaxation is bit-identical
to the python floats the dict-based tables use), *both* adjacency
directions, and a deduplicated "parent" adjacency for the ATTACH /
ACTIVATE cascades (parallel edges collapsed to their minimum weight at
the first occurrence position — mirroring the explored-parents bucket
``P[v]`` the dict-based :class:`~repro.core.pathtable.PathTable`
accumulates once a node's edges are fully explored).

Edge order inside every row matches ``graph.in_edges`` /
``graph.out_edges`` exactly; that shared order is what makes the
scalar and vectorized kernels produce identical candidate sequences.

Built lazily and cached on the graph instance (graphs are immutable;
mutations produce new graph objects, so the cache can never go stale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GraphCSR", "graph_csr", "parent_rows", "norm_list"]

_CACHE_ATTR = "_kernels_csr_cache"


@dataclass(frozen=True)
class GraphCSR:
    """Immutable kernel-side arrays for one graph."""

    n: int
    # in-adjacency: edges (src -> v) grouped by v, graph order.
    in_indptr: np.ndarray  # int64, n + 1
    in_src: np.ndarray  # int32, m
    in_w: np.ndarray  # float64, m
    # out-adjacency: edges (u -> dst) grouped by u, graph order.
    out_indptr: np.ndarray  # int64, n + 1
    out_dst: np.ndarray  # int32, m
    out_w: np.ndarray  # float64, m
    # parent adjacency: in-adjacency with parallel edges collapsed to
    # the minimum weight, first-occurrence order (the cascade map).
    par_indptr: np.ndarray  # int64, n + 1
    par_src: np.ndarray  # int32, <= m
    par_w: np.ndarray  # float64, <= m
    # activation normalizers sum(1/w) and structural degrees.
    in_norm: np.ndarray  # float64, n
    out_norm: np.ndarray  # float64, n
    in_degree: np.ndarray  # int64, n
    out_degree: np.ndarray  # int64, n
    prestige: np.ndarray  # float64, n


def parent_rows(csr: GraphCSR) -> list[list[tuple[int, float]]]:
    """The parent adjacency as python lists of ``(src, weight)`` tuples.

    The ATTACH/ACTIVATE cascades touch a handful of tiny rows per
    event; python tuples beat numpy slicing at that grain by an order
    of magnitude.  Weights round-trip through ``tolist()`` so the
    floats are exactly the ``par_w`` values.  Built once per graph and
    cached on the (immutable) CSR.
    """
    cached = getattr(csr, "_parent_rows", None)
    if cached is not None:
        return cached
    indptr = csr.par_indptr.tolist()
    src = csr.par_src.tolist()
    w = csr.par_w.tolist()
    rows = [
        list(zip(src[indptr[v] : indptr[v + 1]], w[indptr[v] : indptr[v + 1]]))
        for v in range(csr.n)
    ]
    object.__setattr__(csr, "_parent_rows", rows)
    return rows


def norm_list(csr: GraphCSR) -> list[float]:
    """``in_norm`` as a python float list (cascade-side scalar reads)."""
    cached = getattr(csr, "_norm_list", None)
    if cached is not None:
        return cached
    out = csr.in_norm.tolist()
    object.__setattr__(csr, "_norm_list", out)
    return out


def _build_side(rows) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    n = len(rows)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for v, edges in enumerate(rows):
        indptr[v + 1] = indptr[v] + len(edges)
    m = int(indptr[-1])
    nbr = np.zeros(m, dtype=np.int32)
    w = np.zeros(m, dtype=np.float64)
    pos = 0
    for edges in rows:
        for other, weight, _ in edges:
            nbr[pos] = other
            w[pos] = weight
            pos += 1
    return indptr, nbr, w


def _build_parents(rows) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dedup each in-adjacency row: first-occurrence order, min weight."""
    n = len(rows)
    src_rows: list[list[int]] = []
    w_rows: list[list[float]] = []
    for edges in rows:
        bucket: dict[int, float] = {}
        for u, weight, _ in edges:
            prev = bucket.get(u)
            if prev is None or weight < prev:
                bucket[u] = weight
        src_rows.append(list(bucket.keys()))
        w_rows.append(list(bucket.values()))
    indptr = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        indptr[v + 1] = indptr[v] + len(src_rows[v])
    m = int(indptr[-1])
    src = np.zeros(m, dtype=np.int32)
    w = np.zeros(m, dtype=np.float64)
    pos = 0
    for v in range(n):
        for u, weight in zip(src_rows[v], w_rows[v]):
            src[pos] = u
            w[pos] = weight
            pos += 1
    return indptr, src, w


def _build_parents_from_arrays(
    indptr: np.ndarray, src: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`_build_parents` over raw CSR arrays instead of edge rows.

    Same dedup semantics (first-occurrence order, min weight per
    parallel-edge group); row order is already the graph's, so the
    result matches the row-based builder exactly."""
    bounds = indptr.tolist()
    flat_src = src.tolist()
    flat_w = w.tolist()
    n = len(bounds) - 1
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    src_rows: list[list[int]] = []
    w_rows: list[list[float]] = []
    for v in range(n):
        bucket: dict[int, float] = {}
        for u, weight in zip(
            flat_src[bounds[v] : bounds[v + 1]], flat_w[bounds[v] : bounds[v + 1]]
        ):
            prev = bucket.get(u)
            if prev is None or weight < prev:
                bucket[u] = weight
        src_rows.append(list(bucket.keys()))
        w_rows.append(list(bucket.values()))
        out_indptr[v + 1] = out_indptr[v] + len(bucket)
    m = int(out_indptr[-1])
    par_src = np.zeros(m, dtype=np.int32)
    par_w = np.zeros(m, dtype=np.float64)
    pos = 0
    for v in range(n):
        for u, weight in zip(src_rows[v], w_rows[v]):
            par_src[pos] = u
            par_w[pos] = weight
            pos += 1
    return out_indptr, par_src, par_w


def graph_csr(graph) -> GraphCSR:
    """The graph's kernel CSR, built on first use and cached on it.

    Mapped graphs (:class:`~repro.storage.MappedSearchGraph`) expose
    their on-disk CSR sides directly via ``_mapped_csr_sides()`` —
    the snapshot stores edges in original graph row order, so those
    arrays *are* what ``_build_side`` would produce, without
    materializing a single adjacency row.  Only the parent dedup still
    walks the in-side edge data (streamed from the map, not retained)."""
    cached = getattr(graph, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    n = graph.num_nodes
    sides = getattr(graph, "_mapped_csr_sides", None)
    if sides is not None:
        raw = sides()
        in_indptr, in_src, in_w = raw["in_indptr"], raw["in_src"], raw["in_w"]
        out_indptr, out_dst, out_w = (
            raw["out_indptr"], raw["out_dst"], raw["out_w"],
        )
        par_indptr, par_src, par_w = _build_parents_from_arrays(
            in_indptr, in_src, in_w
        )
    else:
        in_rows = [graph.in_edges(v) for v in range(n)]
        out_rows = [graph.out_edges(u) for u in range(n)]
        in_indptr, in_src, in_w = _build_side(in_rows)
        out_indptr, out_dst, out_w = _build_side(out_rows)
        par_indptr, par_src, par_w = _build_parents(in_rows)
    csr = GraphCSR(
        n=n,
        in_indptr=in_indptr,
        in_src=in_src,
        in_w=in_w,
        out_indptr=out_indptr,
        out_dst=out_dst,
        out_w=out_w,
        par_indptr=par_indptr,
        par_src=par_src,
        par_w=par_w,
        in_norm=np.array(
            [graph.in_inv_weight_sum(v) for v in range(n)], dtype=np.float64
        ),
        out_norm=np.array(
            [graph.out_inv_weight_sum(u) for u in range(n)], dtype=np.float64
        ),
        in_degree=np.diff(in_indptr),
        out_degree=np.diff(out_indptr),
        prestige=np.asarray(graph.prestige, dtype=np.float64),
    )
    try:
        setattr(graph, _CACHE_ATTR, csr)
    except AttributeError:  # pragma: no cover - exotic graph wrappers
        pass
    return csr
