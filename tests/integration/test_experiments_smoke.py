"""Smoke tests: every experiment runs at tiny scale and yields a table.

These keep the harness honest without paying bench-level runtimes; the
real numbers come from ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro.experiments import REGISTRY
from repro.experiments.ablations import (
    run_ablation_activation,
    run_ablation_bounds,
    run_ablation_dmax,
)
from repro.experiments.common import Report, build_bench, fmt, geomean, safe_ratio
from repro.experiments.fig6 import run_fig6b, run_fig6c
from repro.experiments.figure4 import run_figure4
from repro.experiments.memory import run_memory, run_prestige
from repro.experiments.recall_precision import run_recall_precision


class TestCommon:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(3) == "3"
        assert fmt(3.14159) == "3.14"
        assert fmt(12.3456) == "12.3"
        assert fmt(1234.5) == "1234"
        assert fmt(float("nan")) == "-"
        assert fmt(0.0) == "0"

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) is None
        assert geomean([0.0]) is None

    def test_safe_ratio(self):
        assert safe_ratio(4.0, 2.0) == pytest.approx(2.0)
        assert safe_ratio(None, 2.0) is None
        assert safe_ratio(1.0, 0.0) > 1e6  # clamped, not infinite

    def test_report_render(self):
        report = Report("X", "title", ["a", "bb"], [["1", "2"]], ["note"])
        text = report.render()
        assert "== X: title ==" in text
        assert "note: note" in text

    def test_build_bench_cached(self):
        a = build_bench("dblp", 0.1)
        b = build_bench("dblp", 0.1)
        assert a is b
        assert a.engine.graph.num_nodes > 0

    def test_build_bench_unknown_dataset(self):
        with pytest.raises(ValueError):
            build_bench("wikipedia")


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig4", "fig5", "fig6a", "fig6b", "fig6c", "rp", "mem",
            "prestige", "abl-activation", "abl-dmax", "abl-bounds",
        }
        assert set(REGISTRY) == expected


class TestTinyRuns:
    def test_fig4(self):
        report = run_figure4()
        assert report.rows

    def test_fig6b_tiny(self):
        report = run_fig6b(scale=0.15, queries_per_point=1, keyword_range=(2, 3))
        assert len(report.rows) == 2

    def test_fig6c_tiny(self):
        report = run_fig6c(scale=0.15, queries_per_point=1)
        assert len(report.rows) == 8

    def test_rp_tiny(self):
        report = run_recall_precision(scale=0.15, n_queries=2)
        assert len(report.rows) == 3

    def test_memory_tiny(self):
        report = run_memory(scales=(0.15,))
        assert len(report.rows) == 3

    def test_prestige_tiny(self):
        report = run_prestige(scales=(0.15,))
        assert len(report.rows) == 1

    def test_ablation_activation_tiny(self):
        report = run_ablation_activation(scale=0.15, n_queries=2, mus=(0.5,))
        assert len(report.rows) == 2

    def test_ablation_dmax_tiny(self):
        report = run_ablation_dmax(scale=0.15, n_queries=2, dmaxes=(4, 8))
        assert len(report.rows) == 2

    def test_ablation_bounds_tiny(self):
        report = run_ablation_bounds(scale=0.15, n_queries=2)
        assert len(report.rows) == 2


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2

    def test_run_one(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out
