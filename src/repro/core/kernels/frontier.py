"""Vectorized batch-pop priority frontier (dense, node-indexed).

The batched engines replace the lazy binary heaps with a flat array
structure: one priority slot per graph node, a boolean membership mask,
and an insertion sequence number for deterministic tie-breaking.
``pop_batch(b)`` extracts the ``b`` best live entries in one
``argpartition`` + ``lexsort`` pass — O(frontier) per *batch* instead
of O(log frontier) per *pop*, and entirely in numpy.

Determinism contract (shared by every kernel backend): pops order by
``(priority, seq)`` — seq assigned on first insertion and on every
:meth:`push` re-insertion (mirroring the lazy heaps' push-on-update),
while :meth:`update_many` reprioritizes *without* bumping seq (the
batched engines' deferred decrease/increase-key, applied in bulk at
batch end where arrival order is meaningless).

An optional per-node integer ``cost`` vector (e.g. degree) is summed
incrementally over the live set — the bidirectional engine's
``"fanout"`` balancing rule reads :attr:`cost_sum` to estimate which
side is structurally cheaper to expand.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["VectorFrontier"]

_EMPTY = np.zeros(0, dtype=np.int64)


class VectorFrontier:
    """Dense min- or max-frontier over nodes ``0..n-1`` with batch pops."""

    def __init__(
        self, n: int, kind: str = "min", cost: Optional[np.ndarray] = None
    ) -> None:
        if kind not in ("min", "max"):
            raise ValueError(f"kind must be 'min' or 'max', got {kind!r}")
        self._sign = 1.0 if kind == "min" else -1.0
        # Signed priority; +inf marks an absent node so selection can
        # ignore membership without a second mask read.
        self._key = np.full(n, np.inf, dtype=np.float64)
        self._prio = np.zeros(n, dtype=np.float64)
        self._seq = np.zeros(n, dtype=np.int64)
        self._in = np.zeros(n, dtype=bool)
        self._count = 0
        self._next_seq = 0
        self._cost = cost
        self.cost_sum = 0

    # ------------------------------------------------------------------
    def push(self, node: int, priority: float) -> None:
        """Insert or re-prioritize one node (seq bumps either way)."""
        if not self._in[node]:
            self._in[node] = True
            self._count += 1
            if self._cost is not None:
                self.cost_sum += int(self._cost[node])
        self._prio[node] = priority
        self._key[node] = self._sign * priority
        self._seq[node] = self._next_seq
        self._next_seq += 1

    def push_many(self, nodes: np.ndarray, priorities: np.ndarray) -> int:
        """Bulk :meth:`push` of *unique* nodes; seq follows array order.

        Returns how many nodes were newly inserted (the ``touched``
        count for stats).
        """
        m = len(nodes)
        if m == 0:
            return 0
        fresh = ~self._in[nodes]
        new = int(fresh.sum())
        self._in[nodes] = True
        self._count += new
        if self._cost is not None and new:
            self.cost_sum += int(self._cost[nodes[fresh]].sum())
        self._prio[nodes] = priorities
        self._key[nodes] = self._sign * priorities
        self._seq[nodes] = np.arange(
            self._next_seq, self._next_seq + m, dtype=np.int64
        )
        self._next_seq += m
        return new

    def update_many(self, nodes: np.ndarray, priorities: np.ndarray) -> None:
        """Reprioritize live nodes in bulk (seq preserved).

        Callers pass only nodes currently in the frontier.
        """
        if len(nodes) == 0:
            return
        self._prio[nodes] = priorities
        self._key[nodes] = self._sign * priorities

    # ------------------------------------------------------------------
    def pop_batch(self, b: int) -> np.ndarray:
        """Remove and return up to ``b`` nodes, best ``(priority, seq)``
        first; the returned array is in pop order."""
        if b < 1 or self._count == 0:
            return _EMPTY
        live = np.flatnonzero(self._in)
        k = min(b, live.size)
        keys = self._key[live]
        if k < live.size:
            part = np.argpartition(keys, k - 1)[:k]
            boundary = keys[part].max()
            cand = live[keys <= boundary]
        else:
            cand = live
        order = np.lexsort((self._seq[cand], self._key[cand]))
        chosen = cand[order[:k]]
        self._in[chosen] = False
        self._key[chosen] = np.inf
        self._count -= k
        if self._cost is not None:
            self.cost_sum -= int(self._cost[chosen].sum())
        return chosen.astype(np.int64, copy=False)

    # ------------------------------------------------------------------
    def peek_priority(self) -> Optional[float]:
        """Best live priority, or None when empty."""
        if self._count == 0:
            return None
        return float(self._sign * self._key.min())

    def live_nodes(self) -> np.ndarray:
        """Live node ids, ascending (the bound computation's frontier)."""
        return np.flatnonzero(self._in)

    @property
    def contains_mask(self) -> np.ndarray:
        """Boolean membership mask (read-only by convention)."""
        return self._in

    def __contains__(self, node: int) -> bool:
        return bool(self._in[node])

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0
