"""Property: cancellation yields a prefix of the uncancelled answer stream.

The searches are deterministic for a fixed engine/query/params, and the
Section 4.5 bound releases answers monotonically — so stopping a run
after *any* number of pops must leave exactly the answers a full run
would have released by that point, in the same order.  That is the
whole partial-results contract: a deadline can cost you answers, never
reorder or corrupt them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cancellation import CancellationToken
from repro.core.engine import KeywordSearchEngine

from tests.conftest import make_toy_db

QUERIES = ["gray transaction", "transaction system", "gray vldb", "postgres sigmod"]
ALGORITHMS = ["bidirectional", "si-backward", "mi-backward"]


@pytest.fixture(scope="module")
def engine() -> KeywordSearchEngine:
    return KeywordSearchEngine.from_database(make_toy_db())


@pytest.fixture(scope="module")
def full_runs(engine) -> dict:
    """Uncancelled reference runs, computed once per (query, algorithm)."""
    return {
        (query, algorithm): engine.search(query, algorithm=algorithm)
        for query in QUERIES
        for algorithm in ALGORITHMS
    }


@settings(max_examples=60, deadline=None)
@given(
    query=st.sampled_from(QUERIES),
    algorithm=st.sampled_from(ALGORITHMS),
    cancel_after=st.integers(min_value=0, max_value=120),
)
def test_cancelled_run_is_prefix_of_full_run(
    engine, full_runs, query, algorithm, cancel_after
):
    full = full_runs[(query, algorithm)]
    token = CancellationToken(cancel_at_tick=cancel_after, check_every=1)
    part = engine.search(query, algorithm=algorithm, token=token)

    if part.complete:
        # The search finished before tick `cancel_after`: it must be
        # the full run, bit for bit.
        assert part.signatures() == full.signatures()
        assert part.scores() == full.scores()
        assert part.cancel_reason is None
    else:
        assert part.cancel_reason == "cancelled"
        prefix = len(part.answers)
        assert prefix <= len(full.answers)
        assert part.signatures() == full.signatures()[:prefix]
        assert part.scores() == full.scores()[:prefix]
        # Bounded responsiveness: with check_every=1 the loop stops at
        # the pop the token fires on (+1 for loop structure slack).
        assert part.stats.nodes_explored <= cancel_after + 1
