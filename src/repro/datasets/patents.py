"""Synthetic US-Patent-shaped database (substrate S14).

Patents with assignee company hub nodes (Microsoft holds thousands of
patents — query UQ1's shape), inventors through ``invents`` link
tuples, and patent-to-patent citations.  The paper's subset had 4M
nodes / 15M edges; this generator reproduces the shape scaled down
(DESIGN.md Section 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.names import NamePool
from repro.datasets.vocab import make_vocabulary
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, Schema, Table

__all__ = ["PatentsConfig", "PATENTS_SCHEMA", "make_patents"]

PATENT_WORDS: tuple[str, ...] = (
    "method", "apparatus", "system", "device", "circuit", "signal",
    "recovery", "process", "semiconductor", "memory", "display", "laser",
    "polymer", "catalyst", "compound", "valve", "sensor", "battery",
    "antenna", "module", "interface", "controller", "encoder", "filter",
    "amplifier", "transducer", "actuator", "composite", "coating",
    "membrane", "turbine", "engine", "brake", "gear", "pump", "nozzle",
)

PATENTS_SCHEMA = Schema(
    tables=(
        Table("company", ("id", "name"), text_columns=("name",)),
        Table("inventor", ("id", "name"), text_columns=("name",)),
        Table(
            "patent",
            ("id", "title", "year", "company_id"),
            text_columns=("title",),
        ),
        Table("invents", ("id", "inventor_id", "patent_id")),
        Table("pcites", ("id", "citing_id", "cited_id")),
    ),
    foreign_keys=(
        ForeignKey("patent", "company_id", "company"),
        ForeignKey("invents", "inventor_id", "inventor"),
        ForeignKey("invents", "patent_id", "patent"),
        ForeignKey("pcites", "citing_id", "patent"),
        ForeignKey("pcites", "cited_id", "patent"),
    ),
)


@dataclass(frozen=True)
class PatentsConfig:
    """Size knobs for the generated patent database."""

    n_companies: int = 10
    n_inventors: int = 250
    n_patents: int = 500
    max_inventors_per_patent: int = 3
    mean_citations: float = 1.5
    vocabulary_size: int = 300
    seed: int = 13

    def scaled(self, factor: float) -> "PatentsConfig":
        return PatentsConfig(
            n_companies=max(3, int(self.n_companies * min(factor, 3.0))),
            n_inventors=max(10, int(self.n_inventors * factor)),
            n_patents=max(20, int(self.n_patents * factor)),
            max_inventors_per_patent=self.max_inventors_per_patent,
            mean_citations=self.mean_citations,
            vocabulary_size=max(40, int(self.vocabulary_size * factor)),
            seed=self.seed,
        )


def make_patents(config: PatentsConfig = PatentsConfig()) -> Database:
    """Generate a deterministic patent database for ``config``."""
    rng = random.Random(config.seed)
    vocab = make_vocabulary(
        config.vocabulary_size, head=PATENT_WORDS, tail_prefix="claim"
    )
    names = NamePool(rare_last_fraction=0.35)
    db = Database(PATENTS_SCHEMA)

    for company_id in range(1, config.n_companies + 1):
        db.insert(
            "company",
            {"id": company_id, "name": names.company(rng, company_id - 1)},
        )

    for inventor_id in range(1, config.n_inventors + 1):
        db.insert("inventor", {"id": inventor_id, "name": names.person(rng)})

    # A couple of mega-assignees hold most patents (hub fan-in).
    company_weights = [
        1.0 / (rank ** 1.2) for rank in range(1, config.n_companies + 1)
    ]
    productivity = [1] * (config.n_inventors + 1)

    invents_id = 0
    for patent_id in range(1, config.n_patents + 1):
        db.insert(
            "patent",
            {
                "id": patent_id,
                "title": vocab.phrase(rng, 3, 6),
                "year": rng.randint(1975, 2004),
                "company_id": rng.choices(
                    range(1, config.n_companies + 1), weights=company_weights
                )[0],
            },
        )
        team = rng.randint(1, config.max_inventors_per_patent)
        chosen: set[int] = set()
        for _ in range(team):
            inventor_id = rng.choices(
                range(1, config.n_inventors + 1), weights=productivity[1:]
            )[0]
            if inventor_id in chosen:
                continue
            chosen.add(inventor_id)
            productivity[inventor_id] += 2
            invents_id += 1
            db.insert(
                "invents",
                {
                    "id": invents_id,
                    "inventor_id": inventor_id,
                    "patent_id": patent_id,
                },
            )

    cite_weight = [1] * (config.n_patents + 1)
    pcites_id = 0
    for patent_id in range(2, config.n_patents + 1):
        n_cites = min(
            patent_id - 1, rng.randint(0, int(2 * config.mean_citations))
        )
        cited_chosen: set[int] = set()
        for _ in range(n_cites):
            cited = rng.choices(
                range(1, patent_id), weights=cite_weight[1:patent_id]
            )[0]
            if cited in cited_chosen:
                continue
            cited_chosen.add(cited)
            cite_weight[cited] += 1
            pcites_id += 1
            db.insert(
                "pcites",
                {"id": pcites_id, "citing_id": patent_id, "cited_id": cited},
            )
    return db
