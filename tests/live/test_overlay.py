"""Overlay views: per-operation equivalence with a from-scratch rebuild."""

import numpy as np
import pytest

from repro.errors import MutationError, UnknownNodeError
from repro.live import MutableDataset
from repro.live.mutations import AddEdge, AddNode, RemoveEdge, UpdateText

from tests.live.conftest import (
    assert_same_graph,
    assert_same_index,
    replay,
)


def mutate_both(dataset, model, mutations):
    """Apply the batch to both the overlay and the replay reference,
    returning (overlay epoch, rebuilt engine)."""
    outcome = dataset.mutate(mutations)
    new_nodes = replay(model, mutations)
    assert list(outcome.new_nodes) == new_nodes
    rebuilt = model.build(prestige=outcome.epoch.graph.prestige)
    return outcome.epoch, rebuilt


class TestStructuralEquivalence:
    def test_add_isolated_node(self, toy_dataset, toy_model):
        epoch, rebuilt = mutate_both(
            toy_dataset,
            toy_model,
            [AddNode(label="Lone Node", table="paper", text="orphan topic")],
        )
        assert_same_graph(epoch.graph, rebuilt.graph)
        assert_same_index(epoch.index, rebuilt.index, extra_terms=["orphan"])

    def test_add_edge_reweights_hub_backward_edges(self, toy_dataset, toy_model):
        # Conference node 4 (VLDB) already has incoming paper edges;
        # raising its indegree must reweight *all* of its backward
        # edges (w * log2(1 + indegree)), including at the partners.
        epoch, rebuilt = mutate_both(
            toy_dataset,
            toy_model,
            [
                AddNode(label="P99", table="paper", text="late breaking paper"),
                AddEdge(u=-1, v=3),
            ],
        )
        assert_same_graph(epoch.graph, rebuilt.graph)
        assert_same_index(epoch.index, rebuilt.index)

    def test_remove_edge_reweights_down(self, toy_dataset, toy_model):
        # cites row 8 in the toy graph? remove a FK edge that exists:
        # paper 5 -> conference 3 ("The Transaction Concept" -> VLDB).
        epoch, rebuilt = mutate_both(toy_dataset, toy_model, [RemoveEdge(u=5, v=3)])
        assert_same_graph(epoch.graph, rebuilt.graph)

    def test_parallel_edges_same_weight(self, toy_dataset, toy_model):
        batch = [
            AddNode(label="A", text="parallel alpha"),
            AddNode(label="B", text="parallel beta"),
            AddEdge(u=-1, v=-2),
            AddEdge(u=-1, v=-2),
            AddEdge(u=-1, v=-2, weight=3.0),
            RemoveEdge(u=-1, v=-2),  # earliest of the three
        ]
        epoch, rebuilt = mutate_both(toy_dataset, toy_model, batch)
        assert_same_graph(epoch.graph, rebuilt.graph)

    def test_remove_by_weight_picks_matching_edge(self, toy_dataset, toy_model):
        batch = [
            AddNode(label="A"),
            AddNode(label="B"),
            AddEdge(u=-1, v=-2, weight=1.0),
            AddEdge(u=-1, v=-2, weight=3.0),
            RemoveEdge(u=-1, v=-2, weight=3.0),
        ]
        epoch, rebuilt = mutate_both(toy_dataset, toy_model, batch)
        assert_same_graph(epoch.graph, rebuilt.graph)

    def test_update_text_moves_postings(self, toy_dataset, toy_model):
        epoch, rebuilt = mutate_both(
            toy_dataset, toy_model, [UpdateText(node=7, text="fresh wording here")]
        )
        assert_same_index(
            epoch.index, rebuilt.index, extra_terms=["fresh", "postgres", "design"]
        )
        assert 7 in epoch.index.lookup("fresh")
        assert 7 not in epoch.index.lookup("postgres")

    def test_many_commits_accumulate(self, toy_dataset, toy_model):
        for i, batch in enumerate(
            [
                [AddNode(label=f"N{i}", table="paper", text=f"uniqueword{i}")]
                for i in range(4)
            ]
        ):
            epoch, rebuilt = mutate_both(toy_dataset, toy_model, batch)
            assert epoch.version == i + 1
        node = toy_dataset.graph.num_nodes - 1
        toy_dataset.mutate([AddEdge(u=node, v=3), AddEdge(u=node - 1, v=node)])
        replay(
            toy_model, [AddEdge(u=node, v=3), AddEdge(u=node - 1, v=node)]
        )
        rebuilt = toy_model.build(prestige=toy_dataset.graph.prestige)
        assert_same_graph(toy_dataset.graph, rebuilt.graph)


class TestOverlayGraphApi:
    def test_node_by_ref_covers_extension(self, toy_dataset):
        outcome = toy_dataset.mutate(
            [AddNode(label="X", table="paper", ref=("paper", 1234))]
        )
        graph = toy_dataset.graph
        assert graph.node_by_ref("paper", 1234) == outcome.new_nodes[0]
        # base refs still resolve
        assert graph.ref(graph.node_by_ref("paper", 1)) == ("paper", 1)
        with pytest.raises(KeyError):
            graph.node_by_ref("paper", 999999)

    def test_unknown_node_raises(self, toy_dataset):
        toy_dataset.mutate([AddNode(label="X")])
        graph = toy_dataset.graph
        with pytest.raises(UnknownNodeError):
            graph.out_edges(graph.num_nodes)
        with pytest.raises(UnknownNodeError):
            graph.label(graph.num_nodes)

    def test_prestige_vector_and_max(self, toy_dataset, toy_engine):
        base_max = toy_engine.graph.max_prestige
        toy_dataset.mutate([AddNode(label="X")])
        graph = toy_dataset.graph
        vec = graph.prestige
        assert vec.shape == (graph.num_nodes,)
        assert not vec.flags.writeable
        np.testing.assert_array_equal(
            vec[: toy_engine.graph.num_nodes], toy_engine.graph.prestige
        )
        assert graph.max_prestige == max(base_max, vec[-1])

    def test_isolated_new_node_normalizers_are_zero(self, toy_dataset):
        node = toy_dataset.mutate([AddNode(label="X")]).new_nodes[0]
        graph = toy_dataset.graph
        assert graph.in_inv_weight_sum(node) == 0.0
        assert graph.out_inv_weight_sum(node) == 0.0
        assert graph.out_degree(node) == 0


class TestValidationAndAtomicity:
    def test_self_loop_rejected(self, toy_dataset):
        with pytest.raises(MutationError, match="self loops"):
            toy_dataset.mutate([AddEdge(u=1, v=1)])

    def test_unknown_endpoint_rejected(self, toy_dataset):
        with pytest.raises(MutationError, match="does not exist"):
            toy_dataset.mutate([AddEdge(u=0, v=10_000)])

    def test_missing_edge_removal_rejected(self, toy_dataset):
        with pytest.raises(MutationError, match="no forward edge"):
            toy_dataset.mutate([RemoveEdge(u=0, v=1)])

    def test_bad_alias_rejected(self, toy_dataset):
        with pytest.raises(MutationError, match="alias"):
            toy_dataset.mutate([AddEdge(u=-1, v=0)])

    def test_failed_batch_rolls_back_entirely(self, toy_dataset, toy_engine):
        before_version = toy_dataset.version
        with pytest.raises(MutationError):
            toy_dataset.mutate(
                [
                    AddNode(label="ghost", text="ghostlyterm"),
                    AddEdge(u=-1, v=3),
                    AddEdge(u=-1, v=99_999),  # fails: whole batch must vanish
                ]
            )
        assert toy_dataset.version == before_version
        assert toy_dataset.graph.num_nodes == toy_engine.graph.num_nodes
        assert toy_dataset.index.lookup("ghostlyterm") == frozenset()
        # and the dataset still works afterwards
        outcome = toy_dataset.mutate([AddNode(label="real", text="ghostlyterm")])
        assert toy_dataset.index.lookup("ghostlyterm") == {outcome.new_nodes[0]}
        rebuilt_in = toy_dataset.graph.in_edges(3)
        assert all(w > 0 for _, w, _ in rebuilt_in)
