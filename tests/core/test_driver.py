"""Bound computation helpers (Section 4.5)."""

from math import inf

import pytest

from repro.core.driver import frontier_minima, nra_edge_bound


class TestNraEdgeBound:
    def test_sum_of_minima_without_seen_nodes(self):
        assert nra_edge_bound([1.0, 2.0], []) == pytest.approx(3.0)

    def test_seen_incomplete_node_tightens_bound(self):
        # A seen node already has dist 0.5 to keyword 0; with m_1 = 2.0
        # its best completion is 2.5, above... no: 0.5 + 2.0 = 2.5 < 3.0.
        bound = nra_edge_bound([1.0, 2.0], [(0.5, inf)])
        assert bound == pytest.approx(2.5)

    def test_known_distances_trusted(self):
        bound = nra_edge_bound([5.0, 5.0], [(1.0, 2.0)])
        assert bound == pytest.approx(3.0)

    def test_worse_seen_nodes_ignored(self):
        bound = nra_edge_bound([1.0, 1.0], [(10.0, inf)])
        assert bound == pytest.approx(2.0)

    def test_infinite_frontier_handled(self):
        # Keyword 1's frontier is exhausted: unseen roots are impossible
        # and incomplete nodes missing keyword 1 can never finish.
        bound = nra_edge_bound([1.0, inf], [(2.0, inf)])
        assert bound == inf
        # ...but a node that already knows keyword 1 can still finish.
        bound = nra_edge_bound([1.0, inf], [(inf, 3.0)])
        assert bound == pytest.approx(4.0)

    def test_empty_ms(self):
        assert nra_edge_bound([], []) == 0


class TestFrontierMinima:
    def test_minimum_per_keyword(self):
        dists = {
            (1, 0): 3.0, (1, 1): inf,
            (2, 0): 1.0, (2, 1): 7.0,
            (3, 0): inf, (3, 1): 2.0,
        }

        def dist_fn(node, i):
            return dists.get((node, i), inf)

        ms = frontier_minima(2, [[1, 2], [3]], dist_fn)
        assert ms == [1.0, 2.0]

    def test_empty_frontier_gives_inf(self):
        ms = frontier_minima(2, [[]], lambda n, i: 0.0)
        assert ms == [inf, inf]
