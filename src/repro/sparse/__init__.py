"""Sparse candidate-network baseline (substrate S12)."""

from repro.sparse.candidate_networks import (
    CandidateNetwork,
    CNNode,
    enumerate_candidate_networks,
)
from repro.sparse.executor import CNExecutor, JoiningTree
from repro.sparse.sparse_search import SparseResult, SparseSearch
from repro.sparse.tuple_sets import TupleSets

__all__ = [
    "CandidateNetwork",
    "CNNode",
    "enumerate_candidate_networks",
    "CNExecutor",
    "JoiningTree",
    "SparseResult",
    "SparseSearch",
    "TupleSets",
]
