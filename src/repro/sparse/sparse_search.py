"""The Sparse algorithm facade (Hristidis, Gravano, Papakonstantinou).

The paper's strongest non-graph baseline (Sections 5.2/5.3): enumerate
candidate networks up to a size bound, execute each with indexed
nested-loop joins, score results by size, merge top-k.  The measured
time over CNs up to the relevant-answer size is the paper's
"Sparse-LB" lower bound, since the real algorithm must also try larger
CNs before it can emit bounds-safe answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cancellation import CancellationToken
from repro.core.engine import parse_query
from repro.errors import SearchCancelledError
from repro.index.tokenizer import normalize_term
from repro.relational.database import Database
from repro.sparse.candidate_networks import (
    CandidateNetwork,
    enumerate_candidate_networks,
)
from repro.sparse.executor import CNExecutor, JoiningTree
from repro.sparse.tuple_sets import TupleSets

__all__ = ["SparseResult", "SparseSearch"]


@dataclass
class SparseResult:
    """Outcome of one Sparse run.

    ``complete`` is False when a cooperative
    :class:`~repro.core.cancellation.CancellationToken` stopped the run
    mid-execution; ``results`` then holds the joining trees produced so
    far (same anytime contract as the graph searches).
    """

    keywords: tuple[str, ...]
    networks: list[CandidateNetwork] = field(default_factory=list)
    results: list[JoiningTree] = field(default_factory=list)
    enumerate_seconds: float = 0.0
    execute_seconds: float = 0.0
    rows_scanned: int = 0
    complete: bool = True
    cancel_reason: Optional[str] = None

    @property
    def elapsed(self) -> float:
        return self.enumerate_seconds + self.execute_seconds

    @property
    def num_networks(self) -> int:
        """The paper's "(#CN)" annotation on Sparse-LB times."""
        return len(self.networks)

    def result_row_sets(self) -> list[frozenset]:
        return [tree.row_set() for tree in self.results]


class SparseSearch:
    """Candidate-network keyword search over a relational database."""

    def __init__(self, db: Database, *, max_cn_size: int = 5) -> None:
        if max_cn_size < 1:
            raise ValueError(f"max_cn_size must be >= 1, got {max_cn_size!r}")
        self.db = db
        self.max_cn_size = max_cn_size
        # Warm-cache setup, as in the paper: all join columns indexed
        # before anything is timed.
        db.build_join_indexes()

    # ------------------------------------------------------------------
    def search(
        self,
        query,
        *,
        k: Optional[int] = 10,
        max_cn_size: Optional[int] = None,
        per_network_limit: Optional[int] = None,
        token: Optional[CancellationToken] = None,
    ) -> SparseResult:
        """Run Sparse: enumerate CNs, execute them all, merge top-k.

        ``k = None`` keeps every result (used for ground truth);
        ``per_network_limit`` caps results per CN (the pruning knob of
        the original algorithm).  A fired ``token`` stops execution at
        the next scanned row and returns the trees produced so far with
        ``complete=False``.
        """
        keywords = tuple(normalize_term(k) for k in parse_query(query))
        size_bound = max_cn_size if max_cn_size is not None else self.max_cn_size
        outcome = SparseResult(keywords=keywords)

        start = time.perf_counter()
        tuple_sets = TupleSets(self.db, keywords)
        outcome.networks = enumerate_candidate_networks(
            self.db.schema, keywords, size_bound, has_tuples=tuple_sets.has
        )
        outcome.enumerate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        executor = CNExecutor(self.db, tuple_sets, token=token)
        try:
            for network in outcome.networks:
                outcome.results.extend(
                    executor.iter_execute(network, limit=per_network_limit)
                )
        except SearchCancelledError as exc:
            outcome.complete = False
            outcome.cancel_reason = exc.reason
        outcome.execute_seconds = time.perf_counter() - start
        outcome.rows_scanned = executor.rows_scanned

        outcome.results.sort(key=lambda tree: (-tree.score(), tree.rows))
        if k is not None:
            outcome.results = outcome.results[:k]
        return outcome

    # ------------------------------------------------------------------
    def lower_bound_time(self, query, *, relevant_size: int) -> SparseResult:
        """The paper's Sparse-LB measurement: execute every CN up to the
        size of the relevant answers and report the time (a lower bound
        on the full algorithm's latency)."""
        return self.search(query, k=None, max_cn_size=relevant_size)
