"""Service throughput: QPS cold vs. cached vs. batched on synthetic DBLP.

Three ways of pushing the same mixed query stream through a
:class:`repro.service.QueryService`:

* **cold** — every request bypasses the result cache (``use_cache=False``):
  the raw sequential search rate.
* **cached** — the same stream with the cache warm: the steady-state a
  traffic mix with repeats converges to.
* **batched** — ``search_many`` over the cold stream with 8 workers.
  Search is pure Python holding the GIL, so batching is about overlap
  and deadline handling, not a core-count speedup; the table makes that
  honest rather than hiding it.

Loose shape assertions (cache >= 10x cold, batch == sequential results)
keep a silently broken service layer from benchmarking plausibly.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.common import Report, build_bench, fmt
from repro.service import QueryRequest, QueryService

from conftest import as_float, cell, emit_json, run_report

NUM_REQUESTS = 50
SEED_TERMS = 8


def _mixed_queries(engine) -> list[str]:
    """Mid-frequency two-keyword queries, deterministic from the index.

    Degrades to fewer distinct queries on a scaled-down dataset
    (REPRO_SCALE < 1) rather than indexing past the term list.
    """
    mids = [
        term
        for term, freq in engine.index.terms_by_frequency()
        if 5 <= freq <= 60
    ]
    pairs = min(SEED_TERMS, len(mids) // 2)
    assert pairs > 0, (
        f"dataset too small: only {len(mids)} mid-frequency terms; "
        f"raise REPRO_SCALE"
    )
    return [f"{mids[i]} {mids[i + pairs]}" for i in range(pairs)]


def run_throughput() -> Report:
    bench = build_bench("dblp", 0.4)
    queries = _mixed_queries(bench.engine)
    stream = [queries[i % len(queries)] for i in range(NUM_REQUESTS)]

    with QueryService(cache_capacity=256, max_workers=8) as service:
        service.register_engine("dblp", bench.engine)

        def requests(use_cache: bool) -> list[QueryRequest]:
            return [
                QueryRequest("dblp", query, k=5, use_cache=use_cache)
                for query in stream
            ]

        start = time.perf_counter()
        cold = [service.search(r) for r in requests(use_cache=False)]
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        cached = [service.search(r) for r in requests(use_cache=True)]
        cached_s = time.perf_counter() - start

        start = time.perf_counter()
        batched = service.search_many(requests(use_cache=False))
        batched_s = time.perf_counter() - start

        hit_rate = service.metrics()["cache_hit_rate"]

    assert all(r.ok for r in cold + cached + batched)
    for sequential, batch in zip(cold, batched):
        assert batch.result.scores() == sequential.result.scores()
        assert batch.result.signatures() == sequential.result.signatures()

    report = Report(
        experiment="service-throughput",
        title=f"{NUM_REQUESTS} mixed queries over {len(queries)} distinct "
        f"(synthetic DBLP, k=5)",
        headers=["mode", "seconds", "QPS", "vs cold"],
    )
    for mode, label, seconds in (
        ("cold", "cold (uncached)", cold_s),
        ("cached", "cached", cached_s),
        ("batched", "batched x8 (uncached)", batched_s),
    ):
        emit_json(
            {
                "experiment": "service-throughput",
                "mode": mode,
                "requests": NUM_REQUESTS,
                "seconds": seconds,
                "qps": NUM_REQUESTS / seconds,
                "speedup_vs_cold": cold_s / seconds,
            }
        )
        report.rows.append(
            [
                label,
                fmt(seconds, 3),
                fmt(NUM_REQUESTS / seconds),
                fmt(cold_s / seconds, 2),
            ]
        )
    report.notes.append(
        f"cache hit rate over the run: {hit_rate:.2f}; cached mode repeats "
        f"the cold stream, so steady-state hit rate approaches 1"
    )
    report.notes.append(
        "batched uses threads: pure-Python search holds the GIL, so expect "
        "overlap benefits (and executor overhead), not a core-count speedup"
    )
    return report


def test_service_throughput(benchmark):
    report = run_report(benchmark, run_throughput)
    qps_cold = as_float(cell(report, 0, 2))
    qps_cached = as_float(cell(report, 1, 2))
    assert qps_cold > 0
    # The acceptance bar: repeated queries answered from cache must be
    # at least 10x faster than uncached search.
    assert qps_cached >= 10 * qps_cold


if __name__ == "__main__":
    print(run_throughput().render())
