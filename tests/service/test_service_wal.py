"""QueryService + WAL: attach, journal, recover, truncate, reset."""

import pytest

from repro.errors import WalError
from repro.service import QueryService
from repro.service.snapshot import save_engine, snapshot_info
from repro.wal import MutationLog, default_wal_path


@pytest.fixture()
def toy_snapshot(tmp_path, toy_engine):
    return save_engine(tmp_path / "toy.snap", toy_engine)


def wal_service(snapshot, **attach_knobs):
    service = QueryService()
    service.register_snapshot("toy", snapshot)
    info = service.attach_wal("toy", **attach_knobs)
    return service, info


def add_word(service, word: str):
    return service.apply(
        "toy",
        [
            {"op": "add_node", "label": word, "table": "paper", "text": word},
            {"op": "add_edge", "u": -1, "v": 3},
        ],
    )


class TestAttachAndJournal:
    def test_default_path_is_snapshot_sibling(self, toy_snapshot):
        service, info = wal_service(toy_snapshot)
        try:
            assert info["path"] == str(default_wal_path(toy_snapshot))
            assert info == {
                "dataset": "toy",
                "path": str(default_wal_path(toy_snapshot)),
                "replayed": 0,
                "wal_seq": 0,
                "version": 0,
            }
        finally:
            service.close()

    def test_commits_are_journaled_with_version_aligned_seqs(self, toy_snapshot):
        service, _ = wal_service(toy_snapshot)
        try:
            for i in range(3):
                result = add_word(service, f"walword{i}")
                assert service.wal_seqs()["toy"] == result.version == i + 1
            metrics = service.metrics()
            assert metrics["datasets"]["wal_seq"] == {"toy": 3}
            with MutationLog(
                default_wal_path(toy_snapshot), readonly=True
            ) as log:
                assert [r.seq for r in log.records()] == [1, 2, 3]
        finally:
            service.close()

    def test_failed_journal_append_discards_the_batch(self, toy_snapshot):
        """A commit whose write-ahead append fails must roll the batch
        back entirely — otherwise the 'failed' mutations would silently
        ride along with the next unrelated commit."""
        service, info = wal_service(toy_snapshot)
        try:
            add_word(service, "first")
            service._wals["toy"].close()  # simulate the disk going away
            with pytest.raises(WalError):
                add_word(service, "ghostword")
            # the rejected batch is gone: reattach and keep committing
            service.attach_wal("toy", info["path"])
            assert add_word(service, "second").version == 2
            assert not service.search("toy", "ghostword").ok
            assert service.search("toy", "second").ok
        finally:
            service.close()

    def test_reregistration_detaches_the_wal(self, toy_snapshot, toy_engine):
        """Replacing a dataset's registration must detach (and close)
        its log — the lineage belongs to the replaced content, and a
        still-attached log would wedge every later commit on an
        out-of-order append."""
        service, info = wal_service(toy_snapshot)
        try:
            add_word(service, "before")
            service.register_engine("toy", toy_engine)
            assert service.wal_seqs() == {}
            result = add_word(service, "afterreplace")  # unjournaled, not wedged
            assert result.applied == 2
            assert service.search("toy", "afterreplace").ok
            # the old log survives untouched on disk for the old snapshot
            assert MutationLog.peek(info["path"])["last_seq"] == 1
        finally:
            service.close()

    def test_attach_requires_registered_dataset(self, tmp_path):
        from repro.errors import UnknownDatasetError

        with QueryService() as service:
            with pytest.raises(UnknownDatasetError):
                service.attach_wal("nope", tmp_path / "x.wal")

    def test_attach_without_snapshot_needs_explicit_path(self, toy_engine):
        with QueryService() as service:
            service.register_engine("toy", toy_engine)
            with pytest.raises(ValueError, match="explicit WAL path"):
                service.attach_wal("toy")

    def test_register_mutable_wal_path_shorthand(self, tmp_path, toy_engine):
        from repro.live import MutableDataset

        with QueryService() as service:
            service.register_mutable(
                "toy",
                MutableDataset.from_engine(toy_engine, compact_ratio=None),
                wal_path=tmp_path / "live.wal",
            )
            result = add_word(service, "shorthandword")
            assert service.wal_seqs()["toy"] == result.version == 1


class TestRecovery:
    def test_fresh_service_replays_to_last_durable_epoch(self, toy_snapshot):
        writer, _ = wal_service(toy_snapshot)
        for i in range(4):
            add_word(writer, f"crashword{i}")
        writer.close()  # an abrupt exit: batched sync already flushed

        reader, info = wal_service(toy_snapshot)
        try:
            assert info["replayed"] == 4
            assert info["version"] == info["wal_seq"] == 4
            assert reader.dataset_version("toy") == 4
            response = reader.search("toy", "crashword3")
            assert response.ok, response.error
            # and the recovered service keeps journaling seamlessly
            assert add_word(reader, "postcrash").version == 5
            assert reader.wal_seqs()["toy"] == 5
        finally:
            reader.close()

    def test_replay_purges_stale_cache_entries(self, toy_snapshot):
        writer, _ = wal_service(toy_snapshot)
        add_word(writer, "cacheword")
        writer.close()

        reader = QueryService()
        reader.register_snapshot("toy", toy_snapshot)
        assert reader.search("toy", "transaction").ok  # warm the cache
        info = reader.attach_wal("toy")
        try:
            assert info["replayed"] == 1
            response = reader.search("toy", "transaction")
            assert not response.cached  # version moved; old entry dead
        finally:
            reader.close()

    def test_unjournaled_commits_before_attach_never_absorb_the_log(
        self, tmp_path, toy_engine
    ):
        """Commits applied before attach diverge the state from the
        snapshot the log's records assume; attach must fail loudly (a
        replay gap), not absorb the commits into the snapshot baseline
        and replay old records on top of the wrong graph."""
        snap = save_engine(tmp_path / "v2.snap", toy_engine, version=2)
        with MutationLog(tmp_path / "v2.snap.wal", start_seq=2) as log:
            log.append([{"op": "add_node", "label": "logged"}])  # seq 3
        service = QueryService()
        service.register_snapshot("toy", snap)
        add_word(service, "unjournaled")  # effective version 1, no WAL
        with pytest.raises(WalError, match="replay gap"):
            service.attach_wal("toy")
        service.close()

    def test_writable_log_behind_served_state_raises(self, tmp_path, toy_snapshot):
        service, _ = wal_service(toy_snapshot)
        add_word(service, "aheadword")
        service.close()
        # A second service mutates WITHOUT the journal, then attaches.
        service = QueryService()
        service.register_snapshot("toy", toy_snapshot)
        service.attach_wal("toy")  # replays to 1
        add_word(service, "unjournaled")  # journaled: 2
        # Detach by re-registering (bumps the base generation)...
        service.register_snapshot("toy", toy_snapshot)
        # ...now served version (3 = bumped base) is ahead of the log.
        with pytest.raises(WalError, match="behind|ends at"):
            service.attach_wal("toy")
        service.close()


class TestSnapshotIntegration:
    def test_save_over_source_truncates_covered_segments(
        self, tmp_path, toy_snapshot
    ):
        service, info = wal_service(
            toy_snapshot, segment_max_records=1
        )
        try:
            for i in range(3):
                add_word(service, f"truncword{i}")
            # Rotating the *serving* snapshot in place makes the log's
            # covered segments redundant.
            service.save_snapshot("toy", toy_snapshot)
            assert snapshot_info(toy_snapshot)["dataset_version"] == 3
            stats = MutationLog.peek(info["path"])
            assert stats["records"] == 0  # all covered by the snapshot
            assert stats["last_seq"] == 3  # position is preserved
            # later commits continue the same lineage
            assert add_word(service, "afterword").version == 4
        finally:
            service.close()

    def test_save_to_other_path_keeps_the_log(self, tmp_path, toy_snapshot):
        """A backup save must not eat the records crash recovery from
        the *registered* snapshot still needs."""
        service, info = wal_service(toy_snapshot, segment_max_records=1)
        try:
            add_word(service, "keepword")
            service.save_snapshot("toy", tmp_path / "backup.snap")
            stats = MutationLog.peek(info["path"])
            assert stats["records"] == 1
        finally:
            service.close()
        recovered = QueryService()
        recovered.register_snapshot("toy", toy_snapshot)
        outcome = recovered.attach_wal("toy")
        try:
            assert outcome["replayed"] == 1
            assert recovered.search("toy", "keepword").ok
        finally:
            recovered.close()

    def test_recover_from_newer_snapshot_and_log_tail(
        self, tmp_path, toy_snapshot
    ):
        service, info = wal_service(toy_snapshot)
        add_word(service, "early")
        mid_snap = tmp_path / "mid.snap"
        service.save_snapshot("toy", mid_snap)
        add_word(service, "tailword")
        service.close()

        recovered = QueryService()
        recovered.register_snapshot("toy", mid_snap)
        outcome = recovered.attach_wal("toy", info["path"])
        try:
            assert outcome["replayed"] == 1  # just the tail record
            assert outcome["version"] == 2
            assert recovered.search("toy", "tailword").ok
            assert recovered.search("toy", "early").ok
        finally:
            recovered.close()

    def test_old_snapshot_with_truncated_log_is_a_replay_gap(
        self, tmp_path, toy_snapshot
    ):
        import shutil

        old_copy = tmp_path / "old-copy.snap"
        shutil.copy(toy_snapshot, old_copy)
        service, info = wal_service(toy_snapshot, segment_max_records=1)
        for i in range(3):
            add_word(service, f"gapword{i}")
        service.save_snapshot("toy", toy_snapshot)  # rotates + truncates
        add_word(service, "lost")
        service.close()

        stale = QueryService()
        stale.register_snapshot("toy", old_copy)  # the OLD base
        with pytest.raises(WalError, match="replay gap"):
            stale.attach_wal("toy", info["path"])
        stale.close()

    def test_reload_snapshot_resets_the_log(self, tmp_path, toy_snapshot):
        service, info = wal_service(toy_snapshot)
        try:
            add_word(service, "preload")
            outcome = service.reload_snapshot("toy", toy_snapshot, force=True)
            stats = MutationLog.peek(info["path"])
            assert stats["records"] == 0
            assert stats["last_seq"] == outcome["version"]
            result = add_word(service, "postreloadword")
            assert result.version == outcome["version"] + 1
            assert service.wal_seqs()["toy"] == result.version
        finally:
            service.close()
