"""Batched expansion engines for SI-Backward and Bidirectional search.

These are alternate ``run()`` bodies the search classes delegate to
when ``SearchParams.expansion_backend`` resolves to a kernel backend
(``scalar`` / ``vectorized`` / ``numba``).  Instead of one cursor pop
per iteration, each loop pops a batch of up to ``expansion_batch``
cursors from a :class:`~repro.core.kernels.frontier.VectorFrontier`,
gathers the batch's edges from the graph CSR in bulk, computes
relaxation / activation candidates with the selected kernel, and
applies them through the shared scalar cascade code in
:mod:`repro.core.kernels.state`.

Contracts preserved from the per-pop loops:

* **anytime/cancellation** — the token is consumed once per batch via
  :meth:`CancellationToken.tick_many`; the batch is capped at
  ``cancel_check_interval`` so a cancelled search still stops within
  ~2 check intervals of pops, and a partially-granted batch processes
  exactly the granted pops (``cancel_at_tick`` cuts stay exact).
  Cancellation breaks *between* batches before any flush, so the
  released answers remain a bound-certified prefix;
* **stats/tracing** — ``nodes_explored`` still counts pops,
  ``nodes_touched`` frontier inserts and ``edges_explored`` explored
  edges; ``_profile_tick`` runs once per pop so
  ``trace_every_n_pops`` samples keep their meaning;
* **output** — emission, minimality, duplicate discard and the
  Section 4.5 bounded release all go through the ``BaseSearch``
  plumbing, with the bound computed vectorized over the dense state.

What batching *changes* is exploration order: cursors 2..K of a batch
are popped before cursor 1's relaxations land, so pop order (and
anything downstream of it, like which equal-cost ``sp`` decomposition
wins a tie) can differ from the python backend.  All kernel backends
share one deterministic order, which is the parity property
``tests/property/test_prop_kernels.py`` pins bit-identically.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.kernels.csr import graph_csr
from repro.core.kernels.expand import (
    dist_candidates,
    gather_in,
    gather_out,
    spread_candidates,
)
from repro.core.kernels.frontier import VectorFrontier
from repro.core.kernels.state import DenseActivationState, DensePathState

__all__ = ["EmitGate", "effective_batch", "run_si_batched", "run_bidi_batched"]

#: Auto batch size before the ``cancel_check_interval`` cap.
DEFAULT_BATCH = 32

_BIG = np.iinfo(np.int64).max


def effective_batch(params) -> int:
    """Resolve ``expansion_batch`` (0 = auto) under the cancellation cap."""
    b = params.expansion_batch or DEFAULT_BATCH
    return max(1, min(b, params.cancel_check_interval))


def _grant(search, want: int) -> int:
    """Consume ``want`` cooperative ticks; flags the search on firing."""
    token = search.token
    if token is None:
        return want
    granted = token.tick_many(want)
    if granted < want:
        search._stopped_by_cancel = True
    return granted


def _pop_loop_head(search, state: DensePathState, batch, emit) -> None:
    """The per-pop bookkeeping shared by both engines: stats, flush
    counter, profiler sample, emit-if-complete — one tick per cursor so
    counters and trace samples mean what they meant per-pop."""
    for v in batch.tolist():
        search.stats.explore()
        search._pops_since_flush += 1
        search._profile_tick()
        if state.is_complete(v):
            emit(v)


def _assign_depths(
    depth: np.ndarray,
    scratch: np.ndarray,
    fresh: np.ndarray,
    tgt: np.ndarray,
    src_depth_plus1: np.ndarray,
) -> None:
    """First-touch depths for newly discovered nodes: the minimum over
    the batch edges that reached them (order-free, so every backend
    agrees); already-known depths are kept (setdefault semantics)."""
    np.minimum.at(scratch, tgt, src_depth_plus1)
    depth[fresh] = scratch[fresh]
    scratch[tgt] = _BIG


class EmitGate:
    """Emission pruning: completion events vastly outnumber answers
    (a root re-emits on every distance improvement), so before paying
    for path building + scoring, the kernel backends drop trees that
    provably cannot enter the released top-k.

    Sound in exact output mode only: release is best-score-first and
    stops at ``max_results``, so once ``max_results`` distinct answers
    with scores strictly above a tree's score upper bound
    (``N_ub**lam / (1 + E)``, with ``E`` the tree's exact edge score)
    are buffered or released, that tree can never be released — its
    better rivals would exhaust the quota first.  Tracked scores are
    never updated on ``improved`` re-adds, keeping the threshold an
    understatement (pruning less, never wrongly).  Released answers are
    identical with or without the gate; only ``answers_generated`` /
    ``duplicates_discarded`` counters shrink.
    """

    __slots__ = ("enabled", "cap", "scorer", "k", "topk", "_nub_pow", "_block_above")

    def __init__(self, search) -> None:
        import heapq
        from math import inf

        self.enabled = search.params.output_mode == "exact"
        self.cap = search.params.max_results
        self.scorer = search.scorer
        self.k = search.k
        self.topk: list[float] = []
        self._nub_pow = self.scorer.node_score_upper_bound(self.k) ** self.scorer.lam
        # Edge scores above this certainly block (inverted threshold,
        # padded conservatively); the band just below falls through to
        # the exact upper-bound check.
        self._block_above = inf

        inner_add = search.output.add
        topk = self.topk
        cap = self.cap
        gate = self

        def tracking_add(tree, *args, **kwargs):
            status = inner_add(tree, *args, **kwargs)
            if status == "new":
                if len(topk) < cap:
                    heapq.heappush(topk, tree.score)
                elif tree.score > topk[0]:
                    heapq.heapreplace(topk, tree.score)
                else:
                    return status
                if len(topk) >= cap:
                    t = topk[0]
                    gate._block_above = (
                        (gate._nub_pow / t - 1.0) * (1.0 + 1e-12) + 1e-12
                        if t > 0.0
                        else inf
                    )
            return status

        search.output.add = tracking_add

    def blocks(self, edge_score: float) -> bool:
        """True when no tree with this edge score can be released."""
        topk = self.topk
        if not self.enabled or len(topk) < self.cap:
            return False
        if edge_score > self._block_above:
            return True
        return self.scorer.score_upper_bound(edge_score, self.k) < topk[0]


def _dense_dist_fn(state: DensePathState) -> Callable[[int, int], float]:
    """``dist_fn(node, i)`` over the authoritative python rows (``inf``
    marks unknown, matching the tie helpers' convention)."""
    rows = state.dist_rows

    def dist_fn(node: int, i: int) -> float:
        return rows[i][node]

    return dist_fn


def _make_emit(search, state: DensePathState) -> Callable[[int], None]:
    gate = EmitGate(search)
    rows = state.dist_rows
    k = search.k
    topk = gate.topk
    cap = gate.cap
    enabled = gate.enabled
    dist_fn = _dense_dist_fn(state)

    def emit(root: int) -> None:
        e = 0.0
        for i in range(k):
            e += rows[i][root]
        # gate.blocks, inlined: completion events fire per distance
        # improvement and the blocked case must stay a float compare.
        # An equal-cost alternate shares the default's edge score, so
        # one gate decision covers both emissions.
        if enabled and len(topk) >= cap:
            if e > gate._block_above:
                search.stats.gate_skips += 1
                return
            if gate.scorer.score_upper_bound(e, k) < topk[0]:
                search.stats.gate_skips += 1
                return
        paths, dists = state.build_paths(root)
        search._emit_tree(root, paths, dists)
        search._emit_tie_alternate(root, paths, dist_fn)

    return emit


def _tie_sweep_dense(search, state: DensePathState) -> None:
    """Exhaustion sweep over dense state (see ``BaseSearch._tie_sweep``)."""
    k = state.k
    complete = [node for node, c in enumerate(state.finite) if c == k]
    search._tie_sweep(complete, state.build_paths, _dense_dist_fn(state))


# ----------------------------------------------------------------------
# SI-Backward
# ----------------------------------------------------------------------
def run_si_batched(search, backend: str):
    """Batched SI-Backward: distance-ordered single frontier."""
    params = search.params
    csr = graph_csr(search.graph)
    state = DensePathState(csr, search.keyword_sets)
    frontier = VectorFrontier(csr.n, kind="min")
    depth = np.full(csr.n, -1, dtype=np.int64)
    scratch = np.full(csr.n, _BIG, dtype=np.int64)
    explored = np.zeros(csr.n, dtype=bool)
    search._frontier_sizes = lambda: {"queue": len(frontier)}
    emit = _make_emit(search, state)

    seeds = state.seed_all()
    if seeds:
        arr = np.array(seeds, dtype=np.int64)
        depth[arr] = 0
        pushed = frontier.push_many(arr, np.zeros(len(arr), dtype=np.float64))
        search.stats.touch(pushed)
        search.stats.heap_ops += pushed

    batch_limit = effective_batch(params)
    budget = params.node_budget
    while frontier and not search._done:
        # Ticks consumed == cursors popped (the legacy per-pop rate):
        # cap the ask at what the frontier can actually deliver.
        want = min(batch_limit, len(frontier))
        if budget is not None:
            room = budget - search.stats.nodes_explored
            if room <= 0:
                break
            want = min(want, room)
        granted = _grant(search, want)
        if granted == 0:
            break
        batch = frontier.pop_batch(granted)
        explored[batch] = True
        search.stats.kernel_batches += 1
        search.stats.pops_in += len(batch)
        _pop_loop_head(search, state, batch, emit)

        expand_nodes = batch[depth[batch] < params.dmax]
        if len(expand_nodes):
            state.expanded_in.update(expand_nodes.tolist())
            tgt, src, w = gather_in(csr, expand_nodes)
            if len(w):
                search.stats.explore_edge(len(w))
                e_idx, i_idx, nd = dist_candidates(
                    backend, state.dist, tgt, src, w
                )
                search.stats.candidates_generated += len(w)
                search.stats.candidates_surviving += len(e_idx)
                state.apply_dist_candidates(tgt, src, w, e_idx, i_idx, nd, emit)
                changed = state.drain_changed()
                if len(changed):
                    live = changed[frontier.contains_mask[changed]]
                    if len(live):
                        frontier.update_many(live, state.min_dist_of(live))
                        search.stats.heap_ops += len(live)
                fresh = np.unique(
                    tgt[~(explored[tgt] | frontier.contains_mask[tgt])]
                )
                if len(fresh):
                    _assign_depths(depth, scratch, fresh, tgt, depth[src] + 1)
                    pushed = frontier.push_many(fresh, state.min_dist_of(fresh))
                    search.stats.touch(pushed)
                    search.stats.heap_ops += pushed
        if search._stopped_by_cancel:
            break
        if search._should_flush():
            ms = state.frontier_minima(frontier.live_nodes())
            search._flush(state.nra_bound(ms))
    if (
        not frontier
        and not search._done
        and not search._stopped_by_cancel
        and not search._budget_exhausted()
    ):
        _tie_sweep_dense(search, state)
    search.stats.cascade_touches += state.cascade_touches
    return search._finish()


# ----------------------------------------------------------------------
# Bidirectional
# ----------------------------------------------------------------------
def _choose_side(
    rule: str, fin: VectorFrontier, fout: VectorFrontier, batch_limit: int
) -> str:
    """Which frontier to expand this batch.

    ``"activation"`` is Figure 3's switch (highest-activation cursor
    wins, ties favour incoming).  ``"fanout"`` expands the structurally
    cheaper side: estimated batch fan-out = mean structural degree of
    the live set x the cursors the batch would actually pop.
    """
    if not fout:
        return "in"
    if not fin:
        return "out"
    if rule == "fanout":
        est_in = fin.cost_sum / len(fin) * min(batch_limit, len(fin))
        est_out = fout.cost_sum / len(fout) * min(batch_limit, len(fout))
        return "in" if est_in <= est_out else "out"
    pin = fin.peek_priority()
    pout = fout.peek_priority()
    return "in" if pout is None or (pin is not None and pin >= pout) else "out"


def run_bidi_batched(search, backend: str):
    """Batched Bidirectional: dual activation-ordered frontiers."""
    params = search.params
    csr = graph_csr(search.graph)
    state = DensePathState(csr, search.keyword_sets)
    act = DenseActivationState(
        csr,
        search.keyword_sets,
        state,
        mu=params.mu,
        combine=params.activation_combine,
    )
    fin = VectorFrontier(csr.n, kind="max", cost=csr.in_degree)
    fout = VectorFrontier(csr.n, kind="max", cost=csr.out_degree)
    xin = np.zeros(csr.n, dtype=bool)
    xout = np.zeros(csr.n, dtype=bool)
    depth = np.full(csr.n, -1, dtype=np.int64)
    scratch = np.full(csr.n, _BIG, dtype=np.int64)
    search._frontier_sizes = lambda: {
        "incoming": len(fin),
        "outgoing": len(fout),
    }
    emit = _make_emit(search, state)

    seeds = state.seed_all()
    act.seed_all()
    if seeds:
        arr = np.array(seeds, dtype=np.int64)
        depth[arr] = 0
        pushed = fin.push_many(arr, act.total[arr])
        search.stats.touch(pushed)
        search.stats.heap_ops += pushed

    batch_limit = effective_batch(params)
    budget = params.node_budget
    explain_side = None
    while (fin or fout) and not search._done:
        want = batch_limit
        if budget is not None:
            room = budget - search.stats.nodes_explored
            if room <= 0:
                break
            want = min(want, room)
        incoming = _choose_side(params.frontier_balance, fin, fout, want) == "in"
        if search._explain_every and incoming is not explain_side:
            # Record only actual direction changes (mirrors the python
            # backend) — one note per batch would flood the timeline.
            explain_side = incoming
            search.explain_note(
                "switch",
                rule=params.frontier_balance,
                pin=fin.peek_priority(),
                pout=fout.peek_priority(),
                chose="in" if incoming else "out",
            )
        side = fin if incoming else fout
        # Ticks consumed == cursors popped (the legacy per-pop rate).
        want = min(want, len(side))
        granted = _grant(search, want)
        if granted == 0:
            break
        batch = side.pop_batch(granted)
        (xin if incoming else xout)[batch] = True
        search.stats.kernel_batches += 1
        if incoming:
            search.stats.pops_in += len(batch)
        else:
            search.stats.pops_out += len(batch)
        _pop_loop_head(search, state, batch, emit)

        expand_nodes = batch[depth[batch] < params.dmax]
        if len(expand_nodes):
            if incoming:
                state.expanded_in.update(expand_nodes.tolist())
                nbr, rep, w = gather_in(csr, expand_nodes)
                tgt_d, src_d = nbr, rep
                norm = csr.in_norm[rep]
            else:
                state.expanded_out.update(expand_nodes.tolist())
                nbr, rep, w = gather_out(csr, expand_nodes)
                # Forward exploration pulls the neighbour's distances
                # into the expanding node (the payoff of forward search).
                tgt_d, src_d = rep, nbr
                norm = csr.out_norm[rep]
            if len(w):
                search.stats.explore_edge(len(w))
                e_idx, i_idx, nd = dist_candidates(
                    backend, state.dist, tgt_d, src_d, w
                )
                search.stats.candidates_generated += len(w)
                search.stats.candidates_surviving += len(e_idx)
                state.apply_dist_candidates(
                    tgt_d, src_d, w, e_idx, i_idx, nd, emit
                )
                state.drain_changed()  # priorities are activation-based
                e_idx, i_idx, contr = spread_candidates(
                    backend,
                    act.act,
                    nbr,
                    rep,
                    w,
                    norm,
                    params.mu,
                    params.activation_combine,
                    act.min_contribution,
                )
                search.stats.candidates_surviving += len(e_idx)
                act.apply_spread_candidates(nbr, e_idx, i_idx, contr)
                seen = xin if incoming else xout
                fresh = np.unique(
                    nbr[~(seen[nbr] | side.contains_mask[nbr])]
                )
                if len(fresh):
                    _assign_depths(depth, scratch, fresh, nbr, depth[rep] + 1)
                    pushed = side.push_many(fresh, act.total[fresh])
                    search.stats.touch(pushed)
                    search.stats.heap_ops += pushed

        if incoming:
            # Every node explored backward is a potential answer root.
            roots = batch[~(xout[batch] | fout.contains_mask[batch])]
            if len(roots):
                pushed = fout.push_many(roots, act.total[roots])
                search.stats.touch(pushed)
                search.stats.heap_ops += pushed

        changed = act.drain_changed()
        if len(changed):
            live_in = changed[fin.contains_mask[changed]]
            if len(live_in):
                fin.update_many(live_in, act.total[live_in])
                search.stats.heap_ops += len(live_in)
            live_out = changed[fout.contains_mask[changed]]
            if len(live_out):
                fout.update_many(live_out, act.total[live_out])
                search.stats.heap_ops += len(live_out)

        if search._stopped_by_cancel:
            break
        if search._should_flush():
            frontier_nodes = np.concatenate(
                [fin.live_nodes(), fout.live_nodes()]
            )
            ms = state.frontier_minima(frontier_nodes)
            search._flush(state.nra_bound(ms))
    if (
        not fin
        and not fout
        and not search._done
        and not search._stopped_by_cancel
        and not search._budget_exhausted()
    ):
        _tie_sweep_dense(search, state)
    search.stats.cascade_touches += state.cascade_touches + act.cascade_touches
    return search._finish()
