"""Torn writes and corruption: recovery stops cleanly at the last valid
record — a structured :class:`WalCorruptionWarning`, never a crash, and
never a silent skip of valid records."""

import struct
import zlib
from pathlib import Path

import pytest

from repro.wal import MutationLog, WalCorruptionWarning


def batch(i: int) -> list:
    return [{"op": "add_node", "label": f"node-{i}"}]


def write_log(path: Path, count: int, **knobs) -> MutationLog:
    log = MutationLog(path, **knobs)
    for i in range(count):
        log.append(batch(i))
    log.close()
    return log


def segments(path: Path) -> list[Path]:
    return sorted(path.glob("wal-*.seg"))


def read_records(path: Path) -> list:
    with MutationLog(path, readonly=True) as log:
        return list(log.records())


class TestTornTail:
    def test_truncated_payload_stops_at_last_valid_record(self, tmp_path):
        write_log(tmp_path / "log", 4)
        seg = segments(tmp_path / "log")[-1]
        seg.write_bytes(seg.read_bytes()[:-5])
        with pytest.warns(WalCorruptionWarning) as caught:
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1, 2, 3]
        warning = caught[0].message
        assert warning.reason == "truncated record payload"
        assert warning.last_valid_seq == 3
        assert warning.offset > 0

    def test_truncated_frame_header_stops_cleanly(self, tmp_path):
        write_log(tmp_path / "log", 2)
        seg = segments(tmp_path / "log")[-1]
        data = seg.read_bytes()
        seg.write_bytes(data + b"\x07\x00")  # 2 stray bytes of a new frame
        with pytest.warns(WalCorruptionWarning, match="truncated frame header"):
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1, 2]

    def test_checksum_mismatch_stops_at_last_valid_record(self, tmp_path):
        write_log(tmp_path / "log", 3)
        seg = segments(tmp_path / "log")[-1]
        data = bytearray(seg.read_bytes())
        data[-2] ^= 0xFF  # flip a byte inside the last record's payload
        seg.write_bytes(bytes(data))
        with pytest.warns(WalCorruptionWarning, match="checksum mismatch"):
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1, 2]

    def test_valid_records_before_damage_are_never_skipped(self, tmp_path):
        """Damage mid-file must not cause recovery to 'resync' past it:
        everything before is yielded, everything after is ignored with
        an explicit warning (a silent skip would replay a graph with a
        hole in its history)."""
        write_log(tmp_path / "log", 5)
        seg = segments(tmp_path / "log")[-1]
        data = bytearray(seg.read_bytes())
        # Find the start of record 3 (frames after the header) and
        # corrupt its crc, leaving records 4 and 5 physically intact.
        offset = 0
        for _ in range(3):  # header + records 1, 2
            length, _ = struct.unpack_from("<II", data, offset)
            offset += 8 + length
        data[offset + 4] ^= 0xFF  # crc byte of record 3
        seg.write_bytes(bytes(data))
        with pytest.warns(WalCorruptionWarning):
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1, 2]

    def test_sequence_gap_is_corruption_not_resync(self, tmp_path):
        write_log(tmp_path / "log", 3)
        seg = segments(tmp_path / "log")[-1]
        data = bytearray(seg.read_bytes())
        # Rewrite record 2's payload seq to 9 (recomputing the crc so
        # only the sequencing is wrong).
        offset = 0
        length, _ = struct.unpack_from("<II", data, offset)
        offset += 8 + length  # past header
        length, _ = struct.unpack_from("<II", data, offset)
        offset += 8 + length  # past record 1
        length, _ = struct.unpack_from("<II", data, offset)
        payload = bytes(data[offset + 8 : offset + 8 + length]).replace(
            b'"seq": 2', b'"seq": 9'
        )
        data[offset : offset + 8] = struct.pack(
            "<II", len(payload), zlib.crc32(payload)
        )
        data[offset + 8 : offset + 8 + length] = payload
        seg.write_bytes(bytes(data))
        with pytest.warns(WalCorruptionWarning, match="sequence gap"):
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1]


class TestMultiSegmentDamage:
    def test_damage_in_sealed_segment_hides_later_segments(self, tmp_path):
        write_log(tmp_path / "log", 6, segment_max_records=2)
        first = segments(tmp_path / "log")[0]
        first.write_bytes(first.read_bytes()[:-5])
        with pytest.warns(WalCorruptionWarning) as caught:
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1]
        reasons = [w.message.reason for w in caught]
        assert any("later segment" in reason for reason in reasons)

    def test_corrupt_segment_header_stops_before_it(self, tmp_path):
        write_log(tmp_path / "log", 4, segment_max_records=2)
        second = segments(tmp_path / "log")[1]
        data = bytearray(second.read_bytes())
        data[10] ^= 0xFF  # inside the header frame
        second.write_bytes(bytes(data))
        with pytest.warns(WalCorruptionWarning):
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1, 2]


class TestCorruptionSignal:
    """Corruption is a first-class structured signal, not just a Python
    warning: incidents persist on the instance for the event log and
    the ``repro_wal_corruption_records_total`` counter to harvest."""

    def test_clean_log_reports_no_incidents(self, tmp_path):
        write_log(tmp_path / "log", 3)
        with MutationLog(tmp_path / "log", readonly=True) as log:
            assert log.corruption_events() == []
            assert log.stats()["corruption_records"] == 0

    def test_incident_shape_matches_the_warning(self, tmp_path):
        write_log(tmp_path / "log", 4)
        seg = segments(tmp_path / "log")[-1]
        seg.write_bytes(seg.read_bytes()[:-5])
        with pytest.warns(WalCorruptionWarning) as caught:
            with MutationLog(tmp_path / "log", readonly=True) as log:
                (incident,) = log.corruption_events()
        warning = caught[0].message
        assert incident["reason"] == warning.reason
        assert incident["offset"] == warning.offset
        assert incident["last_valid_seq"] == warning.last_valid_seq == 3
        assert incident["path"] == warning.path
        assert isinstance(incident["ts"], float)
        assert log.stats()["corruption_records"] == 1

    def test_repaired_flag_tracks_open_mode(self, tmp_path):
        write_log(tmp_path / "log", 3)
        seg = segments(tmp_path / "log")[-1]
        torn = seg.read_bytes()[:-5]
        seg.write_bytes(torn)
        with pytest.warns(WalCorruptionWarning):
            with MutationLog(tmp_path / "log", readonly=True) as log:
                (incident,) = log.corruption_events()
                assert incident["repaired"] is False
        seg.write_bytes(torn)  # re-tear (readonly never repaired anyway)
        with pytest.warns(WalCorruptionWarning):
            writable = MutationLog(tmp_path / "log")
        (incident,) = writable.corruption_events()
        assert incident["repaired"] is True
        writable.close()

    def test_multi_segment_damage_counts_every_incident(self, tmp_path):
        write_log(tmp_path / "log", 6, segment_max_records=2)
        first = segments(tmp_path / "log")[0]
        first.write_bytes(first.read_bytes()[:-5])
        with pytest.warns(WalCorruptionWarning):
            with MutationLog(tmp_path / "log", readonly=True) as log:
                incidents = log.corruption_events()
        # One incident for the torn tail, one for the unreachable
        # later segments — the counter matches the structured list.
        assert len(incidents) == 2
        assert log.stats()["corruption_records"] == 2
        reasons = [incident["reason"] for incident in incidents]
        assert any("later segment" in reason for reason in reasons)

    def test_incident_list_is_bounded_but_counter_is_not(self, tmp_path):
        # A readonly log never repairs, so every replay re-detects the
        # same torn tail.  The counter counts them all; the structured
        # list stays a bounded ring.
        write_log(tmp_path / "log", 3)
        seg = segments(tmp_path / "log")[-1]
        seg.write_bytes(seg.read_bytes()[:-5])
        with pytest.warns(WalCorruptionWarning):
            log = MutationLog(tmp_path / "log", readonly=True)
        for _ in range(20):
            with pytest.warns(WalCorruptionWarning):
                list(log.records())
        assert log.stats()["corruption_records"] == 21
        assert len(log.corruption_events()) == 16
        log.close()


class TestAppendRepair:
    def test_reopen_for_append_truncates_torn_tail(self, tmp_path):
        write_log(tmp_path / "log", 3)
        seg = segments(tmp_path / "log")[-1]
        seg.write_bytes(seg.read_bytes()[:-5])
        with pytest.warns(WalCorruptionWarning):
            log = MutationLog(tmp_path / "log")
        assert log.last_seq == 2
        assert log.append(batch(9)) == 3
        log.close()
        # After repair the log reads clean: no warnings at all.
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            records = read_records(tmp_path / "log")
        assert [r.seq for r in records] == [1, 2, 3]
        assert not [
            w for w in caught if isinstance(w.message, WalCorruptionWarning)
        ]

    def test_readonly_open_never_repairs(self, tmp_path):
        write_log(tmp_path / "log", 3)
        seg = segments(tmp_path / "log")[-1]
        torn = seg.read_bytes()[:-5]
        seg.write_bytes(torn)
        with pytest.warns(WalCorruptionWarning):
            with MutationLog(tmp_path / "log", readonly=True) as log:
                assert log.last_seq == 2
        assert seg.read_bytes() == torn  # bytes untouched

    def test_repair_drops_segments_past_the_damage(self, tmp_path):
        write_log(tmp_path / "log", 6, segment_max_records=2)
        first = segments(tmp_path / "log")[0]
        first.write_bytes(first.read_bytes()[:-5])
        with pytest.warns(WalCorruptionWarning):
            log = MutationLog(tmp_path / "log")
        assert log.last_seq == 1
        assert len(segments(tmp_path / "log")) == 1
        assert log.append(batch(9)) == 2
        log.close()
