"""Zipf-distributed vocabularies for synthetic text generation.

The paper's stress cases come from term-frequency skew: ``database``
matches thousands of DBLP tuples while ``Giora`` matches five.  A
:class:`ZipfVocabulary` reproduces that skew: rank-``r`` word drawn with
probability proportional to ``1 / r**s``.  Head words double as the
workload's Large-origin keywords, tail words as Tiny ones.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Optional, Sequence

__all__ = ["ZipfVocabulary", "TOPIC_WORDS", "make_vocabulary"]

#: Head of the synthetic research vocabulary (frequency rank order).
TOPIC_WORDS: tuple[str, ...] = (
    "database", "query", "system", "data", "analysis", "model", "network",
    "distributed", "parallel", "transaction", "optimization", "processing",
    "search", "keyword", "index", "graph", "algorithm", "performance",
    "recovery", "storage", "memory", "cache", "stream", "mining", "learning",
    "xml", "web", "relational", "semantic", "schema", "join", "aggregation",
    "concurrency", "replication", "consistency", "partition", "cluster",
    "scalable", "adaptive", "approximate", "ranking", "retrieval", "text",
    "spatial", "temporal", "probabilistic", "incremental", "dynamic",
    "efficient", "robust", "secure", "privacy", "compression", "sampling",
    "estimation", "workload", "benchmark", "prototype", "architecture",
    "framework", "language", "compiler", "scheduler", "protocol", "sensor",
    "mobile", "wireless", "energy", "fault", "tolerance", "availability",
    "latency", "throughput", "bandwidth", "topology", "routing", "caching",
    "materialized", "view", "cube", "warehouse", "olap", "oltp", "logging",
    "checkpoint", "serializable", "snapshot", "isolation", "locking",
    "validation", "versioning", "provenance", "lineage", "integration",
    "federation", "mediation", "wrapper", "crawler", "parser", "tokenizer",
)


class ZipfVocabulary:
    """Draws words with Zipfian rank-frequency skew."""

    def __init__(self, words: Sequence[str], *, s: float = 1.0) -> None:
        if not words:
            raise ValueError("vocabulary must be non-empty")
        if s < 0.0:
            raise ValueError(f"zipf exponent must be >= 0, got {s!r}")
        self.words = tuple(words)
        self.s = s
        weights = [1.0 / (rank ** s) for rank in range(1, len(self.words) + 1)]
        self._cumulative = list(itertools.accumulate(weights))

    def sample(self, rng: random.Random) -> str:
        """Draw one word."""
        point = rng.random() * self._cumulative[-1]
        return self.words[bisect.bisect_left(self._cumulative, point)]

    def sample_many(self, rng: random.Random, count: int) -> list[str]:
        return [self.sample(rng) for _ in range(count)]

    def phrase(self, rng: random.Random, min_words: int, max_words: int) -> str:
        """A title-like phrase of ``min_words..max_words`` distinct-ish words."""
        count = rng.randint(min_words, max_words)
        return " ".join(self.sample_many(rng, count))

    def __len__(self) -> int:
        return len(self.words)


def make_vocabulary(
    size: int,
    *,
    s: float = 1.0,
    head: Optional[Sequence[str]] = None,
    tail_prefix: str = "term",
) -> ZipfVocabulary:
    """Vocabulary of ``size`` words: a realistic head plus a generated
    tail (``term0001``, ...) providing arbitrarily rare keywords."""
    base = tuple(head) if head is not None else TOPIC_WORDS
    if size <= len(base):
        return ZipfVocabulary(base[:size], s=s)
    tail = tuple(
        f"{tail_prefix}{i:04d}" for i in range(size - len(base))
    )
    return ZipfVocabulary(base + tail, s=s)
