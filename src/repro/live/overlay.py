"""Copy-on-write read views over a frozen graph + index (live subsystem).

An :class:`OverlayGraph` presents the full
:class:`~repro.graph.searchgraph.SearchGraph` read API — adjacency,
labels, refs, prestige, activation normalizers — over an immutable
*base* graph plus per-node deltas: nodes whose adjacency changed carry
a full replacement tuple, appended nodes carry extension metadata, and
everything untouched reads straight from the base with zero copying.
An :class:`OverlayIndex` does the same for the inverted index: posting
deltas (adds and removals) over a frozen base.

Both views are **immutable**: :class:`~repro.live.MutableDataset`
builds a fresh pair per committed epoch, which is what gives the
service tier its MVCC semantics — an in-flight search holds one epoch's
views and can never observe a later commit.

The views preserve *byte-level* fidelity with a from-scratch rebuild of
the same final state: adjacency tuples keep global edge-insertion
order, the activation normalizers are summed in that same order, and
weights are the exact floats :func:`~repro.graph.weights.backward_edge_weight`
produces — the property ``tests/property/test_prop_live.py`` pins.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.errors import UnknownNodeError
from repro.graph.searchgraph import Edge, SearchGraph
from repro.index.inverted import InvertedIndex
from repro.index.tokenizer import normalize_term

__all__ = ["OverlayGraph", "OverlayIndex"]

_EMPTY: tuple[Edge, ...] = ()
_EMPTY_NODES: frozenset[int] = frozenset()


class OverlayGraph:
    """Immutable search-graph view: a frozen base plus committed deltas.

    Built by :meth:`~repro.live.MutableDataset.commit`; not meant for
    direct construction.  ``out_over`` / ``in_over`` map *touched* node
    ids to their full replacement adjacency tuples (appended nodes
    included); the ``*_ext`` sequences carry metadata for nodes beyond
    ``base.num_nodes``; ``prestige_base`` replaces the base's prestige
    vector so a recomputed ranking can ride a commit without copying
    the graph.
    """

    def __init__(
        self,
        base: SearchGraph,
        *,
        out_over: Mapping[int, tuple[Edge, ...]],
        in_over: Mapping[int, tuple[Edge, ...]],
        labels_ext: Sequence[str] = (),
        tables_ext: Sequence[Optional[str]] = (),
        refs_ext: Sequence[Optional[tuple[str, Hashable]]] = (),
        prestige_base: Optional[np.ndarray] = None,
        prestige_ext: Sequence[float] = (),
        num_forward_edges: Optional[int] = None,
        num_edges: Optional[int] = None,
        out_invw_over: Optional[Mapping[int, float]] = None,
        in_invw_over: Optional[Mapping[int, float]] = None,
    ) -> None:
        self._base = base
        self._base_n = base.num_nodes
        self._out_over = dict(out_over)
        self._in_over = dict(in_over)
        self._labels_ext = tuple(labels_ext)
        self._tables_ext = tuple(tables_ext)
        self._refs_ext = tuple(refs_ext)
        if not len(self._labels_ext) == len(self._tables_ext) == len(self._refs_ext):
            raise ValueError("extension metadata lengths disagree")
        self._prestige_base = (
            np.asarray(prestige_base, dtype=np.float64)
            if prestige_base is not None
            else np.asarray(base.prestige, dtype=np.float64)
        )
        if self._prestige_base.shape != (self._base_n,):
            raise ValueError(
                f"prestige_base must have shape ({self._base_n},), "
                f"got {self._prestige_base.shape}"
            )
        self._prestige_ext = tuple(float(p) for p in prestige_ext)
        if len(self._prestige_ext) != len(self._labels_ext):
            raise ValueError("prestige extension length disagrees with metadata")
        self._num_forward_edges = (
            int(num_forward_edges)
            if num_forward_edges is not None
            else base.num_forward_edges
        )
        self._num_edges = int(num_edges) if num_edges is not None else base.num_edges
        self._out_invw_over = dict(out_invw_over or {})
        self._in_invw_over = dict(in_invw_over or {})
        self._max_prestige = float(
            max(
                self._prestige_base.max() if self._base_n else 0.0,
                max(self._prestige_ext, default=0.0),
            )
        )
        self._prestige_cache: Optional[np.ndarray] = None
        self._ref_to_node_ext: Optional[dict] = None

    # ------------------------------------------------------------------
    # basic accessors (SearchGraph read API)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._base_n + len(self._labels_ext)

    @property
    def num_forward_edges(self) -> int:
        return self._num_forward_edges

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def out_edges(self, u: int) -> Sequence[Edge]:
        over = self._out_over.get(u)
        if over is not None:
            return over
        if u < self._base_n:
            return self._base.out_edges(u)
        self._check_node(u)
        return _EMPTY

    def in_edges(self, v: int) -> Sequence[Edge]:
        over = self._in_over.get(v)
        if over is not None:
            return over
        if v < self._base_n:
            return self._base.in_edges(v)
        self._check_node(v)
        return _EMPTY

    def out_degree(self, u: int) -> int:
        return len(self.out_edges(u))

    def in_degree(self, v: int) -> int:
        return len(self.in_edges(v))

    def label(self, node: int) -> str:
        if node < self._base_n:
            return self._base.label(node)
        self._check_node(node)
        return self._labels_ext[node - self._base_n]

    def table(self, node: int) -> Optional[str]:
        if node < self._base_n:
            return self._base.table(node)
        self._check_node(node)
        return self._tables_ext[node - self._base_n]

    def ref(self, node: int) -> Optional[tuple[str, Hashable]]:
        if node < self._base_n:
            return self._base.ref(node)
        self._check_node(node)
        return self._refs_ext[node - self._base_n]

    def node_by_ref(self, table: str, pk: Hashable) -> int:
        if self._ref_to_node_ext is None:
            self._ref_to_node_ext = {
                ref: self._base_n + i
                for i, ref in enumerate(self._refs_ext)
                if ref is not None
            }
        node = self._ref_to_node_ext.get((table, pk))
        if node is not None:
            return node
        return self._base.node_by_ref(table, pk)

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def edge_weight(self, u: int, v: int) -> float:
        """Smallest weight among (possibly parallel) edges ``u -> v``."""
        best = None
        for target, w, _ in self.out_edges(u):
            if target == v and (best is None or w < best):
                best = w
        if best is None:
            raise UnknownNodeError(v)
        return best

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OverlayGraph(nodes={self.num_nodes}, "
            f"forward_edges={self.num_forward_edges}, "
            f"touched={len(self._out_over)})"
        )

    # ------------------------------------------------------------------
    # prestige and activation support
    # ------------------------------------------------------------------
    @property
    def prestige(self) -> np.ndarray:
        """Full per-node prestige vector (read-only, built lazily)."""
        if self._prestige_cache is None:
            vec = np.concatenate(
                [
                    self._prestige_base,
                    np.asarray(self._prestige_ext, dtype=np.float64),
                ]
            )
            vec.flags.writeable = False
            self._prestige_cache = vec
        return self._prestige_cache

    def node_prestige(self, node: int) -> float:
        if node < self._base_n:
            if node < 0:
                raise UnknownNodeError(node)
            return float(self._prestige_base[node])
        self._check_node(node)
        return self._prestige_ext[node - self._base_n]

    @property
    def max_prestige(self) -> float:
        return self._max_prestige

    def in_inv_weight_sum(self, v: int) -> float:
        over = self._in_invw_over.get(v)
        if over is not None:
            return over
        if v < self._base_n:
            return self._base.in_inv_weight_sum(v)
        self._check_node(v)
        return 0.0

    def out_inv_weight_sum(self, u: int) -> float:
        over = self._out_invw_over.get(u)
        if over is not None:
            return over
        if u < self._base_n:
            return self._base.out_inv_weight_sum(u)
        self._check_node(u)
        return 0.0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise UnknownNodeError(node)


class OverlayIndex:
    """Immutable inverted-index view: a frozen base plus posting deltas.

    ``added`` / ``removed`` carry per-term node deltas against the
    base's *text* postings; ``rel_added`` extends the relation-name
    postings (relation membership is never removed — dropping a tuple
    from a relation is a remove-edge/rebuild concern, not a text
    update).  All payload sets are frozensets: the view is shared by
    concurrent searches of one epoch.
    """

    def __init__(
        self,
        base: InvertedIndex,
        *,
        added: Optional[Mapping[str, frozenset[int]]] = None,
        removed: Optional[Mapping[str, frozenset[int]]] = None,
        rel_added: Optional[Mapping[str, frozenset[int]]] = None,
    ) -> None:
        self._base = base
        base_post, base_rel = base._export_postings()
        self._base_post = base_post
        self._base_rel = base_rel
        self._added = {term: frozenset(nodes) for term, nodes in (added or {}).items()}
        self._removed = {
            term: frozenset(nodes) for term, nodes in (removed or {}).items()
        }
        self._rel_added = {
            term: frozenset(nodes) for term, nodes in (rel_added or {}).items()
        }
        # Same memo InvertedIndex.lookup carries, and even simpler to
        # justify: this view is immutable, so entries never go stale.
        # Known terms only — unknown query terms must not grow it.
        self._lookup_cache: dict[str, frozenset[int]] = {}

    # ------------------------------------------------------------------
    # lookup (InvertedIndex read API)
    # ------------------------------------------------------------------
    def _text_nodes(self, key: str) -> frozenset[int]:
        """Final text postings of an already-normalized term."""
        base = self._base_post.get(key)
        added = self._added.get(key, _EMPTY_NODES)
        removed = self._removed.get(key, _EMPTY_NODES)
        if base is None:
            return frozenset(added)
        if not added and not removed:
            return frozenset(base)
        return frozenset((base - removed) | added)

    def _rel_nodes(self, key: str) -> frozenset[int]:
        base = self._base_rel.get(key)
        added = self._rel_added.get(key, _EMPTY_NODES)
        if base is None:
            return frozenset(added)
        if not added:
            return frozenset(base)
        return frozenset(base | added)

    def lookup(self, term: str) -> frozenset[int]:
        """All nodes matching ``term`` in this epoch: text matches plus
        relation-name matches.  Memoized per term (the view is
        immutable, so the memo can never go stale)."""
        key = normalize_term(term)
        cached = self._lookup_cache.get(key)
        if cached is not None:
            return cached
        result = self._text_nodes(key) | self._rel_nodes(key)
        if result:
            self._lookup_cache[key] = result
        return result

    def frequency(self, term: str) -> int:
        return len(self.lookup(term))

    def has_term(self, term: str) -> bool:
        return bool(self.lookup(term))

    def terms(self) -> Iterator[str]:
        """All text terms with at least one live posting."""
        for term in self._base_post:
            if self._text_nodes(term):
                yield term
        for term in self._added:
            if term not in self._base_post and self._added[term]:
                yield term

    def vocabulary_size(self) -> int:
        return sum(1 for _ in self.terms())

    def terms_by_frequency(self) -> list[tuple[str, int]]:
        """Text terms with live posting sizes, most frequent first."""
        return sorted(
            ((term, len(self._text_nodes(term))) for term in self.terms()),
            key=lambda item: (-item[1], item[0]),
        )

    def __len__(self) -> int:
        return self.vocabulary_size()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OverlayIndex(base_terms={len(self._base_post)}, "
            f"added={len(self._added)}, removed={len(self._removed)})"
        )

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------
    def materialize(self) -> InvertedIndex:
        """Fold the deltas into a flat :class:`InvertedIndex` (what
        compaction snapshots and re-bases on)."""
        postings: dict[str, set[int]] = {}
        for term in self._base_post:
            nodes = self._text_nodes(term)
            if nodes:
                postings[term] = set(nodes)
        for term, nodes in self._added.items():
            if term not in self._base_post and nodes:
                postings[term] = set(nodes)
        relations: dict[str, set[int]] = {
            term: set(nodes) for term, nodes in self._base_rel.items()
        }
        for term, nodes in self._rel_added.items():
            relations.setdefault(term, set()).update(nodes)
        return InvertedIndex._from_postings(postings, relations)
