"""Person/organization name pools with realistic frequency skew.

IMDB's ``John`` problem (paper Section 4.1) needs very common first
names; query DQ3's ``Giora`` needs nearly unique ones.  First names are
drawn Zipfian from a common pool; surnames mix a common pool with a
generated long tail so every frequency band is populated.
"""

from __future__ import annotations

import random

from repro.datasets.vocab import ZipfVocabulary

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "COMPANY_WORDS",
    "NamePool",
]

FIRST_NAMES: tuple[str, ...] = (
    "john", "david", "michael", "james", "robert", "mary", "william",
    "richard", "thomas", "susan", "joseph", "charles", "linda", "daniel",
    "matthew", "anthony", "mark", "paul", "steven", "andrew", "karen",
    "joshua", "kevin", "brian", "george", "timothy", "ronald", "edward",
    "jason", "jeffrey", "cindy", "keanu", "nicole", "jude", "renee",
    "divesh", "jignesh", "giora", "varun", "shashank", "soumen", "rushi",
    "hrishikesh", "arvind", "govind", "philip", "chen", "wei", "yi",
)

LAST_NAMES: tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "taylor", "moore", "jackson", "martin", "lee",
    "thompson", "white", "harris", "clark", "lewis", "robinson", "walker",
    "fernandez", "naughton", "dewitt", "jagadish", "chawathe", "mohan",
    "rothermel", "krishnamurthy", "chakrabarti", "sudarshan", "kacholia",
    "hulgeri", "nakhe", "bhalotia", "hristidis", "gravano", "zellweger",
    "reeves", "kidman", "gray", "codd", "stonebraker", "ullman", "widom",
)

COMPANY_WORDS: tuple[str, ...] = (
    "microsoft", "oracle", "ibm", "intel", "motorola", "xerox", "kodak",
    "siemens", "philips", "hitachi", "toshiba", "fujitsu", "samsung",
    "nokia", "ericsson", "lucent", "honeywell", "boeing", "dupont",
    "monsanto", "pfizer", "merck", "genentech", "amgen",
)


class NamePool:
    """Draws person names with a Zipfian head and a unique-ish tail."""

    def __init__(
        self,
        *,
        first_zipf: float = 1.0,
        last_zipf: float = 0.7,
        rare_last_fraction: float = 0.25,
        rare_prefix: str = "surname",
    ) -> None:
        if not 0.0 <= rare_last_fraction <= 1.0:
            raise ValueError("rare_last_fraction must be in [0, 1]")
        self._first = ZipfVocabulary(FIRST_NAMES, s=first_zipf)
        self._last = ZipfVocabulary(LAST_NAMES, s=last_zipf)
        self._rare_fraction = rare_last_fraction
        self._rare_prefix = rare_prefix
        self._rare_counter = 0

    def person(self, rng: random.Random) -> str:
        """A "First Last" name; a fraction of surnames are unique."""
        first = self._first.sample(rng)
        if rng.random() < self._rare_fraction:
            self._rare_counter += 1
            last = f"{self._rare_prefix}{self._rare_counter:05d}"
        else:
            last = self._last.sample(rng)
        return f"{first.capitalize()} {last.capitalize()}"

    def company(self, rng: random.Random, index: int) -> str:
        """Company names cycle the pool, suffixed when exhausted."""
        base = COMPANY_WORDS[index % len(COMPANY_WORDS)]
        suffix = index // len(COMPANY_WORDS)
        name = base.capitalize()
        return name if suffix == 0 else f"{name} {suffix + 1}"
