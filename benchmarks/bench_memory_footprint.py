"""MEM bench: Section 5.1's 16|V| + 8|E| compact graph index."""

from repro.experiments.memory import run_memory

from conftest import as_float, run_report


def test_memory_footprint_formula(benchmark):
    report = run_report(benchmark, run_memory)
    assert len(report.rows) == 9  # 3 datasets x 3 scales
    for row in report.rows:
        ratio = as_float(row[5])
        assert 0.99 <= ratio <= 1.01, f"{row[0]} deviates from 16V+8E"
