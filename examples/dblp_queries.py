"""DBLP-style session: the paper's motivating workload (Section 1).

Generates the synthetic DBLP database, then runs paper-style queries:
an author + topic query, a frequent-term query that stresses Backward
search, and a relation-name query (the keyword ``conference`` matches
every conference tuple, Section 2.2).  For each query the three
algorithms are compared on the paper's metrics.

Run:  python examples/dblp_queries.py
"""

import random
import time

from repro import KeywordSearchEngine
from repro.datasets import DblpConfig, make_dblp
from repro.render import render_tree
from repro.workload import WorkloadGenerator


def run_query(engine: KeywordSearchEngine, query) -> None:
    print(f"--- query: {query!r}  origins={engine.origin_sizes(query)}")
    best = None
    for algorithm in ("bidirectional", "si-backward", "mi-backward"):
        start = time.perf_counter()
        result = engine.search(query, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        answer = result.best()
        print(
            f"  {algorithm:<13} answers={len(result.answers):<3} "
            f"explored={result.stats.nodes_explored:<6} "
            f"touched={result.stats.nodes_touched:<6} "
            f"gen@pops={answer.generated_pops if answer else '-':<6} "
            f"time={elapsed:.3f}s"
        )
        if algorithm == "bidirectional":
            best = answer
    if best is not None:
        print(render_tree(best.tree, engine.graph))
    print()


def main() -> None:
    db = make_dblp(DblpConfig())
    engine = KeywordSearchEngine.from_database(db)
    print(f"synthetic DBLP: {db.total_rows()} tuples -> {engine.graph}")
    print()

    # Pick an actual rare author surname and frequent topic word from
    # the generated data, like the paper's "Gray transaction".
    generator = WorkloadGenerator(db, engine.graph, engine.index)
    rng = random.Random(2005)
    query = generator.sample_query(
        rng, n_keywords=2, result_size=3, band_combo=("T", "L")
    )
    run_query(engine, list(query.keywords))

    # Two rare authors: the co-authorship question.
    query = generator.sample_query(
        rng, n_keywords=2, result_size=5, band_combo=("T", "T")
    )
    run_query(engine, list(query.keywords))

    # Relation-name keyword: 'conference' matches every conference tuple.
    run_query(engine, "conference database")


if __name__ == "__main__":
    main()
