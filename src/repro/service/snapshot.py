"""Versioned disk snapshots of built engine state (EMBANKS direction).

Building an engine from a database does three expensive things — graph
construction, biased-PageRank prestige and inverted-index construction.
EMBANKS (Gupta & Sudarshan) argues that disk-resident graph/index state
is what makes BANKS deployments restart-friendly; this module is that
idea for the service layer: one self-describing file holding the frozen
:class:`~repro.graph.SearchGraph` (both adjacency sides, in original
edge order), its prestige vector and the
:class:`~repro.index.InvertedIndex`, so a warm start skips
``KeywordSearchEngine.from_database`` entirely.

Two physical layouts share one logical content model (and one
``content_digest``):

**Compressed (format version 1, the default save format)** — a single
zip container (``numpy.savez_compressed``) of flat arrays:

* ``meta``: UTF-8 JSON bytes (uint8): format magic, version, node
  labels/tables/refs, index terms and counts.  Everything that is text.
* ``out_indptr``/``out_dst``/``out_weight``/``out_fwd`` and the ``in_*``
  equivalents: CSR-shaped combined adjacency, weights as float64 so a
  restored graph scores answers bit-identically.
* ``prestige``, ``in_invw``, ``out_invw``: float64 per node — prestige
  plus the two activation normalizers, stored (not recomputed) so the
  restored values match the builder's summation bit for bit.
* ``post_indptr``/``post_nodes`` and ``rel_indptr``/``rel_nodes``:
  concatenated postings per index term (sorted node ids; postings are
  sets, so order carries no meaning).

**Mapped (format version 2,** ``save_snapshot(..., format="mapped")``
**)** — the same arrays, uncompressed and page-aligned: a magic
preamble, one *small* JSON header (counts, digest, an array table of
``{offset, dtype, shape}`` and save-time pin hints — O(1) in dataset
size), then each array's raw C-contiguous bytes at a 4096-aligned
offset.  The O(n) text metadata (labels, tables, refs and the term
vocabularies) lives in the data region too, as one JSON blob
(``text_json``) that a mapped load leaves on disk until a query first
reads a label or resolves a term — that deferral is what makes a
mapped warmup O(pin set) instead of O(dataset).  The layout is what
``np.memmap`` needs: :func:`load_snapshot` with ``storage_mode=
"mapped"`` returns a :class:`~repro.storage.MappedSearchGraph` /
:class:`~repro.storage.MappedInvertedIndex` pair whose adjacency rows
and posting lists page in on demand — bigger-than-RAM datasets serve
from the OS page cache, shared physically across worker processes.
``docs/STORAGE.md`` documents the layout and the trade-offs.

The ``storage_mode`` knob (``ram`` / ``mapped`` / ``auto``, env hook
``REPRO_SNAPSHOT_MODE``) works for **both** layouts: a v2 file loads
fully into RAM under ``ram`` (bit-identical to a v1 load of the same
content), and a v1 file under ``mapped`` is converted once into a
``<path>.mapped`` sidecar (digest-stamped, rebuilt only when the
source file changes) and served from there.

No pickle anywhere — ``numpy.load`` runs with ``allow_pickle=False``
and the v2 header is plain JSON — so loading a snapshot executes no
code from the file.  Incompatible or corrupt files raise
:class:`~repro.errors.SnapshotError`.  Snapshots capture frozen state:
they are written once and never invalidated (rebuild and re-save to
pick up new data), mirroring the engine's own "index is frozen"
contract.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import SnapshotError
from repro.graph.searchgraph import SearchGraph
from repro.index.inverted import InvertedIndex
from repro.storage.stats import PinPolicy, StorageStats, resolve_storage_mode

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "MAPPED_SNAPSHOT_VERSION",
    "save_snapshot",
    "load_snapshot",
    "save_engine",
    "load_engine",
    "snapshot_info",
    "mapped_sidecar_path",
]

SNAPSHOT_FORMAT = "repro-engine-snapshot"
SNAPSHOT_VERSION = 1
MAPPED_SNAPSHOT_VERSION = 2

#: Preamble of a mapped (v2) snapshot.  Deliberately starts with a
#: non-ASCII byte (like numpy's own ``\x93NUMPY``) so no text file or
#: zip container (``PK``) can collide with it.
MAPPED_MAGIC = b"\x93REPROMAP2\n"
#: Array offsets in a mapped snapshot are multiples of this (one page).
MAPPED_ALIGNMENT = 4096

#: Every data array of the format, in on-disk order.
_ARRAY_NAMES = (
    "out_indptr", "out_dst", "out_weight", "out_fwd",
    "in_indptr", "in_src", "in_weight", "in_fwd",
    "prestige", "in_invw", "out_invw",
    "post_indptr", "post_nodes", "rel_indptr", "rel_nodes",
)

#: Text metadata fields that move out of the v2 header into the
#: lazily-decoded ``text_json`` data array.
_TEXT_FIELDS = ("labels", "tables", "refs", "post_terms", "rel_terms")

_FORMATS = ("compressed", "mapped")


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def _pack_adjacency(adjacency) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    total = sum(len(edges) for edges in adjacency)
    dst = np.zeros(total, dtype=np.int32)
    weight = np.zeros(total, dtype=np.float64)
    fwd = np.zeros(total, dtype=np.uint8)
    pos = 0
    for u, edges in enumerate(adjacency):
        indptr[u] = pos
        for v, w, is_forward in edges:
            dst[pos] = v
            weight[pos] = w
            fwd[pos] = 1 if is_forward else 0
            pos += 1
    indptr[len(adjacency)] = pos
    return indptr, dst, weight, fwd


def _pack_postings(postings) -> tuple[list[str], np.ndarray, np.ndarray]:
    terms = sorted(postings)
    indptr = np.zeros(len(terms) + 1, dtype=np.int64)
    total = sum(len(postings[term]) for term in terms)
    nodes = np.zeros(total, dtype=np.int32)
    pos = 0
    for i, term in enumerate(terms):
        indptr[i] = pos
        for node in sorted(postings[term]):
            nodes[pos] = node
            pos += 1
    indptr[len(terms)] = pos
    return terms, indptr, nodes


def _encode_refs(graph: SearchGraph) -> list:
    refs = []
    for node in graph.nodes():
        ref = graph.ref(node)
        if ref is None:
            refs.append(None)
            continue
        table, pk = ref
        if not isinstance(pk, (int, str)):
            raise SnapshotError(
                f"node {node} has non-serializable primary key {pk!r} "
                f"(snapshot format v{SNAPSHOT_VERSION} supports int and str keys)"
            )
        # Tag the pk type so int keys don't come back as strings.
        refs.append([table, "i" if isinstance(pk, int) else "s", pk])
    return refs


def _content_digest(meta: dict, arrays: dict) -> str:
    """Deterministic sha256 over the snapshot's logical content.

    Computed from the packed arrays and text metadata, **not** the file
    bytes (the zip container embeds timestamps, and the two physical
    layouts differ), so snapshots of the same dataset state digest
    identically across machines, runs *and formats* — what lets a
    worker reload no-op when it already holds the epoch, and what lets
    a mapped sidecar prove it matches its compressed source.  The
    ``dataset_version`` field is deliberately excluded: version is
    provenance, digest is content.
    """
    hasher = hashlib.sha256()
    for field in ("num_nodes", "num_forward_edges", "labels", "tables", "refs",
                  "post_terms", "rel_terms"):
        hasher.update(field.encode("utf-8"))
        hasher.update(json.dumps(meta[field], ensure_ascii=False).encode("utf-8"))
    for name in sorted(arrays):
        hasher.update(name.encode("utf-8"))
        hasher.update(arrays[name].tobytes())
    return hasher.hexdigest()


def _pack_state(
    graph: SearchGraph, index: InvertedIndex, version: int
) -> tuple[dict, dict]:
    """Pack graph + index into the format's (meta, arrays) pair, with
    the content digest already stamped into meta."""
    out_indptr, out_dst, out_weight, out_fwd = _pack_adjacency(graph._out)
    in_indptr, in_src, in_weight, in_fwd = _pack_adjacency(graph._in)
    postings, relation_nodes = index._export_postings()
    post_terms, post_indptr, post_nodes = _pack_postings(postings)
    rel_terms, rel_indptr, rel_nodes = _pack_postings(relation_nodes)

    meta = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "num_nodes": graph.num_nodes,
        "num_forward_edges": graph.num_forward_edges,
        "labels": list(graph._labels),
        "tables": list(graph._tables),
        "refs": _encode_refs(graph),
        "post_terms": post_terms,
        "rel_terms": rel_terms,
        "dataset_version": int(version),
    }
    arrays = {
        "out_indptr": out_indptr,
        "out_dst": out_dst,
        "out_weight": out_weight,
        "out_fwd": out_fwd,
        "in_indptr": in_indptr,
        "in_src": in_src,
        "in_weight": in_weight,
        "in_fwd": in_fwd,
        "prestige": np.asarray(graph.prestige, dtype=np.float64),
        "in_invw": np.asarray(graph._in_inv_weight_sum, dtype=np.float64),
        "out_invw": np.asarray(graph._out_inv_weight_sum, dtype=np.float64),
        "post_indptr": post_indptr,
        "post_nodes": post_nodes,
        "rel_indptr": rel_indptr,
        "rel_nodes": rel_nodes,
    }
    meta["content_digest"] = _content_digest(meta, arrays)
    return meta, arrays


def _align(offset: int) -> int:
    return -(-offset // MAPPED_ALIGNMENT) * MAPPED_ALIGNMENT


def _pin_hints(meta: dict, arrays: dict) -> dict:
    """Save-time pin hints stamped into the mapped header.

    A small sample of the hottest rows (top prestige nodes, largest
    posting lists) — enough for ``snapshot info`` to summarize the pin
    set without touching a single data array, and for operators to see
    *what* a replica pins.  The load-time
    :class:`~repro.storage.PinPolicy` recomputes the full set from the
    resident indptr/prestige arrays; the hints are advisory.
    """
    prestige = arrays["prestige"]
    top_nodes = np.argsort(-prestige, kind="stable")[: min(32, len(prestige))]
    freq = np.diff(arrays["post_indptr"]).tolist()
    terms = meta["post_terms"]
    ranked = sorted(range(len(terms)), key=lambda i: (-freq[i], terms[i]))
    return {
        "nodes": [int(u) for u in top_nodes],
        "terms": [terms[i] for i in ranked[:16]],
    }


def _write_compressed(path: Path, meta: dict, arrays: dict) -> Path:
    meta_bytes = np.frombuffer(
        json.dumps(meta, ensure_ascii=False).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, meta=meta_bytes, **arrays)
    tmp = path.with_name(path.name + ".tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(buffer.getvalue())
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise SnapshotError(f"cannot write snapshot to {path}: {exc}") from exc
    return path


def _write_mapped(
    path: Path, meta: dict, arrays: dict, *, source: Optional[dict] = None
) -> Path:
    """Write the page-aligned (v2) layout atomically.

    ``source`` records provenance when the file is a sidecar conversion
    of a compressed snapshot (its size + mtime), which is how the next
    ``mapped`` load decides the sidecar is still current.  The tmp name
    embeds the pid so concurrent converters (a worker fleet warming up)
    never clobber each other's partial writes; the ``os.replace`` race
    is benign — both write identical content.

    The header carries only O(1) state (counts, digest, array table,
    pin hints).  The O(n) text metadata is serialized as one JSON blob
    into the ``text_json`` data array, so a mapped load can leave it on
    disk until first use.
    """
    text_blob = json.dumps(
        {field: meta[field] for field in _TEXT_FIELDS}, ensure_ascii=False
    ).encode("utf-8")
    contiguous = {
        name: np.ascontiguousarray(arrays[name]) for name in _ARRAY_NAMES
    }
    contiguous["text_json"] = np.frombuffer(text_blob, dtype=np.uint8)
    names = _ARRAY_NAMES + ("text_json",)
    table = {}
    offset = 0
    for name in names:
        arr = contiguous[name]
        table[name] = {
            "offset": offset,
            "dtype": str(arr.dtype),
            "shape": [int(dim) for dim in arr.shape],
        }
        offset = _align(offset + arr.nbytes)
    header = {
        key: value for key, value in meta.items() if key not in _TEXT_FIELDS
    }
    header["version"] = MAPPED_SNAPSHOT_VERSION
    header["index_terms"] = len(meta["post_terms"])
    header["relation_terms"] = len(meta["rel_terms"])
    header["arrays"] = table
    header["pin_hints"] = _pin_hints(meta, arrays)
    if source is not None:
        header["source"] = source
    header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
    data_start = _align(len(MAPPED_MAGIC) + 8 + len(header_bytes))

    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fh:
            fh.write(MAPPED_MAGIC)
            fh.write(struct.pack("<Q", len(header_bytes)))
            fh.write(header_bytes)
            for name in names:
                arr = contiguous[name]
                if arr.nbytes:
                    fh.seek(data_start + table[name]["offset"])
                    fh.write(arr.tobytes())
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise SnapshotError(f"cannot write snapshot to {path}: {exc}") from exc
    return path


def save_snapshot(
    path: Union[str, os.PathLike],
    graph: SearchGraph,
    index: InvertedIndex,
    *,
    version: int = 0,
    format: str = "compressed",
) -> Path:
    """Serialize ``graph`` + ``index`` (+ prestige) to ``path``.

    The write goes through a temporary sibling file and an atomic rename,
    so a crash mid-save never leaves a truncated snapshot behind.
    Returns the path written.

    ``format`` picks the physical layout: ``"compressed"`` (the v1 zip
    container, the default) or ``"mapped"`` (the v2 page-aligned layout
    ``np.memmap`` can serve directly).  Both stamp the same
    ``content_digest``, so the two layouts of one state are provably
    the same content.

    ``version`` records the dataset's epoch (``dataset_version`` in the
    header); together with the digest it lets a worker reload decide it
    already holds the current state and no-op (:func:`snapshot_info`
    surfaces both without reading the graph).
    """
    if format not in _FORMATS:
        raise ValueError(
            f"unknown snapshot format {format!r}; expected one of {_FORMATS}"
        )
    path = Path(path)
    meta, arrays = _pack_state(graph, index, version)
    if format == "mapped":
        return _write_mapped(path, meta, arrays)
    return _write_compressed(path, meta, arrays)


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _unpack_adjacency(indptr, target, weight, fwd) -> list[list[tuple]]:
    targets = target.tolist()
    weights = weight.tolist()
    forwards = fwd.astype(bool).tolist()
    bounds = indptr.tolist()
    return [
        list(zip(targets[lo:hi], weights[lo:hi], forwards[lo:hi]))
        for lo, hi in zip(bounds, bounds[1:])
    ]


def _unpack_postings(terms, indptr, nodes) -> dict[str, list[int]]:
    flat = nodes.tolist()
    bounds = indptr.tolist()
    return {
        term: flat[bounds[i] : bounds[i + 1]] for i, term in enumerate(terms)
    }


def _decode_refs(encoded: list) -> list:
    refs = []
    for entry in encoded:
        if entry is None:
            refs.append(None)
            continue
        table, kind, pk = entry
        refs.append((table, int(pk) if kind == "i" else str(pk)))
    return refs


def _detect_format(path: Union[str, os.PathLike]) -> str:
    """``"mapped"`` (v2 magic) or ``"compressed"`` (anything else —
    the zip reader produces its own diagnostics for non-snapshots)."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            head = fh.read(len(MAPPED_MAGIC))
    except FileNotFoundError:
        raise SnapshotError(f"snapshot file {path} does not exist") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return "mapped" if head == MAPPED_MAGIC else "compressed"


def _read_archive(
    path: Union[str, os.PathLike], *, only_meta: bool = False
) -> tuple[dict, dict]:
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            # np.load decompresses lazily per-array: header-only readers
            # (snapshot_info) pull just the meta block, not the graph.
            names = ["meta"] if only_meta and "meta" in archive.files else archive.files
            arrays = {name: archive[name] for name in names}
    except FileNotFoundError:
        raise SnapshotError(f"snapshot file {path} does not exist") from None
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        # BadZipFile/EOFError: a truncated or corrupt container.
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if "meta" not in arrays:
        raise SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file (no meta)")
    try:
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt meta block: {exc}") from exc
    if meta.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} has format {meta.get('format')!r}, expected {SNAPSHOT_FORMAT!r}"
        )
    if meta.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} is snapshot version {meta.get('version')!r}; this build "
            f"reads version {SNAPSHOT_VERSION}"
        )
    return meta, arrays


def _read_mapped_header(path: Union[str, os.PathLike]) -> tuple[dict, int]:
    """Parse a mapped snapshot's preamble + JSON header.

    Reads only the header region — never the data arrays — so callers
    like :func:`snapshot_info` stay O(header) regardless of dataset
    size.  Returns ``(header, data_start)``.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(MAPPED_MAGIC))
            if magic != MAPPED_MAGIC:
                raise SnapshotError(
                    f"{path} is not a mapped {SNAPSHOT_FORMAT} file"
                )
            raw = fh.read(8)
            if len(raw) != 8:
                raise SnapshotError(f"{path} is truncated (no header length)")
            (header_len,) = struct.unpack("<Q", raw)
            if header_len > 1 << 31:
                raise SnapshotError(f"{path} has an implausible header length")
            header_bytes = fh.read(header_len)
            if len(header_bytes) != header_len:
                raise SnapshotError(f"{path} is truncated (incomplete header)")
    except FileNotFoundError:
        raise SnapshotError(f"snapshot file {path} does not exist") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt header: {exc}") from exc
    if header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} has format {header.get('format')!r}, "
            f"expected {SNAPSHOT_FORMAT!r}"
        )
    if header.get("version") != MAPPED_SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} is mapped-snapshot version {header.get('version')!r}; "
            f"this build reads version {MAPPED_SNAPSHOT_VERSION}"
        )
    data_start = _align(len(MAPPED_MAGIC) + 8 + header_len)
    return header, data_start


def _open_mapped_arrays(path: Path, header: dict, data_start: int) -> dict:
    """Map the file once and carve every data array out of it as a
    read-only view, bounds-checked against the real file size so a
    truncated file fails here, not as a SIGBUS mid-search.

    One ``np.memmap`` for the whole file, not one per array: memmap
    construction resolves the path and stats the file each time, which
    at 16 arrays per snapshot is a measurable slice of a lazy load.
    The views are plain ``ndarray``s (``np.asarray`` strips the memmap
    subclass), so the per-slice bookkeeping the subclass does —
    ``__array_finalize__``, filename tracking — never runs on the hot
    row-materialization path; the pages underneath still fault in
    lazily through the OS mapping.
    """
    table = header.get("arrays")
    if not isinstance(table, dict):
        raise SnapshotError(f"{path} has no array table in its header")
    names = _ARRAY_NAMES + ("text_json",)
    missing = [name for name in names if name not in table]
    if missing:
        raise SnapshotError(f"{path} is missing arrays: {', '.join(missing)}")
    file_bytes = path.stat().st_size
    raw = np.asarray(np.memmap(path, dtype=np.uint8, mode="r"))
    arrays = {}
    for name in names:
        entry = table[name]
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            offset = data_start + int(entry["offset"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path} has a malformed array-table entry for {name}: {exc}"
            ) from exc
        count = 1
        for dim in shape:
            if dim < 0:
                raise SnapshotError(f"{path} array {name} has a negative shape")
            count *= dim
        nbytes = dtype.itemsize * count
        if nbytes == 0:
            # Empty arrays carry no data; their (aligned) offset may sit
            # at or past EOF when nothing was written after them.
            arrays[name] = np.zeros(shape, dtype=dtype)
        elif offset < 0 or offset + nbytes > file_bytes:
            raise SnapshotError(
                f"{path} array {name} extends past the end of the file "
                f"(truncated snapshot?)"
            )
        else:
            arrays[name] = (
                raw[offset : offset + nbytes].view(dtype).reshape(shape)
            )
    return arrays


def _validate_arrays(
    meta: dict, arrays: dict, path, *, deep: bool = True
) -> None:
    """Structural validation shared by every load path.

    A corrupt file must fail here, not as an IndexError (or a silent
    negative-index mis-score or mis-slice) deep inside a later search.
    Adjacency and postings use the same CSR shape, so one checker
    covers all four array pairs.  ``deep=False`` (the mapped load)
    checks only the O(n) indptr invariants and skips the O(E) node-id
    range scan — touching every data page at load time would defeat
    lazy warmup; the trade-off is documented in ``docs/STORAGE.md``.

    ``meta`` is either a full v1 meta dict (text lists inline) or a v2
    header (counts only, text in the undecoded blob — which validates
    its own lengths against the header when first decoded).
    """
    missing = [name for name in _ARRAY_NAMES if name not in arrays]
    if missing:
        raise SnapshotError(f"{path} is missing arrays: {', '.join(missing)}")
    num_nodes = int(meta["num_nodes"])
    if "labels" in meta:
        for field in ("labels", "tables", "refs"):
            if len(meta[field]) != num_nodes:
                raise SnapshotError(
                    f"{path} metadata is inconsistent: bad {field} length"
                )
    if len(arrays["prestige"]) != num_nodes:
        raise SnapshotError(f"{path} metadata is inconsistent with its arrays")
    num_terms = (
        len(meta["post_terms"]) if "post_terms" in meta
        else int(meta["index_terms"])
    )
    num_rel_terms = (
        len(meta["rel_terms"]) if "rel_terms" in meta
        else int(meta["relation_terms"])
    )
    csr_pairs = (
        ("out_indptr", "out_dst", num_nodes),
        ("in_indptr", "in_src", num_nodes),
        ("post_indptr", "post_nodes", num_terms),
        ("rel_indptr", "rel_nodes", num_rel_terms),
    )
    for indptr_name, ids_name, num_rows in csr_pairs:
        indptr, ids = arrays[indptr_name], arrays[ids_name]
        if (
            len(indptr) != num_rows + 1
            or indptr[0] != 0
            or indptr[-1] != len(ids)
            or np.any(np.diff(indptr) < 0)
        ):
            raise SnapshotError(f"{path} has a malformed {indptr_name} array")
        if deep and ids.size and (ids.min() < 0 or ids.max() >= num_nodes):
            raise SnapshotError(
                f"{path} has out-of-range node ids in {ids_name} "
                f"(expected [0, {num_nodes}))"
            )


def _build_ram_state(
    meta: dict, arrays: dict, path
) -> tuple[SearchGraph, InvertedIndex]:
    """Materialize the fully-resident (RAM) graph + index pair.

    The one construction path for RAM loads of *both* formats — which
    is what makes a ``storage_mode="ram"`` load of a mapped file
    bit-identical to loading the equivalent compressed file.
    """
    try:
        graph = SearchGraph._from_adjacency(
            out=_unpack_adjacency(
                arrays["out_indptr"], arrays["out_dst"],
                arrays["out_weight"], arrays["out_fwd"],
            ),
            in_=_unpack_adjacency(
                arrays["in_indptr"], arrays["in_src"],
                arrays["in_weight"], arrays["in_fwd"],
            ),
            labels=meta["labels"],
            tables=meta["tables"],
            refs=_decode_refs(meta["refs"]),
            num_forward_edges=meta["num_forward_edges"],
            prestige=arrays["prestige"],
            in_inv_weight_sum=arrays["in_invw"].tolist(),
            out_inv_weight_sum=arrays["out_invw"].tolist(),
        )
    except ValueError as exc:
        # Residual inconsistencies (e.g. negative prestige) the explicit
        # checks above did not name.
        raise SnapshotError(f"{path} is corrupt: {exc}") from exc
    index = InvertedIndex._from_postings(
        _unpack_postings(
            meta["post_terms"], arrays["post_indptr"], arrays["post_nodes"]
        ),
        _unpack_postings(meta["rel_terms"], arrays["rel_indptr"], arrays["rel_nodes"]),
    )
    return graph, index


def _decode_text_blob(raw, path) -> dict:
    """Decode the ``text_json`` array back into the five text fields
    (refs left in their encoded form, as v1 meta carries them)."""
    try:
        text = json.loads(bytes(np.asarray(raw)).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt text block: {exc}") from exc
    missing = [field for field in _TEXT_FIELDS if field not in text]
    if missing:
        raise SnapshotError(
            f"{path} text block is missing fields: {', '.join(missing)}"
        )
    return text


def _load_mapped_state(
    path: Path, pin_policy
) -> tuple[SearchGraph, InvertedIndex]:
    from repro.storage.mapped import (
        MappedInvertedIndex,
        MappedSearchGraph,
        _LazyTextField,
        _TextBlob,
        apply_pin_policy,
    )

    header, data_start = _read_mapped_header(path)
    arrays = _open_mapped_arrays(path, header, data_start)
    _validate_arrays(header, arrays, path, deep=False)
    num_nodes = int(header["num_nodes"])
    blob = _TextBlob(
        arrays["text_json"],
        num_nodes=num_nodes,
        index_terms=int(header["index_terms"]),
        relation_terms=int(header["relation_terms"]),
        path=str(path),
        decode_refs=_decode_refs,
    )
    stats = StorageStats(mode="mapped", path=str(path))
    stats.mapped_bytes = sum(int(arr.nbytes) for arr in arrays.values())
    try:
        graph = MappedSearchGraph._from_mapped(
            out_indptr=arrays["out_indptr"],
            out_dst=arrays["out_dst"],
            out_weight=arrays["out_weight"],
            out_fwd=arrays["out_fwd"],
            in_indptr=arrays["in_indptr"],
            in_src=arrays["in_src"],
            in_weight=arrays["in_weight"],
            in_fwd=arrays["in_fwd"],
            labels=_LazyTextField(blob, "labels", num_nodes),
            tables=_LazyTextField(blob, "tables", num_nodes),
            refs=_LazyTextField(blob, "refs", num_nodes),
            num_forward_edges=header["num_forward_edges"],
            prestige=arrays["prestige"],
            in_inv_weight_sum=arrays["in_invw"],
            out_inv_weight_sum=arrays["out_invw"],
            stats=stats,
        )
    except ValueError as exc:
        raise SnapshotError(f"{path} is corrupt: {exc}") from exc
    index = MappedInvertedIndex._from_mapped(
        blob=blob,
        post_indptr=arrays["post_indptr"],
        post_nodes=arrays["post_nodes"],
        rel_indptr=arrays["rel_indptr"],
        rel_nodes=arrays["rel_nodes"],
        stats=stats,
    )
    apply_pin_policy(graph, index, PinPolicy.coerce(pin_policy), stats)
    return graph, index


def mapped_sidecar_path(path: Union[str, os.PathLike]) -> Path:
    """Where a compressed snapshot's mapped conversion lives."""
    path = Path(path)
    return path.with_name(path.name + ".mapped")


def _ensure_mapped_sidecar(path: Path) -> Path:
    """Convert a compressed snapshot into its mapped sidecar (once).

    The sidecar header records the source file's size + mtime; a
    matching record means the existing sidecar is current and the
    conversion cost is skipped — so a worker fleet under
    ``REPRO_SNAPSHOT_MODE=mapped`` pays one conversion per snapshot
    rewrite, not one per process.  The write is atomic with a
    pid-unique tmp, making the convert race between workers benign.
    """
    sidecar = mapped_sidecar_path(path)
    stat = path.stat()
    source = {"bytes": stat.st_size, "mtime_ns": stat.st_mtime_ns}
    if sidecar.exists():
        try:
            header, _ = _read_mapped_header(sidecar)
        except SnapshotError:
            header = None  # damaged or half-written sidecar: rebuild
        if header is not None and header.get("source") == source:
            return sidecar
    meta, arrays = _read_archive(path)
    _validate_arrays(meta, arrays, path)
    _write_mapped(
        sidecar,
        meta,
        {name: arrays[name] for name in _ARRAY_NAMES},
        source=source,
    )
    return sidecar


def snapshot_info(path: Union[str, os.PathLike]) -> dict:
    """Cheap header inspection: versions, digest, storage and size
    counters.

    Works for both layouts without touching a data array: the
    compressed reader decompresses only the ``meta`` block, the mapped
    reader parses only the JSON header.  ``dataset_version`` and
    ``content_digest`` are None for snapshots written before they
    existed (the format is otherwise unchanged — old files load fine).
    ``storage`` names the layout; ``pin_hint_nodes``/``pin_hint_terms``
    count the save-time pin hints a mapped header carries (0 for
    compressed files — the pin set is a mapped-tier concept).
    """
    if _detect_format(path) == "mapped":
        header, _ = _read_mapped_header(path)
        hints = header.get("pin_hints") or {}
        meta, storage = header, "mapped"
        pin_nodes = len(hints.get("nodes") or ())
        pin_terms = len(hints.get("terms") or ())
    else:
        meta, _ = _read_archive(path, only_meta=True)
        storage, pin_nodes, pin_terms = "compressed", 0, 0
    return {
        "format": meta["format"],
        "version": meta["version"],
        "storage": storage,
        "dataset_version": meta.get("dataset_version"),
        "content_digest": meta.get("content_digest"),
        "num_nodes": meta["num_nodes"],
        "num_forward_edges": meta["num_forward_edges"],
        # v2 headers carry the counts directly; v1 meta carries the lists.
        "index_terms": (
            meta["index_terms"] if "index_terms" in meta
            else len(meta["post_terms"])
        ),
        "relation_terms": (
            meta["relation_terms"] if "relation_terms" in meta
            else len(meta["rel_terms"])
        ),
        "pin_hint_nodes": pin_nodes,
        "pin_hint_terms": pin_terms,
        "file_bytes": Path(path).stat().st_size,
    }


def load_snapshot(
    path: Union[str, os.PathLike],
    *,
    storage_mode: Optional[str] = None,
    pin_policy=None,
) -> tuple[SearchGraph, InvertedIndex]:
    """Restore the ``(graph, index)`` pair saved by :func:`save_snapshot`.

    ``storage_mode`` picks the tier (``None`` falls back to the
    ``REPRO_SNAPSHOT_MODE`` environment variable, then ``"auto"``):

    * ``"ram"`` — fully materialize (every format; the classic load);
    * ``"mapped"`` — serve lazily via ``np.memmap``.  A compressed
      file is converted once to a ``<path>.mapped`` sidecar;
    * ``"auto"`` — the file's native tier: RAM for compressed files,
      mapped for v2 files.

    ``pin_policy`` (a :class:`~repro.storage.PinPolicy`, dict or None
    for defaults) controls which rows a mapped load faults in eagerly.
    Answers and scores are bit-identical across every mode — only
    residency and warmup cost differ.
    """
    mode = resolve_storage_mode(storage_mode)
    fmt = _detect_format(path)
    if fmt == "compressed":
        if mode == "mapped":
            return _load_mapped_state(_ensure_mapped_sidecar(Path(path)), pin_policy)
        meta, arrays = _read_archive(path)
        _validate_arrays(meta, arrays, path)
        return _build_ram_state(meta, arrays, path)
    if mode == "ram":
        header, data_start = _read_mapped_header(path)
        mapped = _open_mapped_arrays(Path(path), header, data_start)
        arrays = {name: np.array(arr) for name, arr in mapped.items()}
        meta = dict(header)
        meta.update(_decode_text_blob(arrays.pop("text_json"), path))
        _validate_arrays(meta, arrays, path)
        return _build_ram_state(meta, arrays, path)
    return _load_mapped_state(Path(path), pin_policy)


# ----------------------------------------------------------------------
# engine conveniences
# ----------------------------------------------------------------------
def save_engine(
    path: Union[str, os.PathLike],
    engine,
    *,
    version: int = 0,
    format: str = "compressed",
) -> Path:
    """Snapshot a :class:`~repro.core.engine.KeywordSearchEngine`'s state.

    Search parameters are *not* stored — they are run-time configuration,
    not dataset state — so :func:`load_engine` accepts them explicitly.
    ``version`` stamps the dataset epoch into the header; ``format``
    picks the physical layout (see :func:`save_snapshot`).
    """
    return save_snapshot(
        path, engine.graph, engine.index, version=version, format=format
    )


def load_engine(
    path: Union[str, os.PathLike],
    *,
    params=None,
    storage_mode: Optional[str] = None,
    pin_policy=None,
):
    """Rebuild a ready-to-query engine from a snapshot file."""
    from repro.core.engine import KeywordSearchEngine

    graph, index = load_snapshot(
        path, storage_mode=storage_mode, pin_policy=pin_policy
    )
    return KeywordSearchEngine(graph, index, params=params)


# ----------------------------------------------------------------------
# command line: provision shard fleets from the shell
# ----------------------------------------------------------------------
def _make_dataset(name: str, scale: float):
    """Build one of the synthetic databases by name, scaled."""
    from repro.datasets import (
        DblpConfig,
        ImdbConfig,
        PatentsConfig,
        make_dblp,
        make_imdb,
        make_patents,
    )

    makers = {
        "dblp": (make_dblp, DblpConfig),
        "imdb": (make_imdb, ImdbConfig),
        "patents": (make_patents, PatentsConfig),
    }
    try:
        make, config_cls = makers[name]
    except KeyError:
        raise SystemExit(
            f"unknown dataset {name!r}; expected one of {sorted(makers)}"
        ) from None
    return make(config_cls().scaled(scale))


def main(argv=None) -> int:
    """``python -m repro.service.snapshot`` — inspect and create snapshots.

    ``info <path>`` prints the versioned header fields from
    :func:`snapshot_info` — including the storage layout and, for
    mapped files, the save-time pin-hint summary — without reading any
    data array, plus, when a sibling ``<path>.wal`` mutation log
    exists, its last durable sequence number and the count of commits
    the log holds beyond this snapshot's ``dataset_version`` — the
    at-a-glance "does the WAL carry unsnapshotted state" check.
    ``save <dataset> <path>`` builds a synthetic dataset (``dblp`` /
    ``imdb`` / ``patents``, optionally ``--scale``d) and writes its
    engine snapshot in either layout (``--format mapped`` for the
    memmap-servable one), so a shard fleet can be provisioned entirely
    from the shell.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.snapshot",
        description="Inspect and create engine snapshot files.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info_cmd = commands.add_parser("info", help="print a snapshot's header fields")
    info_cmd.add_argument("path", help="snapshot file to inspect")

    save_cmd = commands.add_parser(
        "save", help="build a synthetic dataset and snapshot its engine"
    )
    save_cmd.add_argument(
        "dataset", help="dataset to build: dblp, imdb or patents"
    )
    save_cmd.add_argument("path", help="snapshot file to write")
    save_cmd.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset size multiplier (default 1.0)",
    )
    save_cmd.add_argument(
        "--format",
        choices=_FORMATS,
        default="compressed",
        help="physical layout: compressed zip (default) or page-aligned "
        "mapped (np.memmap-servable)",
    )
    args = parser.parse_args(argv)

    if args.command == "info":
        try:
            info = snapshot_info(args.path)
        except SnapshotError as exc:
            print(f"error: {exc}")
            return 1
        for key, value in info.items():
            print(f"{key} = {value}")
        # A sibling WAL (the <snapshot>.wal convention) may hold commits
        # newer than this file: surface both positions so an operator
        # sees at a glance whether the log carries unsnapshotted state.
        from repro.wal.log import MutationLog, default_wal_path

        wal_path = default_wal_path(args.path)
        wal = MutationLog.peek(wal_path)
        if wal is not None:
            print(f"wal_path = {wal_path}")
            print(f"wal_seq = {wal['last_seq']}")
            print(f"wal_segments = {wal['segments']}")
            unsnapshotted = wal["last_seq"] - int(info["dataset_version"] or 0)
            print(f"wal_unsnapshotted_commits = {max(unsnapshotted, 0)}")
        return 0

    # save
    from repro.core.engine import KeywordSearchEngine

    db = _make_dataset(args.dataset, args.scale)
    engine = KeywordSearchEngine.from_database(db)
    written = save_engine(args.path, engine, format=args.format)
    print(
        f"wrote {written} ({written.stat().st_size} bytes, {args.format}): "
        f"{engine.graph.num_nodes} nodes, "
        f"{engine.graph.num_forward_edges} forward edges"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
