"""Equal-cost shortest-path tie handling for answer emission.

Under shortest-path ties the ``sp`` pointer tables of the searches (and
the oracle's Dijkstra) each settle on *one* of several equal-cost
decompositions of a root's answer tree — and which one is an accident
of exploration order.  That is not just cosmetic: the Section 3
minimality filter judges the decomposition, not the cost, so a path
table that settled on a non-minimal chain discards the root's only
emitted tree even though an equal-cost minimal star exists (the pinned
counterexample in ``tests/property/test_prop_search.py``).

This module defines one *canonical* decomposition that every consumer
— the exhaustive oracle, the per-pop python searches and the batched
kernel engines — can compute independently from nothing but final
distances and the static graph:

    from each node ``u`` with ``dist_i(u) > 0`` follow the smallest
    ``(child, weight)`` pair among the **tight** out-edges, i.e. edges
    ``(u, v, w)`` with ``dist_i(v) + w == dist_i(u)`` exactly.

Exact float equality is deliberate: every producer of these distances
(the oracle's Dijkstra, :class:`~repro.core.pathtable.PathTable` and
:class:`~repro.core.kernels.state.DensePathState`) accumulates path
cost leaf-to-root with the same left-associated additions, so at
exhaustion the distances agree bit for bit and the winning path's
first hop always satisfies the equality.  Mid-search the distances may
not be final; the helpers then either return a valid equal-cost-so-far
decomposition or ``None``, and callers simply skip the alternate.
"""

from __future__ import annotations

from math import inf
from typing import Callable, Optional

__all__ = ["tight_first_hop", "tight_decomposition"]

#: ``dist_fn(node, i)`` -> known distance of ``node`` to keyword ``i``
#: (``inf`` when unknown).
DistFn = Callable[[int, int], float]


def tight_first_hop(
    graph, dist_fn: DistFn, node: int, i: int
) -> Optional[tuple[int, float]]:
    """Canonical first hop of ``node`` toward keyword ``i``.

    The smallest ``(child, weight)`` among the tight out-edges of
    ``node`` in the full static adjacency (not just explored edges, so
    every backend enumerates identically), or ``None`` when the current
    distances admit no tight hop.
    """
    du = dist_fn(node, i)
    best: Optional[tuple[int, float]] = None
    for v, w, _ in graph.out_edges(node):
        dv = dist_fn(v, i)
        if dv != inf and dv + w == du:
            hop = (v, w)
            if best is None or hop < best:
                best = hop
    return best


def tight_decomposition(
    graph, dist_fn: DistFn, root: int, k: int
) -> Optional[tuple[list[tuple[int, ...]], list[float]]]:
    """Canonical equal-cost decomposition of ``root``'s answer tree.

    Follows :func:`tight_first_hop` per keyword until a zero-distance
    (keyword-matching) node is reached.  Returns ``(paths, dists)``
    shaped exactly like ``PathTable.build_paths`` — per-keyword path
    tuples plus re-summed root-to-leaf weights — or ``None`` when any
    keyword's walk dead-ends or exceeds the node count (possible only
    on not-yet-consistent mid-search distances).
    """
    limit = graph.num_nodes + 1
    paths: list[tuple[int, ...]] = []
    dists: list[float] = []
    for i in range(k):
        node = root
        path = [node]
        total = 0.0
        while True:
            d = dist_fn(node, i)
            if d == inf:
                return None
            if d <= 0.0:
                break
            hop = tight_first_hop(graph, dist_fn, node, i)
            if hop is None or len(path) > limit:
                return None
            child, w = hop
            total += w
            node = child
            path.append(node)
        paths.append(tuple(path))
        dists.append(total)
    return paths, dists
