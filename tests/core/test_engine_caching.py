"""Engine-level memoization: per-lambda scorers and resolve caching."""

import pytest

from repro.core.params import SearchParams
from repro.core.scoring import Scorer
from repro.errors import KeywordNotFoundError


class TestScorerMemoization:
    def test_default_scorer_is_reused(self, toy_engine):
        assert toy_engine.scorer_for(toy_engine.params.lam) is toy_engine.scorer

    def test_non_default_lam_built_once(self, toy_engine):
        first = toy_engine.scorer_for(0.9)
        second = toy_engine.scorer_for(0.9)
        assert first is second
        assert isinstance(first, Scorer)
        assert first.lam == 0.9
        assert first is not toy_engine.scorer

    def test_search_with_non_default_lam_reuses_scorer(self, toy_engine, monkeypatch):
        params = SearchParams(lam=0.7)
        toy_engine.search("gray transaction", params=params)
        constructed = []
        original_init = Scorer.__init__

        def counting_init(self, graph, lam=0.2):
            constructed.append(lam)
            original_init(self, graph, lam)

        monkeypatch.setattr(Scorer, "__init__", counting_init)
        for _ in range(5):
            toy_engine.search("gray transaction", params=params)
        assert constructed == []  # memoized: no scorer rebuilt per call

    def test_distinct_lams_get_distinct_scorers(self, toy_engine):
        assert toy_engine.scorer_for(0.1) is not toy_engine.scorer_for(0.2)

    def test_search_results_unchanged_by_memoization(self, toy_engine):
        params = SearchParams(lam=0.5)
        first = toy_engine.search("gray transaction", params=params)
        second = toy_engine.search("gray transaction", params=params)
        assert first.scores() == second.scores()
        fresh = Scorer(toy_engine.graph, 0.5)
        tree = first.trees()[0]
        rebuilt = fresh.build_tree(tree.root, tree.paths, tree.dists)
        assert rebuilt.score == pytest.approx(tree.score)


class TestResolveCache:
    def test_repeat_resolve_skips_index_lookups(self, toy_engine, monkeypatch):
        keywords, sets_first = toy_engine.resolve("gray transaction")
        lookups = []
        original = type(toy_engine.index).lookup

        def counting_lookup(self, term):
            lookups.append(term)
            return original(self, term)

        monkeypatch.setattr(type(toy_engine.index), "lookup", counting_lookup)
        keywords2, sets_second = toy_engine.resolve("gray  transaction")
        assert lookups == []  # cache hit: the frozen index was not touched
        assert keywords2 == keywords
        assert sets_second == sets_first

    def test_cached_list_is_a_fresh_copy(self, toy_engine):
        _, first = toy_engine.resolve("gray transaction")
        first.append(frozenset({999}))  # caller mutates its copy...
        _, second = toy_engine.resolve("gray transaction")
        assert len(second) == 2  # ...the cache is unaffected

    def test_failed_resolutions_are_not_cached(self, toy_engine):
        for _ in range(2):
            with pytest.raises(KeywordNotFoundError):
                toy_engine.resolve("zzz_not_a_word")
        assert ("zzz_not_a_word",) not in toy_engine._resolve_cache

    def test_cache_is_bounded(self, toy_engine, monkeypatch):
        monkeypatch.setattr(type(toy_engine), "_RESOLVE_CACHE_SIZE", 3)
        terms = list(toy_engine.index.terms())[:6]
        for term in terms:
            toy_engine.resolve(term)
        assert len(toy_engine._resolve_cache) <= 3
        # Most recent entries survive (LRU discards the oldest).
        assert (terms[-1],) in toy_engine._resolve_cache

    def test_sequence_and_string_forms_share_entries(self, toy_engine):
        toy_engine._resolve_cache.clear()
        toy_engine.resolve("gray transaction")
        toy_engine.resolve(("gray", "transaction"))
        assert len(toy_engine._resolve_cache) == 1

    def test_origin_sizes_still_correct(self, toy_engine):
        first = toy_engine.origin_sizes("gray transaction")
        second = toy_engine.origin_sizes("gray transaction")
        assert first == second
        assert all(size >= 1 for size in first)
