"""Per-query resource accounting: explain reports, fingerprints and
fleet-wide workload analytics.

Three cooperating pieces, all JSON-safe and dependency-free so every
tier (engine, thread service, sharded supervisor, HTTP debug surface)
can pass them around as plain dicts:

* :func:`build_explain_report` — turns one finished search (its stats,
  sampled timeline and released answers) into a structured report with
  a **canonical** section that is deterministic across expansion
  backends (seed resolution, parameter echo, answers with full score
  decompositions) and non-canonical sections (timeline, cost vector,
  timings) that legitimately vary run to run.
* :func:`query_fingerprint` — the canonical workload identity of a
  query: sorted lower-cased terms + algorithm + a digest of the
  parameter overrides.  Caching keys identify *result* identity;
  fingerprints identify *workload shape* (term order and k don't
  change what the search does structurally, so they are folded away).
* :class:`SpaceSavingSketch` / :class:`WorkloadAnalytics` — a
  space-saving heavy-hitter sketch (Metwally et al., ICDT 2005) over
  fingerprints carrying per-key cost/latency aggregates, with the
  mergeability the sharded tier needs: each replica keeps its own
  sketch and the supervisor folds their exports into one fleet view,
  like the metrics registry.

:class:`ExplainStore` is the bounded keep-last-N report store behind
``GET /debug/explain/<request_id>``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "ExplainStore",
    "SpaceSavingSketch",
    "WorkloadAnalytics",
    "build_explain_report",
    "canonical_explain_bytes",
    "merge_sketch_exports",
    "query_fingerprint",
]


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def _params_digest(params) -> str:
    """Stable short digest of a parameter override mapping/dataclass."""
    if params is None:
        payload: dict = {}
    elif isinstance(params, Mapping):
        payload = dict(params)
    elif hasattr(params, "__dataclass_fields__"):
        import dataclasses

        payload = dataclasses.asdict(params)
    else:  # pragma: no cover - defensive
        payload = {"repr": repr(params)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:8]


def query_fingerprint(
    query, algorithm: str = "bidirectional", params=None
) -> str:
    """Canonical workload identity of a query.

    ``query`` is a keyword sequence or a raw query string (kept as one
    term then — the service fingerprints *resolved* keyword tuples).
    The result is human-scannable (``algo|sorted terms|digest``) so the
    heavy-hitter table reads directly on a dashboard.
    """
    if isinstance(query, str):
        terms: Sequence[str] = (query,)
    else:
        terms = tuple(str(t) for t in query)
    canon = " ".join(sorted(t.strip().lower() for t in terms if t.strip()))
    return f"{algorithm}|{canon}|{_params_digest(params)}"


# ----------------------------------------------------------------------
# heavy-hitter sketch
# ----------------------------------------------------------------------
class SpaceSavingSketch:
    """Space-saving top-K sketch with per-key cost aggregates.

    Counter semantics (Metwally et al.): each tracked key holds an
    over-estimate ``est`` and an error bound ``err`` such that
    ``true <= est`` and ``est - err <= true``.  A full sketch evicts
    the minimum-``est`` key to admit a new one, inheriting its count as
    the newcomer's error.  ``absent_bound()`` upper-bounds the true
    count of any key *not* tracked — the completeness guarantee the
    property tests pin: every key with true count above that bound is
    in the sketch.

    :meth:`merge` implements the mergeable-summaries combine: per-key
    estimates (and errors) add, a key absent from one side contributes
    that side's absent bound to both, and the union is pruned back to
    capacity.  All three invariants above survive the merge, which is
    what lets replicas sketch independently and the supervisor fold.

    Aggregates (query count is ``est`` itself; ``elapsed`` seconds and
    integer cost counters sum per key) are exact for keys never
    evicted and reset on eviction — approximate exactly where the
    count itself is.

    Not thread-safe; :class:`WorkloadAnalytics` adds the lock.
    """

    __slots__ = ("capacity", "total", "_floor", "_entries")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        #: Total observations offered (sum over all streams merged in).
        self.total = 0
        # Lower bound carried by merges for keys absent from a
        # non-full sketch (0 until a merge of full sketches happens).
        self._floor = 0
        # key -> [est, err, elapsed_total, {cost: total}]
        self._entries: dict[str, list] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def offer(
        self,
        key: str,
        count: int = 1,
        *,
        elapsed: float = 0.0,
        costs: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Record ``count`` observations of ``key`` with its costs."""
        self.total += count
        entry = self._entries.get(key)
        if entry is not None:
            entry[0] += count
        elif len(self._entries) < self.capacity:
            entry = self._entries[key] = [count + self._floor, self._floor, 0.0, {}]
        else:
            victim = min(self._entries, key=lambda k: self._entries[k][0])
            floor = self._entries.pop(victim)[0]
            self._floor = max(self._floor, floor)
            entry = self._entries[key] = [floor + count, floor, 0.0, {}]
        entry[2] += float(elapsed)
        if costs:
            bucket = entry[3]
            for name, value in costs.items():
                bucket[name] = bucket.get(name, 0) + int(value)

    def absent_bound(self) -> int:
        """Upper bound on the true count of any key not in the sketch."""
        if len(self._entries) >= self.capacity:
            return max(
                self._floor, min(entry[0] for entry in self._entries.values())
            )
        return self._floor

    # ------------------------------------------------------------------
    def merge(self, other: "SpaceSavingSketch") -> None:
        """Fold ``other`` into this sketch (mergeable-summaries combine)."""
        bound_self = self.absent_bound()
        bound_other = other.absent_bound()
        merged: dict[str, list] = {}
        for key in set(self._entries) | set(other._entries):
            a = self._entries.get(key)
            b = other._entries.get(key)
            est = (a[0] if a else bound_self) + (b[0] if b else bound_other)
            err = (a[1] if a else bound_self) + (b[1] if b else bound_other)
            elapsed = (a[2] if a else 0.0) + (b[2] if b else 0.0)
            costs: dict[str, int] = dict(a[3]) if a else {}
            if b:
                for name, value in b[3].items():
                    costs[name] = costs.get(name, 0) + value
            merged[key] = [est, err, elapsed, costs]
        floor = bound_self + bound_other
        if len(merged) > self.capacity:
            keep = sorted(merged, key=lambda k: (-merged[k][0], k))
            for key in keep[self.capacity:]:
                floor = max(floor, merged.pop(key)[0])
        self._entries = merged
        self._floor = floor
        self.total += other.total

    # ------------------------------------------------------------------
    def top(self, n: Optional[int] = None) -> list[dict]:
        """The tracked keys, heaviest first, as JSON-safe dicts."""
        order = sorted(
            self._entries.items(), key=lambda item: (-item[1][0], item[0])
        )
        if n is not None:
            order = order[:n]
        return [
            {
                "key": key,
                "count": entry[0],
                "error": entry[1],
                "elapsed_total": entry[2],
                "costs": dict(entry[3]),
            }
            for key, entry in order
        ]

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "floor": self._floor,
            "entries": self.top(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SpaceSavingSketch":
        sketch = cls(int(payload.get("capacity", 64)))
        sketch.total = int(payload.get("total", 0))
        sketch._floor = int(payload.get("floor", 0))
        for row in payload.get("entries", ()):
            sketch._entries[str(row["key"])] = [
                int(row.get("count", 0)),
                int(row.get("error", 0)),
                float(row.get("elapsed_total", 0.0)),
                {str(k): int(v) for k, v in dict(row.get("costs", {})).items()},
            ]
        return sketch


def merge_sketch_exports(exports: Iterable[Mapping]) -> dict:
    """Fold replica sketch exports (:meth:`SpaceSavingSketch.to_dict`)
    into one fleet-wide export — the supervisor's ``/debug/queries``."""
    merged: Optional[SpaceSavingSketch] = None
    for payload in exports:
        sketch = SpaceSavingSketch.from_dict(payload)
        if merged is None:
            merged = sketch
        else:
            merged.merge(sketch)
    if merged is None:
        merged = SpaceSavingSketch()
    return merged.to_dict()


class WorkloadAnalytics:
    """Thread-safe per-service workload aggregation over fingerprints."""

    def __init__(self, capacity: int = 64) -> None:
        self._lock = threading.Lock()
        self._sketch = SpaceSavingSketch(capacity)

    def record(
        self,
        fingerprint: str,
        *,
        elapsed: float = 0.0,
        costs: Optional[Mapping[str, int]] = None,
    ) -> None:
        with self._lock:
            self._sketch.offer(fingerprint, elapsed=elapsed, costs=costs)

    def export(self) -> dict:
        """JSON-safe snapshot (wire format for worker -> supervisor)."""
        with self._lock:
            return self._sketch.to_dict()

    def top(self, n: int = 10) -> list[dict]:
        with self._lock:
            return self._sketch.top(n)


# ----------------------------------------------------------------------
# explain reports
# ----------------------------------------------------------------------
#: Origin-node ids sampled per keyword into the canonical seed section.
SEED_SAMPLE = 8

#: Answer-tree score formula echoed into every decomposition (paper
#: Section 2.3, normalized as DESIGN.md Section 3 records).
SCORE_FORMULA = "node_score**lambda / (1 + edge_score)"

#: Parameter fields excluded from the canonical echo: they select *how*
#: the engine computes, not *what* the query means, and legitimately
#: differ across backends/runs of the same logical query.
_NON_CANONICAL_PARAMS = frozenset(
    {"expansion_backend", "expansion_batch", "trace_every_n_pops"}
)


def _params_echo(params) -> dict:
    import dataclasses

    payload = dataclasses.asdict(params)
    return {
        name: value
        for name, value in sorted(payload.items())
        if name not in _NON_CANONICAL_PARAMS
    }


def _decompose_answer(rank: int, answer, keywords, graph, lam: float) -> dict:
    """Per-answer score decomposition, recomputed from first principles
    so a reader can audit the released score against the paper's
    ranking formula (Section 2.3 via the Scorer)."""
    tree = answer.tree
    root_prestige = float(graph.node_prestige(tree.root))
    leaf_terms = [
        {"node": int(node), "prestige": float(graph.node_prestige(node))}
        for node in sorted(tree.leaves())
        if node != tree.root
    ]
    return {
        "rank": rank,
        "root": int(tree.root),
        "score": float(tree.score),
        "edge_score": float(tree.edge_score),
        "node_score": float(tree.node_score),
        "decomposition": {
            "formula": SCORE_FORMULA,
            "lambda": float(lam),
            "root_prestige": root_prestige,
            "leaf_terms": leaf_terms,
            "paths": [
                {
                    "keyword": str(keywords[i]),
                    "path": [int(node) for node in path],
                    "dist": float(tree.dists[i]),
                }
                for i, path in enumerate(tree.paths)
            ],
        },
        # The output tie-break rule itself is canonical; the observed
        # pop counts are exploration-order dependent and live in the
        # report's non-canonical ``answer_timing`` section.
        "tie_break": "equal-score answers release in generation order",
    }


def build_explain_report(
    *,
    result,
    keywords: Sequence[str],
    keyword_sets: Sequence[frozenset[int]],
    params,
    graph,
    timeline: Optional[Sequence[dict]] = None,
) -> dict:
    """Assemble the explain report for one finished search.

    The ``canonical`` section depends only on the query and the
    released answers — per-term seed resolution (posting sizes plus a
    sorted sample of origin ids), the parameter echo (minus
    backend-selection knobs) and per-answer score decompositions — and
    is byte-stable across expansion backends
    (:func:`canonical_explain_bytes` pins this).  ``timeline`` (the
    sampled expansion trajectory and scheduling decisions), ``costs``
    (the always-on counters) and ``timings`` vary run to run and live
    outside it.
    """
    seeds = [
        {
            "keyword": str(keyword),
            "origin_count": len(nodes),
            "origin_sample": [int(n) for n in sorted(nodes)[:SEED_SAMPLE]],
        }
        for keyword, nodes in zip(keywords, keyword_sets)
    ]
    answers = [
        _decompose_answer(rank, answer, keywords, graph, params.lam)
        for rank, answer in enumerate(result.answers)
    ]
    stats = result.stats
    return {
        "version": 1,
        "canonical": {
            "algorithm": result.algorithm,
            "keywords": [str(k) for k in keywords],
            "seeds": seeds,
            "params": _params_echo(params),
            "answers": answers,
            "complete": bool(result.complete),
        },
        "timeline": [dict(event) for event in (timeline or ())],
        "answer_timing": [
            {
                "rank": rank,
                "generated_pops": int(answer.generated_pops),
                "output_pops": int(answer.output_pops),
            }
            for rank, answer in enumerate(result.answers)
        ],
        "costs": stats.cost_vector() if stats is not None else {},
        "timings": {"elapsed": stats.elapsed if stats is not None else 0.0},
    }


def canonical_explain_bytes(report: Mapping) -> bytes:
    """The canonical section serialized reproducibly — the bytes the
    cross-backend determinism test compares."""
    return json.dumps(
        report.get("canonical", {}),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    ).encode("utf-8")


# ----------------------------------------------------------------------
# explain store
# ----------------------------------------------------------------------
class ExplainStore:
    """Bounded keep-last-N store of explain reports by request id."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._reports: "OrderedDict[str, dict]" = OrderedDict()

    def put(self, request_id: str, report: dict) -> None:
        with self._lock:
            self._reports[request_id] = report
            self._reports.move_to_end(request_id)
            while len(self._reports) > self.capacity:
                self._reports.popitem(last=False)

    def get(self, request_id: str) -> Optional[dict]:
        with self._lock:
            return self._reports.get(request_id)

    def ids(self) -> list[str]:
        """Stored request ids, oldest first."""
        with self._lock:
            return list(self._reports)

    def __len__(self) -> int:
        with self._lock:
            return len(self._reports)
