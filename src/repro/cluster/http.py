"""Stdlib HTTP front-end for a query service (ROADMAP follow-up).

``QueryRequest`` / ``QueryResponse`` were wire-shaped from the start —
structured errors, no exceptions across the boundary, JSON-ready
metrics — so the endpoint is a thin translation layer over either a
:class:`~repro.service.QueryService` or a
:class:`~repro.cluster.ShardedQueryService` (anything exposing
``search`` / ``search_many`` / ``metrics`` / ``datasets``).  Pure
stdlib: ``http.server.ThreadingHTTPServer``, no new dependencies.

Routes
------
``POST /search``
    Body: one request object (:func:`repro.service.wire.request_from_dict`
    shape, e.g. ``{"dataset": "dblp", "query": "gray transaction",
    "k": 5}``).  Response: one response object; HTTP status mirrors the
    structured ``error_type`` (404 unknown dataset / absent keyword,
    400 malformed, 504 deadline, 503 crashed worker, 500 otherwise).
``POST /batch``
    Body: ``{"requests": [...], "timeout": seconds?}``.  Always 200:
    per-item errors live inside the response objects, matching
    ``search_many``'s never-raise contract.
``POST /mutate``
    Body: ``{"dataset": name, "mutations": [...]}`` with wire mutation
    dicts (:mod:`repro.live.mutations`).  Applies the batch through the
    service's ``apply`` — on the sharded tier that broadcasts to every
    replica — and returns the commit outcome (new version, assigned
    node ids).  400 for malformed batches, 404 for unknown datasets,
    501 when the service has no live-mutation support.
``DELETE /search/<request_id>``
    Cancel an in-flight search submitted with that ``request_id``.
    The search stops at its next cooperative check; the original
    ``POST /search`` gets its structured cancelled/partial response.
    Always 200 with ``{"cancelled": true|false}`` — cancellation is
    racy by nature, a request that just completed is not an error.
``GET /metrics``
    The service's metrics dict.  ``?format=prometheus`` renders the
    service's telemetry registry as Prometheus text exposition 0.0.4
    (``text/plain``) instead — what a scraper points at.
``GET /healthz``
    ``{"status": "ok", "datasets": [...]}`` plus fleet liveness when
    the service exposes ``health()`` (the sharded tier does); degrades
    to 503 when workers are down.
``GET /debug/trace/<trace_id>``
    The reconstructed span tree for one trace (404 when unknown or
    evicted, 501 when the service has tracing off).
    ``?format=text`` renders the tree as indented plain text
    (:func:`~repro.telemetry.trace.render_span_tree`) instead of JSON.
``GET /debug/slow``
    The slow-query log, newest first, each entry carrying its dumped
    span tree plus its workload ``fingerprint`` and whether an explain
    report is retained for it.
``GET /debug/explain/<request_id>``
    The retained explain report for one ``explain=True`` request (404
    when unknown or evicted, 501 when the service has accounting off).
``GET /debug/queries``
    Workload analytics: the heavy-hitter sketch of query fingerprints
    with per-fingerprint count, latency and cost totals — merged
    across every replica on the sharded tier.
``GET /debug/events``
    The merged structured event stream (worker logs pulled and
    re-sequenced on the sharded tier): ``{"events": [...],
    "last_seq": N}``.  ``?since=<seq>`` returns only events after that
    supervisor sequence number — poll with the last ``last_seq`` you
    saw for an incremental tail.
``GET /debug/profile``
    Profile the fleet for ``?seconds=N`` (default 2, capped at 30)
    and return the merged collapsed-stack text (``stack count`` per
    line, flamegraph-ready); 501 when profiling is off.
``GET /debug/dashboard``
    The whole fleet on one dependency-free auto-refreshing HTML page:
    health, SLO burn rates, recent events, latency per algorithm,
    slow queries and the hottest profile stacks.

Tracing: when the service has a tracer, ``POST /search`` mints the
trace at the front door — an ``http`` root span whose id rides the
request into the service — and every search response carries
``X-Trace-Id`` / ``X-Request-Id`` headers (error, deadline and 499
paths included), so a client can fetch ``/debug/trace/<id>`` for any
answer it got.  Span lists are stripped from JSON bodies; trees are
read through the debug endpoint.

Client disconnects map to cancellation: while a ``POST /search`` is
running, a watcher thread peeks the socket; a client that hung up has
its search cancelled (nobody is left to read the answer), freeing the
worker.  A cancelled search's response uses 499, nginx's "client
closed request" convention.

Use :func:`make_server` + ``serve_forever`` in a thread (see
``examples/cluster_quickstart.py``), or :func:`serve` to block.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs

from repro.errors import (
    DeadlineExceededError,
    EmptyQueryError,
    KeywordNotFoundError,
    MutationError,
    PoolClosedError,
    ReproError,
    SearchCancelledError,
    UnknownDatasetError,
    WorkerCrashedError,
)
from repro.service.wire import (
    error_response_dict,
    request_from_dict,
    response_to_dict,
)
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.metrics import render_prometheus
from repro.telemetry.trace import new_trace_id, render_span_tree

__all__ = ["QueryHTTPServer", "make_server", "serve", "status_for_error"]

#: Structured error type -> HTTP status.
_ERROR_STATUS = {
    UnknownDatasetError.__name__: 404,
    KeywordNotFoundError.__name__: 404,
    EmptyQueryError.__name__: 400,
    MutationError.__name__: 400,
    ValueError.__name__: 400,
    TypeError.__name__: 400,
    DeadlineExceededError.__name__: 504,
    SearchCancelledError.__name__: 499,
    WorkerCrashedError.__name__: 503,
    PoolClosedError.__name__: 503,
}

#: Seconds between socket peeks while a search runs.
_DISCONNECT_POLL_SECONDS = 0.05

_internal_ids = itertools.count(1)


def status_for_error(error_type: Optional[str]) -> int:
    """HTTP status for a structured ``QueryResponse.error_type``."""
    if error_type is None:
        return 200
    return _ERROR_STATUS.get(error_type, 500)


class QueryHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one query service."""

    daemon_threads = True

    def __init__(self, address, service, *, quiet: bool = True) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-query-http/1.0"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: Optional[dict] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            if value is not None:
                self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, error_type: str) -> None:
        self._send_json(status, {"error": message, "error_type": error_type})

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body is empty; expected a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path, _, query = self.path.partition("?")
            if path == "/healthz":
                self._handle_healthz()
            elif path == "/metrics":
                self._handle_metrics(query)
            elif path.startswith("/debug/trace/") and path != "/debug/trace/":
                self._handle_trace(path[len("/debug/trace/"):], query)
            elif path == "/debug/slow":
                self._handle_slow()
            elif path.startswith("/debug/explain/") and path != "/debug/explain/":
                self._handle_explain(path[len("/debug/explain/"):])
            elif path == "/debug/queries":
                self._handle_queries()
            elif path == "/debug/events":
                self._handle_events(query)
            elif path == "/debug/profile":
                self._handle_profile(query)
            elif path == "/debug/dashboard":
                self._handle_dashboard()
            else:
                self._send_error_json(
                    404, f"no route {self.path!r}", "NotFoundError"
                )
        except Exception as exc:  # pragma: no cover - handler backstop
            self._send_error_json(500, str(exc), type(exc).__name__)

    def _handle_metrics(self, query: str) -> None:
        fmt = (parse_qs(query).get("format") or ["json"])[0]
        if fmt not in ("json", "prometheus"):
            self._send_error_json(
                400,
                f"unknown metrics format {fmt!r}; expected json or prometheus",
                "ValueError",
            )
            return
        metrics = self.server.service.metrics()
        if fmt == "json":
            self._send_json(200, metrics)
            return
        families = metrics.get("registry")
        if not isinstance(families, dict):
            self._send_error_json(
                501, "service exports no telemetry registry", "NotImplemented"
            )
            return
        self._send_text(200, render_prometheus(families))

    def _handle_trace(self, trace_id: str, query: str = "") -> None:
        fmt = (parse_qs(query).get("format") or ["json"])[0]
        if fmt not in ("json", "text"):
            self._send_error_json(
                400,
                f"unknown trace format {fmt!r}; expected json or text",
                "ValueError",
            )
            return
        trace = getattr(self.server.service, "trace", None)
        if not callable(trace):
            self._send_error_json(
                501, "service does not support tracing", "NotImplemented"
            )
            return
        tree = trace(trace_id)
        if tree is None:
            self._send_error_json(
                404, f"unknown trace {trace_id!r}", "NotFoundError"
            )
            return
        if fmt == "text":
            self._send_text(
                200,
                render_span_tree(tree),
                content_type="text/plain; charset=utf-8",
            )
            return
        self._send_json(200, tree)

    def _handle_slow(self) -> None:
        slow = getattr(self.server.service, "slow_queries", None)
        if not callable(slow):
            self._send_error_json(
                501, "service has no slow-query log", "NotImplemented"
            )
            return
        self._send_json(200, {"slow_queries": slow()})

    def _handle_explain(self, request_id: str) -> None:
        explain = getattr(self.server.service, "explain", None)
        if not callable(explain):
            self._send_error_json(
                501, "service has no explain store", "NotImplemented"
            )
            return
        report = explain(request_id)
        if report is None:
            self._send_error_json(
                404,
                f"no explain report for request {request_id!r} (run the "
                f"query with explain=true and a request_id)",
                "NotFoundError",
            )
            return
        self._send_json(200, report)

    def _handle_queries(self) -> None:
        stats = getattr(self.server.service, "query_stats", None)
        if not callable(stats):
            self._send_error_json(
                501, "service has no workload analytics", "NotImplemented"
            )
            return
        self._send_json(200, stats())

    def _handle_events(self, query: str) -> None:
        events = getattr(self.server.service, "events", None)
        if not callable(events):
            self._send_error_json(
                501, "service has no event log", "NotImplemented"
            )
            return
        raw = (parse_qs(query).get("since") or ["0"])[0]
        try:
            since = int(raw)
        except ValueError:
            self._send_error_json(
                400, f'"since" must be an integer, got {raw!r}', "ValueError"
            )
            return
        self._send_json(200, events(since))

    def _handle_profile(self, query: str) -> None:
        profile = getattr(self.server.service, "profile", None)
        if not callable(profile):
            self._send_error_json(
                501, "service has no profiler", "NotImplemented"
            )
            return
        raw = (parse_qs(query).get("seconds") or ["2"])[0]
        try:
            seconds = float(raw)
        except ValueError:
            self._send_error_json(
                400, f'"seconds" must be a number, got {raw!r}', "ValueError"
            )
            return
        if not 0 <= seconds <= 30:
            self._send_error_json(
                400,
                f'"seconds" must be between 0 and 30, got {seconds}',
                "ValueError",
            )
            return
        text = profile(seconds)
        if text is None:
            self._send_error_json(
                501, "profiling is disabled on this service", "NotImplemented"
            )
            return
        self._send_text(
            200, text, content_type="text/plain; charset=utf-8"
        )

    def _handle_dashboard(self) -> None:
        data = getattr(self.server.service, "dashboard_data", None)
        if not callable(data):
            self._send_error_json(
                501, "service has no dashboard", "NotImplemented"
            )
            return
        self._send_text(
            200,
            render_dashboard(data()),
            content_type="text/html; charset=utf-8",
        )

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/search":
                self._handle_search()
            elif self.path == "/batch":
                self._handle_batch()
            elif self.path == "/mutate":
                self._handle_mutate()
            else:
                self._send_error_json(
                    404, f"no route {self.path!r}", "NotFoundError"
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up; its search was cancelled already
        except ValueError as exc:
            self._send_error_json(400, str(exc), type(exc).__name__)
        except Exception as exc:  # pragma: no cover - handler backstop
            self._send_error_json(500, str(exc), type(exc).__name__)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        try:
            prefix = "/search/"
            if not self.path.startswith(prefix) or self.path == prefix:
                self._send_error_json(
                    404, f"no route {self.path!r}", "NotFoundError"
                )
                return
            request_id = self.path[len(prefix):]
            cancel = getattr(self.server.service, "cancel", None)
            if not callable(cancel):
                self._send_error_json(
                    501, "service does not support cancellation", "NotImplemented"
                )
                return
            self._send_json(
                200, {"request_id": request_id, "cancelled": bool(cancel(request_id))}
            )
        except Exception as exc:  # pragma: no cover - handler backstop
            self._send_error_json(500, str(exc), type(exc).__name__)

    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        service = self.server.service
        payload = {"status": "ok", "datasets": service.datasets()}
        status = 200
        health = getattr(service, "health", None)
        if callable(health):
            fleet = health()
            payload.update(fleet)
            if fleet.get("alive", 0) < fleet.get("workers", 0):
                payload["status"] = "degraded"
                status = 503
        if "versions" not in payload:
            # Thread-tier services report per-dataset epoch versions
            # directly (the sharded tier's health() already did).
            versions = getattr(service, "dataset_versions", None)
            if callable(versions):
                payload["versions"] = versions()
        self._send_json(status, payload)

    def _handle_mutate(self) -> None:
        body = self._read_json()
        if not isinstance(body, dict):
            raise ValueError('mutate body must be {"dataset": ..., "mutations": [...]}')
        dataset = body.get("dataset")
        mutations = body.get("mutations")
        if not isinstance(dataset, str):
            raise ValueError('mutate body is missing the "dataset" name')
        if not isinstance(mutations, list):
            raise ValueError('"mutations" must be a list of mutation objects')
        apply_fn = getattr(self.server.service, "apply", None)
        if not callable(apply_fn):
            self._send_error_json(
                501, "service does not support live mutations", "NotImplemented"
            )
            return
        try:
            result = apply_fn(dataset, mutations)
        except ReproError as exc:
            # apply has exception semantics (unlike search): map the
            # structured library errors onto the same status table.
            self._send_error_json(
                status_for_error(type(exc).__name__), str(exc), type(exc).__name__
            )
            return
        payload = result.to_dict() if hasattr(result, "to_dict") else result
        self._send_json(200, payload)

    def _handle_search(self) -> None:
        request = request_from_dict(self._read_json())
        service = self.server.service
        # Mint the trace at the front door: an ``http`` root span whose
        # id the route/worker spans hang off.  The span lands in the
        # service's own tracer, so /debug/trace/<id> shows one tree.
        tracer = getattr(service, "tracer", None)
        http_span = None
        if tracer is not None:
            trace_id = (
                request.trace_id if request.trace_id is not None else new_trace_id()
            )
            http_span = tracer.start_span(
                "http", trace_id=trace_id, parent_id=request.parent_span_id
            )
            http_span.set_attribute("method", "POST")
            http_span.set_attribute("path", "/search")
            request = replace(
                request, trace_id=trace_id, parent_span_id=http_span.span_id
            )
        watcher_stop: Optional[threading.Event] = None
        if callable(getattr(service, "cancel", None)) and hasattr(
            socket, "MSG_DONTWAIT"
        ):
            # Map a client disconnect to cancellation: nobody is left
            # to read the answer, so free the worker.  Needs an id the
            # service registers; mint one if the client didn't.
            if request.request_id is None:
                request = replace(
                    request, request_id=f"http-internal-{next(_internal_ids)}"
                )
            watcher_stop = threading.Event()
            threading.Thread(
                target=self._watch_disconnect,
                args=(watcher_stop, request.request_id),
                name="repro-http-disconnect-watch",
                daemon=True,
            ).start()
        try:
            response = service.search(request)
        except BaseException:
            if http_span is not None:
                http_span.end(status="error")
            raise
        finally:
            if watcher_stop is not None:
                watcher_stop.set()
        status = status_for_error(response.error_type)
        if http_span is not None:
            http_span.set_attribute("status", status)
            if response.request_id is not None:
                http_span.set_attribute("request_id", response.request_id)
            http_span.end(status="ok" if response.error_type is None else "error")
        payload = response_to_dict(response)
        # Span lists stay server-side (read them via /debug/trace/<id>);
        # shipping them in every body would bloat the common case.
        payload["spans"] = None
        self._send_json(
            status,
            payload,
            headers={
                "X-Trace-Id": response.trace_id or request.trace_id,
                "X-Request-Id": response.request_id or request.request_id,
            },
        )

    def _watch_disconnect(self, stop: threading.Event, request_id: str) -> None:
        """Peek the client socket while its search runs; EOF means the
        client hung up — cancel the search it was waiting on.

        Deliberate tradeoff: a read-side FIN cannot be distinguished
        from a full disconnect by peeking, so a client that half-closes
        its write side (``shutdown(SHUT_WR)``) while still listening —
        legal but rare; browsers, curl and every mainstream HTTP client
        keep the socket fully open — has its search cancelled and gets
        the 499 response.  The alternative (ignoring EOF) would leave
        every genuinely vanished client burning a worker, which is the
        load pattern this watcher exists to stop.
        """
        disconnected = False
        while not stop.wait(_DISCONNECT_POLL_SECONDS):
            if not disconnected:
                try:
                    chunk = self.connection.recv(
                        1, socket.MSG_PEEK | socket.MSG_DONTWAIT
                    )
                except (BlockingIOError, InterruptedError):
                    continue  # no bytes waiting: still connected
                except OSError:
                    chunk = b""  # socket torn down
                if chunk != b"":
                    # Pipelined bytes from a live client: nothing to
                    # cancel; keep watching for EOF.
                    continue
                disconnected = True
            # Keep retrying until the cancel lands: the request may not
            # be registered yet (still queued behind a busy executor),
            # and a one-shot miss would leave the orphaned search
            # running to completion.  The handler sets `stop` when the
            # search returns.
            if self.server.service.cancel(request_id):
                return

    def _handle_batch(self) -> None:
        body = self._read_json()
        if not isinstance(body, dict) or "requests" not in body:
            raise ValueError('batch body must be {"requests": [...]}')
        raw_items = body["requests"]
        if not isinstance(raw_items, list):
            raise ValueError('"requests" must be a list of request objects')
        timeout = body.get("timeout")
        # Boundary rule (see wire.py): a string timeout must be a
        # structured 400 here, not a TypeError per item later.
        if timeout is not None and (
            isinstance(timeout, bool) or not isinstance(timeout, (int, float))
        ):
            raise ValueError(
                f'batch "timeout" must be seconds (number), '
                f"got {type(timeout).__name__}"
            )

        # Convert what converts; malformed items keep their slots as
        # structured errors, mirroring search_many's contract.
        slots: list[Optional[dict]] = [None] * len(raw_items)
        requests, positions = [], []
        for i, raw in enumerate(raw_items):
            try:
                requests.append(request_from_dict(raw))
                positions.append(i)
            except Exception as exc:
                slots[i] = error_response_dict(raw, str(exc), type(exc).__name__)
        responses = self.server.service.search_many(requests, timeout=timeout)
        for position, response in zip(positions, responses):
            wire = response_to_dict(response)
            wire["spans"] = None  # read trees via /debug/trace/<id>
            slots[position] = wire
        self._send_json(200, {"responses": slots})


def make_server(
    service, host: str = "127.0.0.1", port: int = 0, *, quiet: bool = True
) -> QueryHTTPServer:
    """Build (but do not run) a server; ``port=0`` picks a free port.

    The bound address is ``server.server_address``.  Run with
    ``server.serve_forever()`` (often in a thread) and stop with
    ``server.shutdown()``.
    """
    return QueryHTTPServer((host, port), service, quiet=quiet)


def serve(
    service, host: str = "127.0.0.1", port: int = 8080, *, quiet: bool = False
) -> None:  # pragma: no cover - blocking convenience
    """Serve ``service`` until interrupted."""
    server = make_server(service, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving {type(service).__name__} on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
