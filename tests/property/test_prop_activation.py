"""Property tests: spreading-activation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activation import ActivationTable
from repro.graph.digraph import DataGraph


@st.composite
def activation_cases(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
            ),
            min_size=2,
            max_size=2 * n,
        )
    )
    dedup = {}
    for u, v, w in edges:
        if u != v:
            dedup[(u, v)] = w
    keyword_sets = [
        frozenset(
            draw(st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=3))
        )
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    mu = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    spreads = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["backward", "forward"]),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=12,
        )
    )
    return n, dedup, keyword_sets, mu, spreads


def build(n, edges):
    dg = DataGraph()
    for i in range(n):
        dg.add_node(str(i))
    for (u, v), w in edges.items():
        dg.add_edge(u, v, w)
    return dg.freeze()


@given(case=activation_cases())
@settings(max_examples=80, deadline=None)
def test_activation_bounded_and_consistent(case):
    n, edges, keyword_sets, mu, spreads = case
    graph = build(n, edges)
    table = ActivationTable(graph, keyword_sets, mu=mu)
    table.seed_all()

    seed_max = [
        max(
            (graph.node_prestige(u) / len(nodes) for u in nodes),
            default=0.0,
        )
        for nodes in keyword_sets
    ]

    parents: dict[int, dict[int, float]] = {}
    for direction, node in spreads:
        # Simulate exploration: register the spread edges as explored.
        if direction == "backward":
            for u, w, _ in graph.in_edges(node):
                parents.setdefault(node, {})[u] = min(
                    w, parents.get(node, {}).get(u, w)
                )
            table.spread_backward(node, parents)
        else:
            for v, w, _ in graph.out_edges(node):
                parents.setdefault(v, {})[node] = min(
                    w, parents.get(v, {}).get(node, w)
                )
            table.spread_forward(node, parents)

    for i, _ in enumerate(keyword_sets):
        for node in range(n):
            a = table.activation(node, i)
            # Non-negative and never above the strongest seed of that
            # keyword (mu <= 1 and max-combine cannot amplify).
            assert a >= 0.0
            assert a <= seed_max[i] + 1e-9

    for node in range(n):
        total = sum(
            table.activation(node, i) for i in range(len(keyword_sets))
        )
        assert abs(total - table.total(node)) < 1e-9


@given(case=activation_cases())
@settings(max_examples=40, deadline=None)
def test_spreading_is_monotone_nondecreasing(case):
    """Spreading can only raise activations (max-combine)."""
    n, edges, keyword_sets, mu, spreads = case
    graph = build(n, edges)
    table = ActivationTable(graph, keyword_sets, mu=mu)
    table.seed_all()
    before = {
        (node, i): table.activation(node, i)
        for node in range(n)
        for i in range(len(keyword_sets))
    }
    for direction, node in spreads:
        if direction == "backward":
            table.spread_backward(node, {})
        else:
            table.spread_forward(node, {})
    for (node, i), previous in before.items():
        assert table.activation(node, i) >= previous - 1e-12
