"""EventLog: sequencing, ring bounds, severity filters, replica merge.

The load-bearing property is the concurrency one: sequence numbers are
assigned under the log's lock, so parallel emitters must never drop,
duplicate, or reorder a sequence — everything the supervisor's
incremental cursor pull (``events(since=N)``) relies on.
"""

import threading

import pytest

from repro.telemetry.events import SEVERITIES, EventLog, merge_events


class TestEmit:
    def test_sequences_are_monotone_from_one(self):
        log = EventLog(16)
        for _ in range(3):
            log.emit("tick", "tock")
        assert [e["seq"] for e in log.events()] == [1, 2, 3]

    def test_event_shape(self):
        log = EventLog(8)
        log.emit(
            "wal_corruption",
            "bad tail",
            severity="warning",
            dataset="dblp",
            trace_id="t-1",
            source="supervisor",
            offset=42,
        )
        (event,) = log.events()
        assert event["kind"] == "wal_corruption"
        assert event["message"] == "bad tail"
        assert event["severity"] == "warning"
        assert event["dataset"] == "dblp"
        assert event["trace_id"] == "t-1"
        assert event["source"] == "supervisor"
        assert event["extra"] == {"offset": 42}
        assert isinstance(event["ts"], float)

    def test_unknown_severity_rejected(self):
        log = EventLog(8)
        with pytest.raises(ValueError, match="severity"):
            log.emit("tick", "tock", severity="fatal")

    def test_ring_drops_oldest(self):
        log = EventLog(4)
        for i in range(10):
            log.emit("tick", str(i))
        events = log.events()
        assert [e["seq"] for e in events] == [7, 8, 9, 10]
        assert log.stats()["dropped"] == 6
        assert log.stats()["emitted"] == 10

    def test_since_and_limit(self):
        log = EventLog(16)
        for i in range(6):
            log.emit("tick", str(i))
        assert [e["seq"] for e in log.events(since=4)] == [5, 6]
        assert [e["seq"] for e in log.events(limit=2)] == [5, 6]
        assert log.events(since=log.last_seq) == []

    def test_min_severity_filter(self):
        log = EventLog(16)
        for severity in SEVERITIES:
            log.emit("tick", severity, severity=severity)
        warnings_up = log.events(min_severity="warning")
        assert [e["severity"] for e in warnings_up] == [
            "warning",
            "error",
            "critical",
        ]


class TestConcurrency:
    def test_parallel_emitters_never_drop_or_reorder_seqs(self):
        """N threads x M emits: the log holds exactly the top seqs of a
        gap-free 1..N*M range, in order — the contract the supervisor's
        per-worker cursors depend on."""
        threads_n, per_thread = 8, 200
        log = EventLog(threads_n * per_thread)
        barrier = threading.Barrier(threads_n)

        def emitter(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                log.emit("tick", f"{worker}:{i}", source=f"t{worker}")

        threads = [
            threading.Thread(target=emitter, args=(n,))
            for n in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        seqs = [e["seq"] for e in log.events()]
        assert seqs == list(range(1, threads_n * per_thread + 1))
        assert log.stats()["dropped"] == 0

    def test_parallel_emitters_with_a_small_ring_keep_a_contiguous_tail(self):
        threads_n, per_thread, capacity = 6, 100, 64
        log = EventLog(capacity)
        barrier = threading.Barrier(threads_n)

        def emitter() -> None:
            barrier.wait()
            for _ in range(per_thread):
                log.emit("tick", "tock")

        threads = [
            threading.Thread(target=emitter) for _ in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = threads_n * per_thread
        seqs = [e["seq"] for e in log.events()]
        # The ring keeps exactly the newest `capacity` seqs, contiguous.
        assert seqs == list(range(total - capacity + 1, total + 1))


class TestIngest:
    def test_ingest_resequences_and_keeps_remote_seq(self):
        worker = EventLog(8)
        worker.emit("mutation_commit", "v1", dataset="dblp")
        worker.emit("mutation_commit", "v2", dataset="dblp")
        supervisor = EventLog(8)
        supervisor.emit("worker_crash", "boom", severity="error")
        for event in worker.events():
            supervisor.ingest(event, source="worker-0")
        events = supervisor.events()
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert events[1]["source"] == "worker-0"
        assert events[1]["remote_seq"] == 1
        assert events[2]["remote_seq"] == 2
        assert events[1]["kind"] == "mutation_commit"

    def test_ingest_preserves_original_timestamp(self):
        worker = EventLog(8)
        worker.emit("tick", "tock")
        original = worker.events()[0]
        supervisor = EventLog(8)
        supervisor.ingest(original, source="worker-1")
        assert supervisor.events()[0]["ts"] == original["ts"]


class TestMerge:
    def test_merge_events_orders_by_timestamp(self):
        a = EventLog(8)
        b = EventLog(8)
        a.emit("tick", "a1")
        b.emit("tick", "b1")
        a.emit("tick", "a2")
        merged = merge_events([a.events(), b.events()])
        assert [e["message"] for e in merged] == sorted(
            (e["message"] for e in merged),
            key=lambda m: next(
                e["ts"] for e in merged if e["message"] == m
            ),
        )
        assert len(merged) == 3

    def test_merge_limit_keeps_newest(self):
        a = EventLog(8)
        for i in range(5):
            a.emit("tick", str(i))
        merged = merge_events([a.events()], limit=2)
        assert [e["message"] for e in merged] == ["3", "4"]
