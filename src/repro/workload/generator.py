"""Workload generation (paper Sections 5.4 and 5.6).

The paper builds query workloads by executing join networks of a fixed
size and picking keywords "at random from each tuple in the result
set".  Equivalently on the graph: plant a random connected subtree of
``result_size`` tuple nodes, then draw the query keywords from the text
of distinct planted nodes — the planted tree is then guaranteed to be
an answer, and the relevant set (all answers up to the planted size) is
non-empty.  Queries can be constrained to the Section 5.4 small/large
origin classes or to an exact Section 5.6 band combination such as
``("T", "T", "T", "L")``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.index.tokenizer import tokenize
from repro.workload.bands import OriginBands

__all__ = ["WorkloadQuery", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadQuery:
    """A generated query plus its provenance."""

    keywords: tuple[str, ...]
    origin_sizes: tuple[int, ...]
    bands: tuple[str, ...]
    planted_nodes: frozenset[int]
    result_size: int

    @property
    def min_origin(self) -> int:
        return min(self.origin_sizes)

    @property
    def max_origin(self) -> int:
        return max(self.origin_sizes)

    def band_combo(self) -> tuple[str, ...]:
        """Band codes sorted rarest-first, e.g. ``('T', 'T', 'S', 'L')``."""
        order = {"T": 0, "S": 1, "M": 2, "L": 3, "-": 4}
        return tuple(sorted(self.bands, key=lambda code: order[code]))


class WorkloadGenerator:
    """Samples queries from a database/graph/index triple."""

    def __init__(
        self,
        db,
        graph,
        index,
        *,
        bands: Optional[OriginBands] = None,
    ) -> None:
        self.db = db
        self.graph = graph
        self.index = index
        self.bands = (
            bands if bands is not None else OriginBands.scaled_for(graph.num_nodes)
        )
        self._term_cache: dict[int, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    def node_terms(self, node: int) -> tuple[str, ...]:
        """Distinct indexed terms in the node's text columns."""
        cached = self._term_cache.get(node)
        if cached is not None:
            return cached
        ref = self.graph.ref(node)
        terms: tuple[str, ...] = ()
        if ref is not None:
            table_name, pk = ref
            table = self.db.schema.table(table_name)
            row = self.db.get(table_name, pk)
            seen: set[str] = set()
            for column in table.text_columns:
                value = row[column]
                if value:
                    seen.update(tokenize(str(value)))
            terms = tuple(sorted(seen))
        self._term_cache[node] = terms
        return terms

    # ------------------------------------------------------------------
    def _plant_tree(self, rng: random.Random, size: int) -> Optional[frozenset[int]]:
        """A random connected node set of the requested size (edges taken
        in either direction, like an undirected join network)."""
        start = rng.randrange(self.graph.num_nodes)
        nodes = [start]
        chosen = {start}
        for _ in range(size * 8):
            if len(chosen) == size:
                return frozenset(chosen)
            anchor = nodes[rng.randrange(len(nodes))]
            edges = self.graph.out_edges(anchor)
            if not edges:
                continue
            neighbour = edges[rng.randrange(len(edges))][0]
            if neighbour not in chosen:
                chosen.add(neighbour)
                nodes.append(neighbour)
        return frozenset(chosen) if len(chosen) == size else None

    # ------------------------------------------------------------------
    def sample_query(
        self,
        rng: random.Random,
        *,
        n_keywords: int,
        result_size: int,
        origin_class: Optional[str] = None,
        band_combo: Optional[Sequence[str]] = None,
        max_attempts: int = 2000,
    ) -> Optional[WorkloadQuery]:
        """Draw one query satisfying the constraints, or None.

        ``origin_class``: ``"small"`` (some keyword under the small-
        origin threshold, none over the large one) or ``"large"`` (some
        keyword over the large-origin threshold).  ``band_combo``: exact
        multiset of Section 5.6 band codes, one per keyword.
        """
        if n_keywords < 1:
            raise ValueError(f"n_keywords must be >= 1, got {n_keywords!r}")
        if origin_class not in (None, "small", "large"):
            raise ValueError(f"unknown origin_class {origin_class!r}")
        if band_combo is not None and len(band_combo) != n_keywords:
            raise ValueError("band_combo length must equal n_keywords")

        for _ in range(max_attempts):
            planted = self._plant_tree(rng, result_size)
            if planted is None:
                continue
            query = self._pick_keywords(
                rng, planted, n_keywords, result_size, origin_class, band_combo
            )
            if query is not None:
                return query
        return None

    # ------------------------------------------------------------------
    def _pick_keywords(
        self,
        rng: random.Random,
        planted: frozenset[int],
        n_keywords: int,
        result_size: int,
        origin_class: Optional[str],
        band_combo: Optional[Sequence[str]],
    ) -> Optional[WorkloadQuery]:
        # (node, term, frequency, band) candidates across planted nodes.
        candidates: list[tuple[int, str, int, str]] = []
        for node in planted:
            for term in self.node_terms(node):
                frequency = self.index.frequency(term)
                candidates.append(
                    (node, term, frequency, self.bands.classify(frequency))
                )
        if len({term for _, term, _, _ in candidates}) < n_keywords:
            return None
        rng.shuffle(candidates)

        if band_combo is not None:
            chosen = self._match_bands(candidates, tuple(band_combo))
        else:
            chosen = self._spread_over_nodes(candidates, n_keywords)
        if chosen is None:
            return None

        origin_sizes = tuple(freq for _, _, freq, _ in chosen)
        if origin_class == "small":
            if not self.bands.is_small_origin(min(origin_sizes)):
                return None
            if self.bands.is_large_origin(max(origin_sizes)):
                return None
        elif origin_class == "large":
            if not self.bands.is_large_origin(max(origin_sizes)):
                return None

        return WorkloadQuery(
            keywords=tuple(term for _, term, _, _ in chosen),
            origin_sizes=origin_sizes,
            bands=tuple(band for _, _, _, band in chosen),
            planted_nodes=planted,
            result_size=result_size,
        )

    @staticmethod
    def _spread_over_nodes(
        candidates: list[tuple[int, str, int, str]], n_keywords: int
    ) -> Optional[list[tuple[int, str, int, str]]]:
        """Pick distinct terms, preferring unused nodes first (the paper
        draws "from each tuple in the result set")."""
        chosen: list[tuple[int, str, int, str]] = []
        used_terms: set[str] = set()
        used_nodes: set[int] = set()
        for prefer_new_node in (True, False):
            for item in candidates:
                node, term, _, _ = item
                if len(chosen) == n_keywords:
                    return chosen
                if term in used_terms:
                    continue
                if prefer_new_node and node in used_nodes:
                    continue
                chosen.append(item)
                used_terms.add(term)
                used_nodes.add(node)
        return chosen if len(chosen) == n_keywords else None

    @staticmethod
    def _match_bands(
        candidates: list[tuple[int, str, int, str]], combo: tuple[str, ...]
    ) -> Optional[list[tuple[int, str, int, str]]]:
        """Greedy exact cover of the requested band multiset."""
        needed: dict[str, int] = {}
        for code in combo:
            needed[code] = needed.get(code, 0) + 1
        chosen: list[tuple[int, str, int, str]] = []
        used_terms: set[str] = set()
        for item in candidates:
            _, term, _, band = item
            if needed.get(band, 0) > 0 and term not in used_terms:
                chosen.append(item)
                used_terms.add(term)
                needed[band] -= 1
        if any(count > 0 for count in needed.values()):
            return None
        return chosen
