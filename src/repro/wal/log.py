"""Durable append-only mutation log (write-ahead log, WAL).

``repro.live`` made datasets mutable under traffic, but commits were
purely in-memory: a replica that crash-restarted warmed from its
snapshot and silently missed every commit since.  This module is the
durability half of that story — EMBANKS' "survive beyond RAM" argument
applied to the mutation stream: every committed wire-mutation batch is
appended to a per-dataset on-disk log, and replaying the log onto the
base snapshot reconstructs the live dataset exactly (bit-identical
graph and index; ``tests/property/test_prop_wal.py`` pins it).

Layout
------
A log is a **directory** of segment files named
``wal-<base_seq:016d>.seg``.  ``base_seq`` is the sequence number of
the last record *before* the segment, so a segment's first record is
``base_seq + 1`` — the name alone tells truncation and replay where a
segment sits without opening it.

Each segment starts with a framed header record (JSON: format magic,
format version, ``base_seq``) followed by framed data records.  A frame
is::

    <u32 little-endian payload length> <u32 crc32(payload)> <payload>

and a data record's payload is UTF-8 JSON::

    {"seq": <int>, "mutations": [<wire mutation dicts>],
     "recompute_prestige": <bool, omitted when false>}

Sequence numbers are strictly contiguous (``seq == previous + 1``)
within and across segments; they align one-to-one with dataset epoch
versions: the record with ``seq == N`` is the commit that produced
dataset version ``N``.

Torn writes and corruption
--------------------------
Reads stop **cleanly at the last valid record**: a truncated frame,
checksum mismatch, undecodable payload or sequence gap ends iteration
with a structured :class:`WalCorruptionWarning` naming the file, the
offset and the last valid sequence — never an exception, and never a
silent skip of valid records (everything before the damage is always
yielded).  Opening a log for *append* additionally repairs it: the torn
tail is truncated (and any unreachable later segments deleted) so new
records land after the last valid one instead of hiding behind garbage.
Read-only opens (:class:`MutationLog` with ``readonly=True``, or
:meth:`MutationLog.peek`) never modify the files — a replica replaying
a log the supervisor is still appending to must not "repair" an
append in flight.

Sync policy (the durability/throughput knob)
--------------------------------------------
``sync=`` picks how hard :meth:`MutationLog.append` pushes each record
toward the platter:

``"commit"``
    ``flush()`` + ``fsync()`` on every append.  Survives OS/power
    failure at the cost of one disk sync per commit.
``"batched"`` (default)
    ``flush()`` on every append (the record reaches the OS page cache,
    so it survives a ``kill -9`` of this process), ``fsync()`` every
    ``batch_every`` appends.  At most ``batch_every - 1`` commits are
    exposed to a whole-machine crash; a process crash loses nothing.
``"off"``
    Library-buffered writes only; flushed on rotate/close.  For bulk
    loads and tests where durability is somebody else's problem.

All policies ``fsync`` on rotation, truncation and close.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import WalError

__all__ = [
    "SYNC_POLICIES",
    "WAL_FORMAT",
    "WAL_VERSION",
    "MutationLog",
    "WalCorruptionWarning",
    "WalRecord",
    "default_wal_path",
]

WAL_FORMAT = "repro-wal"
WAL_VERSION = 1
SYNC_POLICIES = ("commit", "batched", "off")

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_SEGMENT_GLOB = "wal-*.seg"


def default_wal_path(snapshot_path: Union[str, os.PathLike]) -> Path:
    """The conventional sibling WAL directory for a snapshot file.

    ``dblp.snap`` -> ``dblp.snap.wal`` — what the snapshot CLI's
    ``info`` command checks for unsnapshotted commits, and what
    :meth:`QueryService.attach_wal` defaults to for snapshot-registered
    datasets.
    """
    return Path(str(snapshot_path) + ".wal")


class WalCorruptionWarning(UserWarning):
    """A log read stopped early at damaged data.

    Carries the structured fields operators need (``path``, ``offset``,
    ``reason``, ``last_valid_seq``) in addition to the message, so
    handlers can triage without parsing text.
    """

    def __init__(
        self, path, offset: int, reason: str, last_valid_seq: int
    ) -> None:
        super().__init__(
            f"WAL {path} is damaged at byte {offset} ({reason}); "
            f"recovery stops at the last valid record (seq {last_valid_seq})"
        )
        self.path = str(path)
        self.offset = offset
        self.reason = reason
        self.last_valid_seq = last_valid_seq


@dataclass(frozen=True)
class WalRecord:
    """One committed mutation batch: the wire dicts plus its sequence
    number (== the dataset epoch version the commit produced)."""

    seq: int
    mutations: tuple
    recompute_prestige: bool = False


@dataclass
class _Segment:
    """One scanned segment file."""

    path: Path
    base_seq: int
    last_seq: int  # == base_seq when the segment holds no data records
    end_offset: int  # byte offset just past the last valid record
    records: int = 0
    damaged: Optional[WalCorruptionWarning] = field(default=None, repr=False)


def _segment_name(base_seq: int) -> str:
    return f"wal-{base_seq:016d}.seg"


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _read_frame(handle, path, offset: int) -> Union[bytes, WalCorruptionWarning, None]:
    """One frame's payload; None at clean EOF; a warning on damage."""
    header = handle.read(_FRAME.size)
    if not header:
        return None
    if len(header) < _FRAME.size:
        return WalCorruptionWarning(path, offset, "truncated frame header", -1)
    length, crc = _FRAME.unpack(header)
    payload = handle.read(length)
    if len(payload) < length:
        return WalCorruptionWarning(path, offset, "truncated record payload", -1)
    if zlib.crc32(payload) != crc:
        return WalCorruptionWarning(path, offset, "checksum mismatch", -1)
    return payload


def _walk_segment(path: Path, expected_base: Optional[int]):
    """The one validating pass over a segment, as an event stream.

    Yields ``("base", base_seq, end_offset)`` for a valid header, then
    ``("record", WalRecord, end_offset)`` per valid record, stopping
    after ``("damage", WalCorruptionWarning, last_valid_offset)`` at
    the first torn frame, checksum mismatch, undecodable payload or
    sequence gap.  Both recovery scanning (:func:`_scan_segment`) and
    replay reading (:meth:`MutationLog.records`) consume this stream,
    so the two can never disagree about where a log's valid prefix
    ends.
    """
    last = expected_base if expected_base is not None else -1
    with open(path, "rb") as handle:
        payload = _read_frame(handle, path, 0)
        if payload is None or isinstance(payload, WalCorruptionWarning):
            yield ("damage", WalCorruptionWarning(
                path, 0, "unreadable segment header", last), 0)
            return
        base = _decode_header(payload)
        if base is None:
            yield ("damage", WalCorruptionWarning(
                path, 0, "not a repro-wal v1 segment header", last), 0)
            return
        if expected_base is not None and base != expected_base:
            yield ("damage", WalCorruptionWarning(
                path,
                0,
                f"segment base {base} does not continue seq {expected_base}",
                expected_base,
            ), 0)
            return
        last = base
        valid_end = handle.tell()
        yield ("base", base, valid_end)
        while True:
            offset = valid_end
            payload = _read_frame(handle, path, offset)
            if payload is None:
                return
            if isinstance(payload, WalCorruptionWarning):
                yield ("damage", WalCorruptionWarning(
                    path, offset, payload.reason, last), valid_end)
                return
            record = _decode_record(payload)
            if record is None:
                yield ("damage", WalCorruptionWarning(
                    path, offset, "malformed record payload", last), valid_end)
                return
            if record.seq != last + 1:
                yield ("damage", WalCorruptionWarning(
                    path,
                    offset,
                    f"sequence gap (got {record.seq}, expected {last + 1})",
                    last,
                ), valid_end)
                return
            last = record.seq
            valid_end = handle.tell()
            yield ("record", record, valid_end)


def _scan_segment(path: Path, expected_base: Optional[int]) -> _Segment:
    """Validate one segment file, stopping at the first damage."""
    base = expected_base if expected_base is not None else -1
    last = base
    valid_end = 0
    count = 0
    damaged: Optional[WalCorruptionWarning] = None
    for event, value, offset in _walk_segment(path, expected_base):
        if event == "base":
            base = last = value
            valid_end = offset
        elif event == "record":
            last = value.seq
            count += 1
            valid_end = offset
        else:  # damage
            damaged = value
    return _Segment(
        path=path,
        base_seq=base,
        last_seq=last,
        end_offset=valid_end,
        records=count,
        damaged=damaged,
    )


def _decode_record(payload: bytes) -> Optional[WalRecord]:
    """Parse and shape-check one data record; None on anything off."""
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(data, dict)
        or not isinstance(data.get("seq"), int)
        or not isinstance(data.get("mutations"), list)
    ):
        return None
    return WalRecord(
        seq=data["seq"],
        mutations=tuple(data["mutations"]),
        recompute_prestige=bool(data.get("recompute_prestige", False)),
    )


def _decode_header(payload: bytes) -> Optional[int]:
    """The segment header's ``base_seq``; None when not a valid header."""
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(header, dict)
        or header.get("format") != WAL_FORMAT
        or header.get("version") != WAL_VERSION
        or not isinstance(header.get("base_seq"), int)
    ):
        return None
    return header["base_seq"]


class MutationLog:
    """A per-dataset segmented append-only mutation log.

    Parameters
    ----------
    path:
        Log directory (created unless ``readonly``).
    sync:
        Durability policy per append — ``"commit"`` / ``"batched"`` /
        ``"off"``; see the module docstring for exactly what each
        guarantees and costs.
    batch_every:
        Under ``"batched"``, how many appends may pass between
        ``fsync`` calls (durability exposure to an *OS* crash; a
        process crash never loses a flushed append).
    segment_max_records / segment_max_bytes:
        Rotation thresholds; a full segment is sealed and a new one
        started, which is what gives truncation its unit of deletion.
    start_seq:
        The sequence number the log starts *after* when created empty —
        i.e. the ``dataset_version`` of the snapshot this log's records
        apply on top of.  Ignored when segments already exist on disk.
    readonly:
        Open without creating or repairing anything (replica replay,
        CLI inspection).  Append, truncate, rotate and reset raise.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        sync: str = "batched",
        batch_every: int = 16,
        segment_max_records: int = 1024,
        segment_max_bytes: int = 4 << 20,
        start_seq: int = 0,
        readonly: bool = False,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"unknown sync policy {sync!r}; expected one of {SYNC_POLICIES}"
            )
        if batch_every < 1:
            raise ValueError(f"batch_every must be >= 1, got {batch_every!r}")
        if segment_max_records < 1 or segment_max_bytes < 1:
            raise ValueError("segment rotation thresholds must be >= 1")
        if start_seq < 0:
            raise ValueError(f"start_seq must be >= 0, got {start_seq!r}")
        self.path = Path(path)
        self.sync_policy = sync
        self._batch_every = batch_every
        self._segment_max_records = segment_max_records
        self._segment_max_bytes = segment_max_bytes
        self._readonly = readonly
        self._lock = threading.RLock()
        self._handle = None
        self._unsynced = 0
        self._last_append_offset: Optional[int] = None
        self._closed = False
        # Lifetime activity counters (this instance, not the on-disk
        # history): what a metrics collector reads to expose append /
        # fsync / replay rates without touching the segments.
        self._appends = 0
        self._fsyncs = 0
        self._appended_bytes = 0
        self._replayed_records = 0
        # Corruption incidents this instance detected (recovery scan or
        # replay): a counter for metrics plus a bounded structured list
        # so the event log can surface *what* was repaired, not just a
        # Python warning production never sees.
        self._corruption_records = 0
        self._corruption_log: list[dict] = []
        if readonly:
            if not self.path.is_dir():
                raise WalError(f"WAL directory {self.path} does not exist")
        else:
            self.path.mkdir(parents=True, exist_ok=True)
        self._segments = self._recover(start_seq)

    # ------------------------------------------------------------------
    # recovery / scanning
    # ------------------------------------------------------------------
    def _segment_paths(self) -> list[Path]:
        return sorted(self.path.glob(_SEGMENT_GLOB))

    def _note_corruption(
        self, warning: WalCorruptionWarning, *, repaired: bool, stacklevel: int
    ) -> None:
        """Record a corruption incident, then emit the usual warning.

        The incident survives on the instance (``corruption_events()``,
        ``stats()["corruption_records"]``) so callers can turn it into
        operational events and registry counters after the fact.
        """
        self._corruption_records += 1
        self._corruption_log.append(
            {
                "path": warning.path,
                "offset": warning.offset,
                "reason": warning.reason,
                "last_valid_seq": warning.last_valid_seq,
                "repaired": repaired,
                "ts": time.time(),
            }
        )
        del self._corruption_log[:-16]
        warnings.warn(warning, stacklevel=stacklevel + 1)

    def corruption_events(self) -> list[dict]:
        """Structured corruption incidents this instance detected."""
        with self._lock:
            return [dict(event) for event in self._corruption_log]

    def _recover(self, start_seq: int) -> list[_Segment]:
        """Scan segments in order; repair the tail unless readonly."""
        paths = self._segment_paths()
        segments: list[_Segment] = []
        expected: Optional[int] = None
        dropped: list[Path] = []
        for i, path in enumerate(paths):
            segment = _scan_segment(path, expected)
            segments.append(segment)
            if segment.damaged is not None:
                self._note_corruption(
                    segment.damaged, repaired=not self._readonly, stacklevel=3
                )
                dropped = paths[i + 1 :]
                if dropped:
                    self._note_corruption(
                        WalCorruptionWarning(
                            self.path,
                            segment.damaged.offset,
                            f"{len(dropped)} later segment(s) are unreachable "
                            f"past the damage and are ignored",
                            segment.last_seq,
                        ),
                        repaired=not self._readonly,
                        stacklevel=3,
                    )
                break
            expected = segment.last_seq
        if not self._readonly:
            tail = segments[-1] if segments else None
            if tail is not None and tail.damaged is not None:
                # Repair: truncate the torn tail so appends continue
                # after the last valid record, and delete segments the
                # damage cut off (their bases no longer line up).
                if tail.end_offset > 0:
                    with open(tail.path, "r+b") as handle:
                        handle.truncate(tail.end_offset)
                        handle.flush()
                        os.fsync(handle.fileno())
                    tail = _scan_segment(tail.path, None)
                    segments[-1] = tail
                else:
                    tail.path.unlink()
                    segments.pop()
                for path in dropped:
                    path.unlink()
            if not segments:
                segments = [self._create_segment(start_seq)]
        return segments

    def _create_segment(self, base_seq: int) -> _Segment:
        path = self.path / _segment_name(base_seq)
        header = json.dumps(
            {"format": WAL_FORMAT, "version": WAL_VERSION, "base_seq": base_seq}
        ).encode("utf-8")
        data = _frame(header)
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return _Segment(
            path=path, base_seq=base_seq, last_seq=base_seq, end_offset=len(data)
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (== the base
        when the log holds none)."""
        with self._lock:
            return self._segments[-1].last_seq if self._segments else 0

    @property
    def first_base(self) -> int:
        """Sequence the oldest retained segment starts after — replay
        can reconstruct any state from ``first_base`` forward."""
        with self._lock:
            return self._segments[0].base_seq if self._segments else 0

    def stats(self) -> dict:
        """Size and position counters for metrics/health export."""
        with self._lock:
            return {
                "last_seq": self.last_seq,
                "first_base": self.first_base,
                "segments": len(self._segments),
                "records": sum(s.records for s in self._segments),
                "bytes": sum(s.end_offset for s in self._segments),
                "sync": self.sync_policy,
                "appends": self._appends,
                "fsyncs": self._fsyncs,
                "appended_bytes": self._appended_bytes,
                "replayed_records": self._replayed_records,
                "corruption_records": self._corruption_records,
            }

    @classmethod
    def fresh(
        cls, path: Union[str, os.PathLike], *, start_seq: int, **knobs
    ) -> "MutationLog":
        """Open a log at ``path`` after discarding any existing
        segments *without scanning them* — the reload path: prior
        records are superseded history, not worth validating, repairing
        or warning about before deletion."""
        root = Path(path)
        if root.is_dir():
            for segment in sorted(root.glob(_SEGMENT_GLOB)):
                segment.unlink()
        return cls(path, start_seq=start_seq, **knobs)

    @classmethod
    def peek(cls, path: Union[str, os.PathLike]) -> Optional[dict]:
        """Cheap read-only inspection: :meth:`stats` for an existing log
        directory, or None when there is no log at ``path``.  Never
        creates or repairs anything (corruption still warns)."""
        if not Path(path).is_dir():
            return None
        return cls(path, readonly=True).stats()

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(
        self,
        mutations,
        *,
        seq: Optional[int] = None,
        recompute_prestige: bool = False,
    ) -> int:
        """Append one committed batch of wire mutation dicts.

        ``seq`` defaults to ``last_seq + 1``; passing it explicitly
        asserts the caller's epoch arithmetic — a mismatch raises
        :class:`~repro.errors.WalError` *before* anything is written,
        which is how a misaligned journal fails the commit instead of
        silently recording an unreplayable history.
        """
        with self._lock:
            self._check_writable()
            expected = self.last_seq + 1
            if seq is None:
                seq = expected
            elif seq != expected:
                raise WalError(
                    f"out-of-order append: seq {seq} does not continue the "
                    f"log's last sequence {self.last_seq}"
                )
            record: dict = {"seq": seq, "mutations": list(mutations), "ts": time.time()}
            if recompute_prestige:
                record["recompute_prestige"] = True
            data = _frame(json.dumps(record).encode("utf-8"))
            active = self._segments[-1]
            if (
                active.records >= self._segment_max_records
                or active.end_offset + len(data) > self._segment_max_bytes
            ) and active.records > 0:
                self._rotate_locked()
                active = self._segments[-1]
            handle = self._writer(active)
            self._last_append_offset = active.end_offset
            handle.write(data)
            active.end_offset += len(data)
            active.records += 1
            active.last_seq = seq
            self._appends += 1
            self._appended_bytes += len(data)
            if self.sync_policy == "commit":
                handle.flush()
                os.fsync(handle.fileno())
                self._fsyncs += 1
                self._unsynced = 0
            elif self.sync_policy == "batched":
                handle.flush()
                self._unsynced += 1
                if self._unsynced >= self._batch_every:
                    os.fsync(handle.fileno())
                    self._fsyncs += 1
                    self._unsynced = 0
            return seq

    def rollback_last(self) -> int:
        """Remove the record appended by the immediately preceding
        :meth:`append` on this instance (the supervisor's bad-batch
        compensation path).  Returns the new ``last_seq``."""
        with self._lock:
            self._check_writable()
            if self._last_append_offset is None:
                raise WalError(
                    "no append to roll back (rollback_last undoes only the "
                    "record this process appended last, exactly once)"
                )
            active = self._segments[-1]
            handle = self._writer(active)
            handle.flush()
            handle.truncate(self._last_append_offset)
            handle.seek(self._last_append_offset)
            os.fsync(handle.fileno())
            active.end_offset = self._last_append_offset
            active.records -= 1
            active.last_seq -= 1
            self._last_append_offset = None
            self._unsynced = 0
            return active.last_seq

    def sync(self) -> None:
        """Flush and ``fsync`` any buffered appends now."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._fsyncs += 1
                self._unsynced = 0

    def _writer(self, active: _Segment):
        if self._handle is None:
            self._handle = open(active.path, "ab")
        return self._handle

    def _check_writable(self) -> None:
        if self._closed:
            raise WalError(f"WAL {self.path} is closed")
        if self._readonly:
            raise WalError(f"WAL {self.path} was opened read-only")

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------
    def rotate(self) -> Path:
        """Seal the active segment and start a new one."""
        with self._lock:
            self._check_writable()
            return self._rotate_locked().path

    def _rotate_locked(self) -> _Segment:
        self._close_writer()
        segment = self._create_segment(self._segments[-1].last_seq)
        self._segments.append(segment)
        self._last_append_offset = None
        return segment

    def truncate(self, upto_seq: int) -> int:
        """Delete segments wholly covered by a snapshot at ``upto_seq``.

        A segment is deletable when every record in it has
        ``seq <= upto_seq`` *and* a later segment exists to carry the
        log forward; the active segment is first rotated away when it
        is itself fully covered, so a snapshot taken at the current tip
        leaves exactly one empty segment based at ``upto_seq``.
        Returns the number of segment files deleted.
        """
        with self._lock:
            self._check_writable()
            if self._segments[-1].last_seq <= upto_seq and (
                self._segments[-1].records > 0 or len(self._segments) > 1
            ):
                self._rotate_locked()
            deleted = 0
            while len(self._segments) > 1 and self._segments[0].last_seq <= upto_seq:
                self._segments.pop(0).path.unlink()
                deleted += 1
            return deleted

    def reset(self, start_seq: int) -> None:
        """Discard every segment and start a fresh log after
        ``start_seq`` — the reload path: a dataset hot-swapped to an
        unrelated snapshot makes the old records unreplayable, so the
        log restarts at the new baseline."""
        with self._lock:
            self._check_writable()
            self._close_writer()
            for segment in self._segments:
                segment.path.unlink()
            self._segments = [self._create_segment(start_seq)]
            self._last_append_offset = None
            self._unsynced = 0

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self, *, start_after: Optional[int] = None) -> Iterator[WalRecord]:
        """Yield valid records in order, newest last.

        ``start_after`` skips records with ``seq <= start_after``
        (replay onto a snapshot at that version).  Iteration stops at
        the first damaged byte with a :class:`WalCorruptionWarning`
        (see the module docstring); everything valid before the damage
        is always yielded.  One validating pass per segment — records
        are yielded as they are checked, so replaying a large log reads
        each byte once.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
            paths = [segment.path for segment in self._segments]
        last: Optional[int] = None
        for i, path in enumerate(paths):
            damage: Optional[WalCorruptionWarning] = None
            for event, value, _offset in _walk_segment(path, last):
                if event == "record":
                    last = value.seq
                    if start_after is None or value.seq > start_after:
                        self._replayed_records += 1
                        yield value
                elif event == "base":
                    last = value
                else:  # damage
                    damage = value
            if damage is not None:
                self._note_corruption(damage, repaired=False, stacklevel=2)
                remaining = len(paths) - i - 1
                if remaining:
                    self._note_corruption(
                        WalCorruptionWarning(
                            self.path,
                            damage.offset,
                            f"{remaining} later segment(s) are unreachable "
                            f"past the damage and are ignored",
                            damage.last_valid_seq,
                        ),
                        repaired=False,
                        stacklevel=2,
                    )
                return

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _close_writer(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._fsyncs += 1
            self._handle.close()
            self._handle = None
            self._unsynced = 0

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            if not self._readonly:
                self._close_writer()
            self._closed = True

    def __enter__(self) -> "MutationLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutationLog({str(self.path)!r}, last_seq={self.last_seq}, "
            f"segments={len(self._segments)}, sync={self.sync_policy!r})"
        )
