"""Spreading activation (paper Section 4.3).

Keyword node ``u in S_i`` is seeded with ``a(u, i) = prestige(u) /
|S_i|``: prestigious origins rank high, huge origin sets are damped.
When a node spreads, a fraction ``mu`` (default 0.5) of its per-keyword
activation is divided among its neighbours in inverse proportion to the
connecting edge weight; per-keyword activation combines by ``max``
(the tree score uses the *shortest* path per keyword) and a node's
overall activation — its queue priority — is the sum over keywords
(close to several keywords => fewer connections left to find).

Increases reaching an already-explored node are propagated to its
reached ancestors best-first (procedure ACTIVATE, Figure 3), through
the explored-parents map shared with :class:`~repro.core.pathtable.PathTable`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

__all__ = ["ActivationTable"]


class ActivationTable:
    """Per-keyword and total activation with spreading and propagation."""

    def __init__(
        self,
        graph,
        keyword_sets: Sequence[frozenset[int]],
        *,
        mu: float = 0.5,
        combine: str = "max",
        min_contribution: float = 1e-9,
        on_activation_change: Optional[Callable[[int], None]] = None,
    ) -> None:
        """
        ``combine`` selects how activation reaching a node from several
        edges is merged per keyword: ``"max"`` (the paper's default —
        trees are scored by the single shortest path per keyword) or
        ``"sum"`` (the footnote-6 extension for scoring models that
        aggregate along multiple paths; powers "near queries").  In sum
        mode cascades terminate via the ``min_contribution`` floor.
        """
        if not 0.0 <= mu <= 1.0:
            raise ValueError(f"mu must be in [0, 1], got {mu!r}")
        if combine not in ("max", "sum"):
            raise ValueError(f"combine must be 'max' or 'sum', got {combine!r}")
        if min_contribution <= 0.0:
            raise ValueError(
                f"min_contribution must be > 0, got {min_contribution!r}"
            )
        self._graph = graph
        self.keyword_sets = tuple(frozenset(s) for s in keyword_sets)
        self.k = len(self.keyword_sets)
        self.mu = mu
        self.combine = combine
        self._min_contribution = min_contribution
        self._act: list[dict[int, float]] = [dict() for _ in range(self.k)]
        self._total: dict[int, float] = {}
        self._on_change = on_activation_change
        #: Rows written by the ACTIVATE cascades — harvested into
        #: ``SearchStats.cascade_touches`` by the owning search.
        self.cascade_touches = 0

    # ------------------------------------------------------------------
    def seed_all(self) -> None:
        """Seed ``a(u, i) = prestige(u) / |S_i|`` for every keyword node."""
        for i, nodes in enumerate(self.keyword_sets):
            if not nodes:
                continue
            size = len(nodes)
            for node in nodes:
                seed = self._graph.node_prestige(node) / size
                self._raise(node, i, seed, parents=None)

    # ------------------------------------------------------------------
    def activation(self, node: int, i: int) -> float:
        return self._act[i].get(node, 0.0)

    def total(self, node: int) -> float:
        """Overall activation ``a_u = sum_i a(u, i)`` — the queue priority."""
        return self._total.get(node, 0.0)

    def totals(self):
        """Live ``(node, total activation)`` pairs, arbitrary order."""
        return self._total.items()

    # ------------------------------------------------------------------
    # spreading on expansion
    # ------------------------------------------------------------------
    def spread_backward(self, v: int, parents: dict[int, dict[int, float]]) -> None:
        """Spread ``v``'s activation to its in-neighbours (incoming
        iterator expansion): each in-edge ``(u, v)`` of weight ``w``
        carries ``mu * a(v, i) * (1/w) / sum(1/w over in-edges)``."""
        edges = self._graph.in_edges(v)
        if not edges:
            return
        norm = self._graph.in_inv_weight_sum(v)
        for i in range(self.k):
            av = self._act[i].get(v)
            if not av:
                continue
            budget = self.mu * av
            for u, w, _ in edges:
                self._raise(u, i, budget * (1.0 / w) / norm, parents)

    def spread_forward(self, u: int, parents: dict[int, dict[int, float]]) -> None:
        """Spread ``u``'s activation to its out-neighbours (outgoing
        iterator expansion): nodes near a potential root rank high."""
        edges = self._graph.out_edges(u)
        if not edges:
            return
        norm = self._graph.out_inv_weight_sum(u)
        for i in range(self.k):
            au = self._act[i].get(u)
            if not au:
                continue
            budget = self.mu * au
            for v, w, _ in edges:
                self._raise(v, i, budget * (1.0 / w) / norm, parents)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _raise(
        self,
        node: int,
        i: int,
        value: float,
        parents: Optional[dict[int, dict[int, float]]],
    ) -> None:
        """Combine ``value`` into ``a(node, i)``; on increase, notify and
        cascade to reached ancestors (ACTIVATE)."""
        if self.combine == "sum":
            if value <= self._min_contribution:
                return
            self._set(node, i, self._act[i].get(node, 0.0) + value)
            if parents is not None:
                self._propagate_sum(node, i, value, parents)
            return
        current = self._act[i].get(node, 0.0)
        if value <= current:
            return
        self._set(node, i, value)
        if parents is not None:
            self._propagate_up(node, i, parents)

    def _set(self, node: int, i: int, value: float) -> None:
        self.cascade_touches += 1
        current = self._act[i].get(node, 0.0)
        self._act[i][node] = value
        self._total[node] = self._total.get(node, 0.0) + (value - current)
        if self._on_change is not None:
            self._on_change(node)

    def _propagate_sum(
        self, start: int, i: int, delta: float, parents: dict[int, dict[int, float]]
    ) -> None:
        """Sum-mode ACTIVATE: push the *added* mass up through explored
        parents, attenuated by ``mu`` and the share split; terminates by
        geometric decay plus the ``min_contribution`` floor."""
        stack = [(start, delta)]
        while stack:
            x, d = stack.pop()
            bucket = parents.get(x)
            if not bucket:
                continue
            norm = self._graph.in_inv_weight_sum(x)
            if norm <= 0.0:
                continue
            budget = self.mu * d
            for parent, w in bucket.items():
                contribution = budget * (1.0 / w) / norm
                if contribution > self._min_contribution:
                    self._set(
                        parent, i, self._act[i].get(parent, 0.0) + contribution
                    )
                    stack.append((parent, contribution))

    def _propagate_up(
        self, start: int, i: int, parents: dict[int, dict[int, float]]
    ) -> None:
        """ACTIVATE: best-first cascade of an increase through explored
        parents; dies out geometrically thanks to ``mu`` attenuation and
        max-combining."""
        heap = [(-self._act[i][start], start)]
        while heap:
            neg, x = heapq.heappop(heap)
            ax = -neg
            if ax < self._act[i].get(x, 0.0):
                continue  # superseded by a later, larger increase
            bucket = parents.get(x)
            if not bucket:
                continue
            norm = self._graph.in_inv_weight_sum(x)
            if norm <= 0.0:
                continue
            budget = self.mu * ax
            for parent, w in bucket.items():
                contribution = budget * (1.0 / w) / norm
                if contribution > self._act[i].get(parent, 0.0):
                    self._set(parent, i, contribution)
                    heapq.heappush(heap, (-contribution, parent))
