"""MutationLog basics: framing, sequencing, rotation, truncation."""

import pytest

from repro.errors import WalError
from repro.wal import MutationLog, default_wal_path


def batch(i: int) -> list:
    return [{"op": "add_node", "label": f"node-{i}", "text": f"word{i}"}]


@pytest.fixture()
def log(tmp_path):
    with MutationLog(tmp_path / "toy.wal") as log:
        yield log


class TestAppendAndRead:
    def test_sequences_are_contiguous_from_start_seq(self, tmp_path):
        with MutationLog(tmp_path / "log", start_seq=7) as log:
            assert log.last_seq == 7
            assert [log.append(batch(i)) for i in range(3)] == [8, 9, 10]
            assert [r.seq for r in log.records()] == [8, 9, 10]

    def test_records_round_trip_mutations_exactly(self, log):
        mutations = [
            {"op": "add_node", "label": "a", "table": "paper", "ref": None,
             "text": "x y"},
            {"op": "add_edge", "u": 0, "v": 3, "weight": 0.5},
        ]
        log.append(mutations)
        (record,) = log.records()
        assert list(record.mutations) == mutations
        assert record.recompute_prestige is False

    def test_recompute_prestige_flag_round_trips(self, log):
        log.append([], recompute_prestige=True)
        (record,) = log.records()
        assert record.mutations == ()
        assert record.recompute_prestige is True

    def test_start_after_skips_older_records(self, log):
        for i in range(5):
            log.append(batch(i))
        assert [r.seq for r in log.records(start_after=3)] == [4, 5]

    def test_explicit_seq_must_continue_the_log(self, log):
        log.append(batch(0), seq=1)
        with pytest.raises(WalError, match="out-of-order"):
            log.append(batch(1), seq=3)
        with pytest.raises(WalError, match="out-of-order"):
            log.append(batch(1), seq=1)
        assert log.append(batch(1), seq=2) == 2

    def test_reopen_resumes_after_last_record(self, tmp_path):
        with MutationLog(tmp_path / "log") as log:
            for i in range(4):
                log.append(batch(i))
        with MutationLog(tmp_path / "log") as log:
            assert log.last_seq == 4
            assert log.append(batch(4)) == 5
            assert [r.seq for r in log.records()] == [1, 2, 3, 4, 5]

    def test_rollback_last_removes_only_the_tail_record(self, log):
        log.append(batch(0))
        log.append(batch(1))
        assert log.rollback_last() == 1
        assert [r.seq for r in log.records()] == [1]
        # the slot is reusable and exactly-once
        with pytest.raises(WalError, match="no append to roll back"):
            log.rollback_last()
        assert log.append(batch(9)) == 2

    def test_bad_knobs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sync policy"):
            MutationLog(tmp_path / "log", sync="eventually")
        with pytest.raises(ValueError, match="batch_every"):
            MutationLog(tmp_path / "log", batch_every=0)
        with pytest.raises(ValueError, match="start_seq"):
            MutationLog(tmp_path / "log", start_seq=-1)


class TestSegments:
    def test_rotation_by_record_count(self, tmp_path):
        with MutationLog(tmp_path / "log", segment_max_records=2) as log:
            for i in range(5):
                log.append(batch(i))
            stats = log.stats()
            assert stats["segments"] == 3
            assert stats["records"] == 5
            assert [r.seq for r in log.records()] == [1, 2, 3, 4, 5]

    def test_truncate_drops_snapshotted_segments(self, tmp_path):
        with MutationLog(tmp_path / "log", segment_max_records=2) as log:
            for i in range(6):
                log.append(batch(i))
            deleted = log.truncate(4)
            assert deleted == 2
            assert log.first_base == 4
            assert log.last_seq == 6
            assert [r.seq for r in log.records(start_after=4)] == [5, 6]

    def test_truncate_at_tip_leaves_one_empty_segment(self, tmp_path):
        with MutationLog(tmp_path / "log", segment_max_records=2) as log:
            for i in range(3):
                log.append(batch(i))
            log.truncate(3)
            stats = log.stats()
            assert stats["records"] == 0
            assert stats["last_seq"] == 3
            assert log.append(batch(3)) == 4

    def test_reset_restarts_at_new_baseline(self, tmp_path):
        with MutationLog(tmp_path / "log") as log:
            log.append(batch(0))
            log.reset(start_seq=10)
            assert log.last_seq == 10
            assert list(log.records()) == []
            assert log.append(batch(1)) == 11


class TestSyncPolicies:
    @pytest.mark.parametrize("sync", ["commit", "batched", "off"])
    def test_all_policies_produce_identical_logs(self, tmp_path, sync):
        with MutationLog(tmp_path / sync, sync=sync, batch_every=2) as log:
            for i in range(5):
                log.append(batch(i))
            log.sync()
        with MutationLog(tmp_path / sync, readonly=True) as log:
            assert [r.seq for r in log.records()] == [1, 2, 3, 4, 5]


class TestReadonly:
    def test_readonly_requires_existing_directory(self, tmp_path):
        with pytest.raises(WalError, match="does not exist"):
            MutationLog(tmp_path / "nope", readonly=True)

    def test_readonly_rejects_writes(self, tmp_path):
        MutationLog(tmp_path / "log").close()
        with MutationLog(tmp_path / "log", readonly=True) as log:
            with pytest.raises(WalError, match="read-only"):
                log.append(batch(0))
            with pytest.raises(WalError, match="read-only"):
                log.truncate(0)

    def test_closed_rejects_writes(self, tmp_path):
        log = MutationLog(tmp_path / "log")
        log.close()
        with pytest.raises(WalError, match="closed"):
            log.append(batch(0))

    def test_peek(self, tmp_path):
        assert MutationLog.peek(tmp_path / "nope") is None
        with MutationLog(tmp_path / "log") as log:
            log.append(batch(0))
        peeked = MutationLog.peek(tmp_path / "log")
        assert peeked["last_seq"] == 1
        assert peeked["records"] == 1


def test_default_wal_path_is_snapshot_sibling(tmp_path):
    assert default_wal_path(tmp_path / "dblp.snap") == tmp_path / "dblp.snap.wal"
