"""FIG6b bench: SI-Backward vs Bidirectional by keyword count.

Paper Figure 6(b): Bidirectional wins by a large margin.  At our
pure-Python scale the *output*-time ratios are compressed by frontier
exhaustion (see EXPERIMENTS.md), so the asserted shape is on the
*generation*-time ratios — the prioritization signal — which must favour
Bidirectional in aggregate.
"""

import math

from repro.experiments.fig6 import run_fig6b

from conftest import as_float, run_report


def test_fig6b_si_vs_bidirectional(benchmark):
    report = run_report(benchmark, run_fig6b)
    assert len(report.rows) == 6

    gen_ratios = []
    for row in report.rows:
        for col in (5, 6):  # gen-time (small), (large)
            if row[col] != "-":
                gen_ratios.append(as_float(row[col]))
    assert gen_ratios, "no measurable queries"
    geomean = math.exp(sum(math.log(r) for r in gen_ratios) / len(gen_ratios))
    assert geomean > 1.0, "Bidirectional must generate relevant answers earlier"
