"""Kernel speedup: batched expansion backends vs the per-pop loops.

The workload is a fixed synthetic preferential-attachment graph
(20k nodes, 3 out-edges per node, seeded RNG — scale-free like the
paper's DBLP graph, big enough that frontier batches hit hub fan-ins)
queried with Bidirectional search for the top 10 answers joining the
two oldest hubs.  Expansion dominates this query: thousands of pops,
hub rows of hundreds of edges, a long steady-state frontier — the
regime the vectorized kernels exist for.

Arms are one per available expansion backend (``python`` is the seed's
per-pop reference loop; ``numba`` joins automatically when importable).
All arms alternate rounds so machine drift hits every backend equally,
and each arm scores its *median* round — the ratio gate must not flake
on one lucky or unlucky round.

Asserted here (the perf-trend job additionally gates the published
ratio against ``baseline.json``):

* ``scalar`` and ``vectorized`` (and ``numba`` when present) release
  **bit-identical** answer sequences — the kernel-parity contract at
  bench scale;
* ``python`` and ``vectorized`` agree on the released (root, score)
  set — batching may re-decompose tied paths but must not change
  what the search finds;
* ``vectorized`` beats ``python`` by at least ``KERNEL_MIN_SPEEDUP``
  (env, default 2.0 — a loose local sanity floor; CI's ratio gate in
  ``benchmarks/baseline.json`` enforces the real 3x bar).

This bench deliberately ignores ``REPRO_SCALE``: the speedup ratio is
workload-shape-sensitive, and the gate pins one shape.  The synthetic
graph costs ~2 s to build — no dataset generation involved.

Run directly (``python benchmarks/bench_kernel_speedup.py``) or under
pytest-benchmark.  ``BENCH_JSON_OUT`` appends one JSON row per arm.
"""

import os
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.bidirectional import BidirectionalSearch
from repro.core.kernels import available_backends
from repro.core.params import SearchParams
from repro.experiments.common import Report, fmt
from repro.graph.digraph import DataGraph

from conftest import as_float, cell, emit_json, run_report

N_NODES = 20_000
OUT_EDGES = 3
GRAPH_SEED = 42
MAX_RESULTS = 10
DMAX = 8
NODE_BUDGET = 60_000
#: Kernel batch size for this workload; also the cancellation check
#: interval, so responsiveness stays within ~2 batches.
BATCH = 512
ROUNDS = 5
#: The in-bench floor (loose; see module docstring).
MIN_SPEEDUP = float(os.environ.get("KERNEL_MIN_SPEEDUP", "2.0"))


def build_graph():
    """Preferential attachment: each new node links to ``OUT_EDGES``
    earlier nodes biased toward high-degree ones (scale-free hubs)."""
    rng = random.Random(GRAPH_SEED)
    dg = DataGraph()
    for i in range(N_NODES):
        dg.add_node(f"n{i}")
    targets = [0]
    for v in range(1, N_NODES):
        for _ in range(OUT_EDGES):
            u = rng.choice(targets)
            if u != v:
                dg.add_edge(v, u, rng.uniform(0.5, 2.0))
        targets.extend([v] * 2)
    return dg.freeze()


def _params(backend: str) -> SearchParams:
    return SearchParams(
        expansion_backend=backend,
        max_results=MAX_RESULTS,
        dmax=DMAX,
        node_budget=NODE_BUDGET,
        expansion_batch=BATCH,
        cancel_check_interval=BATCH,
    )


def _search(graph, keyword_sets, backend: str):
    return BidirectionalSearch(
        graph, ("hub0", "hub1"), keyword_sets, params=_params(backend)
    ).run()


def _signatures(result) -> tuple:
    """Released answers, order-sensitive — the bit-parity key."""
    return tuple(
        (a.tree.signature(), a.tree.score) for a in result.answers
    )


def _root_scores(result) -> list:
    """Order-insensitive (root, score) set — the agreement key."""
    return sorted(
        (a.tree.root, round(a.tree.score, 10)) for a in result.answers
    )


def run_kernel_speedup() -> Report:
    graph = build_graph()
    keyword_sets = [frozenset({0}), frozenset({1})]
    arms = [b for b in available_backends()]

    results = {}
    times: dict[str, list[float]] = {arm: [] for arm in arms}
    for arm in arms:  # warm caches (CSR build, numba JIT) off the clock
        results[arm] = _search(graph, keyword_sets, arm)
    for _ in range(ROUNDS):
        for arm in arms:
            start = time.perf_counter()
            results[arm] = _search(graph, keyword_sets, arm)
            times[arm].append(time.perf_counter() - start)

    median = {arm: statistics.median(times[arm]) for arm in arms}
    speedup = {arm: median["python"] / median[arm] for arm in arms}

    report = Report(
        experiment="kernel-speedup",
        title=(
            f"bidirectional top-{MAX_RESULTS} on a {N_NODES}-node "
            f"preferential-attachment graph, batch {BATCH}, "
            f"median of {ROUNDS} alternating rounds"
        ),
        headers=["backend", "median ms", "QPS", "speedup vs python"],
    )
    for arm in arms:
        row = {
            "experiment": "kernel-speedup",
            "mode": arm,
            "nodes": N_NODES,
            "batch": BATCH,
            "rounds": ROUNDS,
            "qps": 1.0 / median[arm],
            "latency_ms": median[arm] * 1000.0,
            "speedup_vs_python": speedup[arm],
            "answers": len(results[arm].answers),
        }
        emit_json(row)
        report.rows.append(
            [arm, fmt(median[arm] * 1000.0), fmt(row["qps"]), fmt(speedup[arm])]
        )

    # Parity: kernel backends are bit-identical to each other...
    for arm in arms:
        if arm in ("python", "scalar"):
            continue
        assert _signatures(results[arm]) == _signatures(results["scalar"]), (
            f"kernel backend {arm!r} diverged from scalar — "
            f"bit-parity contract broken"
        )
    # ...and agree with the reference loop on what the search finds.
    assert _root_scores(results["vectorized"]) == _root_scores(
        results["python"]
    ), "vectorized released a different (root, score) set than python"

    assert speedup["vectorized"] >= MIN_SPEEDUP, (
        f"vectorized speedup {speedup['vectorized']:.2f}x fell below the "
        f"{MIN_SPEEDUP:.1f}x floor (python {median['python'] * 1000:.0f} ms, "
        f"vectorized {median['vectorized'] * 1000:.0f} ms)"
    )
    report.notes.append(
        f"vectorized/python = {speedup['vectorized']:.2f}x "
        f"(floor {MIN_SPEEDUP:.1f}x; CI ratio gate 3.0x in baseline.json)"
    )
    if "numba" not in arms:
        report.notes.append("numba not importable here; arm skipped")
    return report


def test_kernel_speedup(benchmark):
    report = run_report(benchmark, run_kernel_speedup)
    for row in range(len(report.rows)):
        assert as_float(cell(report, row, 2)) > 0


if __name__ == "__main__":
    print(run_kernel_speedup().render())
