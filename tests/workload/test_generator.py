"""Workload generator: planted trees, band targeting, origin classes."""

import random

import pytest

from repro.workload.bands import OriginBands
from repro.workload.generator import WorkloadGenerator
from repro.workload.relevance import relevant_answers


@pytest.fixture(scope="module")
def generator(dblp_small_db, dblp_small_engine):
    return WorkloadGenerator(
        dblp_small_db, dblp_small_engine.graph, dblp_small_engine.index
    )


class TestNodeTerms:
    def test_text_node_has_terms(self, generator, dblp_small_engine):
        node = dblp_small_engine.graph.node_by_ref("author", 1)
        terms = generator.node_terms(node)
        assert terms
        assert all(term == term.lower() for term in terms)

    def test_link_node_has_no_terms(self, generator, dblp_small_engine):
        node = dblp_small_engine.graph.node_by_ref("writes", 1)
        assert generator.node_terms(node) == ()

    def test_cached(self, generator, dblp_small_engine):
        node = dblp_small_engine.graph.node_by_ref("author", 2)
        assert generator.node_terms(node) is generator.node_terms(node)


class TestSampleQuery:
    def test_planted_tree_yields_answer(self, generator, dblp_small_engine):
        rng = random.Random(5)
        query = generator.sample_query(rng, n_keywords=2, result_size=4)
        assert query is not None
        assert len(query.planted_nodes) == 4
        # The planted tree guarantees relevant answers exist.
        _, keyword_sets = dblp_small_engine.resolve(list(query.keywords))
        relevant = relevant_answers(
            dblp_small_engine.graph,
            keyword_sets,
            max_tree_size=8,
            scorer=dblp_small_engine.scorer,
        )
        assert relevant

    def test_origin_sizes_match_index(self, generator, dblp_small_engine):
        rng = random.Random(6)
        query = generator.sample_query(rng, n_keywords=3, result_size=4)
        assert query is not None
        for keyword, size in zip(query.keywords, query.origin_sizes):
            assert dblp_small_engine.index.frequency(keyword) == size

    def test_distinct_keywords(self, generator):
        rng = random.Random(7)
        for _ in range(5):
            query = generator.sample_query(rng, n_keywords=4, result_size=5)
            assert query is not None
            assert len(set(query.keywords)) == 4

    def test_band_combo_respected(self, generator):
        rng = random.Random(8)
        query = generator.sample_query(
            rng, n_keywords=2, result_size=3, band_combo=("T", "L")
        )
        assert query is not None
        assert sorted(query.bands) == ["L", "T"]

    def test_small_origin_class(self, generator):
        rng = random.Random(9)
        query = generator.sample_query(
            rng, n_keywords=2, result_size=4, origin_class="small"
        )
        assert query is not None
        assert generator.bands.is_small_origin(query.min_origin)
        assert not generator.bands.is_large_origin(query.max_origin)

    def test_large_origin_class(self, generator):
        rng = random.Random(10)
        query = generator.sample_query(
            rng, n_keywords=2, result_size=4, origin_class="large"
        )
        assert query is not None
        assert generator.bands.is_large_origin(query.max_origin)

    def test_band_combo_order_normalized(self, generator):
        rng = random.Random(11)
        query = generator.sample_query(
            rng, n_keywords=2, result_size=3, band_combo=("L", "T")
        )
        assert query is not None
        assert query.band_combo() == ("T", "L")

    def test_impossible_combo_returns_none(self, generator):
        rng = random.Random(12)
        # Four distinct Large keywords inside a 2-node tree: impossible
        # on this small dataset.
        query = generator.sample_query(
            rng,
            n_keywords=4,
            result_size=2,
            band_combo=("L", "L", "L", "L"),
            max_attempts=50,
        )
        assert query is None

    def test_validation(self, generator):
        rng = random.Random(13)
        with pytest.raises(ValueError):
            generator.sample_query(rng, n_keywords=0, result_size=3)
        with pytest.raises(ValueError):
            generator.sample_query(rng, n_keywords=2, result_size=3, origin_class="x")
        with pytest.raises(ValueError):
            generator.sample_query(
                rng, n_keywords=2, result_size=3, band_combo=("T",)
            )

    def test_custom_bands(self, dblp_small_db, dblp_small_engine):
        bands = OriginBands(tiny=(1, 2), small=(3, 4), medium=(5, 8), large=(9, float("inf")))
        generator = WorkloadGenerator(
            dblp_small_db,
            dblp_small_engine.graph,
            dblp_small_engine.index,
            bands=bands,
        )
        assert generator.bands is bands
