"""Keyword tokenization.

The paper's index "is built on values from selected string-valued
attributes from multiple tables" (Section 3).  We tokenize by splitting
on non-alphanumeric characters and lower-casing — the behaviour keyword
queries such as ``"Gray transaction"`` expect.  No stemming or stopword
removal: the paper relies on raw term frequency (frequent terms like
``database`` are exactly what stresses Backward search), so normalizing
them away would change the workload.
"""

from __future__ import annotations

import re
from typing import Iterator

__all__ = ["tokenize", "normalize_term"]

_TOKEN_RE = re.compile(r"[0-9a-z]+")


def normalize_term(term: str) -> str:
    """Canonical form of a query keyword (lower-cased, stripped)."""
    return term.strip().lower()


def tokenize(text: str) -> Iterator[str]:
    """Yield normalized tokens of ``text`` in order, with duplicates.

    >>> list(tokenize("Bidirectional Expansion, For KEYWORD-search!"))
    ['bidirectional', 'expansion', 'for', 'keyword', 'search']
    """
    return (match.group(0) for match in _TOKEN_RE.finditer(text.lower()))
