"""QueryService: registry, cached search, concurrent batches, deadlines."""

import threading

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.params import SearchParams
from repro.errors import (
    DeadlineExceededError,
    KeywordNotFoundError,
    UnknownDatasetError,
)
from repro.service import QueryRequest, QueryService

QUERIES = ["gray transaction", "selinger", "vldb", "postgres stonebraker"]
ALGOS = ["bidirectional", "si-backward", "mi-backward"]


@pytest.fixture
def service(toy_engine):
    with QueryService(cache_capacity=64, max_workers=8) as svc:
        svc.register_engine("toy", toy_engine)
        yield svc


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_unknown_dataset_raises(self, service):
        with pytest.raises(UnknownDatasetError):
            service.engine("nope")

    def test_unknown_dataset_search_is_structured_error(self, service):
        response = service.search("nope", "gray")
        assert not response.ok
        assert response.error_type == "UnknownDatasetError"
        with pytest.raises(UnknownDatasetError):
            response.raise_for_error()

    def test_register_factory_is_lazy_and_built_once(self, toy_db):
        builds = []
        with QueryService() as svc:

            def factory():
                builds.append(1)
                return KeywordSearchEngine.from_database(toy_db)

            svc.register_factory("toy", factory)
            assert svc.datasets() == ["toy"]
            assert builds == []  # nothing built yet
            first = svc.engine("toy")
            second = svc.engine("toy")
            assert first is second
            assert builds == [1]

    def test_lazy_build_under_concurrency_builds_once(self, toy_db):
        builds = []
        gate = threading.Event()

        def factory():
            gate.wait(5.0)
            builds.append(1)
            return KeywordSearchEngine.from_database(toy_db)

        with QueryService(max_workers=8) as svc:
            svc.register_factory("toy", factory)
            engines = []

            def worker():
                engines.append(svc.engine("toy"))

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            gate.set()
            for t in threads:
                t.join()
        assert builds == [1]
        assert all(e is engines[0] for e in engines)

    def test_warmup_reports_build_seconds(self, toy_db):
        with QueryService() as svc:
            svc.register_database("toy", toy_db)
            timings = svc.warmup()
            assert set(timings) == {"toy"}
            assert timings["toy"] > 0.0

    def test_register_snapshot_warmup(self, toy_engine, tmp_path):
        from repro.service.snapshot import save_engine

        path = tmp_path / "toy.snap"
        save_engine(path, toy_engine)
        with QueryService() as svc:
            svc.register_snapshot("toy", path)
            svc.warmup()
            response = svc.search("toy", "gray transaction", k=3)
            assert response.ok
            base = toy_engine.search("gray transaction", k=3)
            assert response.result.scores() == base.scores()

    def test_save_snapshot_through_service(self, service, tmp_path):
        written = service.save_snapshot("toy", tmp_path / "svc.snap")
        assert written.exists()

    def test_reregistering_purges_stale_cache_entries(self, service, toy_db):
        stale = service.search("toy", "gray transaction", k=3)
        other_engine = KeywordSearchEngine.from_database(toy_db)
        service.register_engine("other", other_engine)
        service.search("other", "gray transaction", k=3)
        # Replace 'toy': its cached answers must die with the old engine...
        service.register_engine("toy", KeywordSearchEngine.from_database(toy_db))
        fresh = service.search("toy", "gray transaction", k=3)
        assert not fresh.cached
        assert fresh.result is not stale.result
        # ...while other datasets' entries survive.
        assert service.search("other", "gray transaction", k=3).cached


# ----------------------------------------------------------------------
# single search + cache behaviour
# ----------------------------------------------------------------------
class TestSearch:
    def test_matches_engine_search(self, service, toy_engine):
        response = service.search("toy", "gray transaction", k=3)
        assert response.ok and not response.cached
        base = toy_engine.search("gray transaction", k=3)
        assert response.result.scores() == base.scores()
        assert response.result.signatures() == base.signatures()

    def test_repeat_query_is_cached(self, service):
        first = service.search("toy", "gray transaction", k=3)
        second = service.search("toy", "  gray   transaction ", k=3)
        assert not first.cached and second.cached
        assert second.result is first.result  # shared, not copied

    def test_k_and_params_spellings_share_cache_entry(self, service):
        first = service.search("toy", "gray", k=3)
        second = service.search(
            "toy", "gray", params=SearchParams(max_results=3)
        )
        assert second.cached

    def test_use_cache_false_forces_fresh_search(self, service):
        service.search("toy", "gray transaction")
        response = service.search("toy", "gray transaction", use_cache=False)
        assert not response.cached
        # ... and the fresh result refreshed the entry for later callers.
        assert service.search("toy", "gray transaction").cached

    def test_keyword_not_found_is_structured(self, service):
        response = service.search("toy", "zzz_not_a_word")
        assert not response.ok
        assert response.error_type == "KeywordNotFoundError"
        assert "zzz_not_a_word" in response.error
        with pytest.raises(KeywordNotFoundError):
            response.raise_for_error()

    def test_errors_are_not_cached(self, service):
        service.search("toy", "zzz_not_a_word")
        assert len(service.cache) == 0

    def test_request_object_form(self, service):
        request = QueryRequest("toy", "gray transaction", algorithm="si-backward", k=2)
        response = service.search(request)
        assert response.ok
        assert response.request is request
        assert response.result.algorithm == "si-backward"

    def test_invalid_algorithm_rejected_at_request_construction(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            QueryRequest("toy", "gray", algorithm="dijkstra")

    def test_request_object_with_overrides_rejected(self, service):
        request = QueryRequest("toy", "gray")
        with pytest.raises(ValueError, match="not both"):
            service.search(request, algorithm="mi-backward")
        with pytest.raises(ValueError, match="not both"):
            service.search(request, use_cache=False)

    def test_non_library_engine_failure_is_structured(self, service):
        class BrokenEngine:
            params = SearchParams()

            def search(self, query, *, algorithm, params):
                raise AttributeError("engine bug, not a library error")

        service.register_engine("broken", BrokenEngine())
        responses = service.search_many([("broken", "gray"), ("toy", "gray")])
        assert [r.ok for r in responses] == [False, True]
        assert responses[0].error_type == "AttributeError"

    def test_ttl_expiry_forces_recompute(self, toy_engine):
        clock_value = [0.0]
        with QueryService(cache_ttl=10.0, clock=lambda: clock_value[0]) as svc:
            svc.register_engine("toy", toy_engine)
            svc.search("toy", "gray transaction")
            assert svc.search("toy", "gray transaction").cached
            clock_value[0] += 11.0
            assert not svc.search("toy", "gray transaction").cached


# ----------------------------------------------------------------------
# batches
# ----------------------------------------------------------------------
class TestSearchMany:
    def test_matches_sequential_search_over_50_mixed_queries(
        self, service, toy_engine
    ):
        requests = [
            QueryRequest("toy", query, algorithm=algo, k=5)
            for query in QUERIES
            for algo in ALGOS
        ]
        requests = (requests * 5)[:50]
        responses = service.search_many(requests)
        assert len(responses) == 50
        assert all(r.ok for r in responses)
        for request, response in zip(requests, responses):
            base = toy_engine.search(request.query, algorithm=request.algorithm, k=5)
            assert response.result.scores() == base.scores()
            assert response.result.signatures() == base.signatures()

    def test_tuple_shorthand(self, service):
        responses = service.search_many(
            [("toy", "gray"), ("toy", "vldb", "si-backward")]
        )
        assert [r.ok for r in responses] == [True, True]
        assert responses[1].result.algorithm == "si-backward"

    def test_mixed_success_and_error_keep_order(self, service):
        responses = service.search_many(
            [("toy", "gray"), ("toy", "zzz_nope"), ("nope", "gray"), ("toy", "vldb")]
        )
        assert [r.ok for r in responses] == [True, False, False, True]
        assert responses[1].error_type == "KeywordNotFoundError"
        assert responses[2].error_type == "UnknownDatasetError"

    def test_error_strings_carry_no_repr_quoting(self, service):
        response = service.search("nope", "gray")
        # LookupError (not KeyError) base: str() must not repr-quote.
        assert response.error == "dataset 'nope' is not registered"

    def test_malformed_item_does_not_lose_the_batch(self, service):
        responses = service.search_many(
            [
                ("toy", "gray"),
                ("toy", "gray", "dijkstra"),  # unknown algorithm
                ("toy",),  # wrong shape
                ("toy", "gray", "bidirectional", 5),  # extra element
                ("toy", "vldb"),
            ]
        )
        assert [r.ok for r in responses] == [True, False, False, False, True]
        assert "batch tuple" in responses[3].error
        assert responses[1].request is None
        assert responses[1].error_type == "ValueError"
        assert "dijkstra" in responses[1].error
        assert responses[2].request is None
        with pytest.raises(ValueError):
            responses[1].raise_for_error()

    def test_concurrent_clients_eight_threads(self, service, toy_engine):
        """>= 8 client threads each running batches against one service."""
        expected = {
            (query, algo): toy_engine.search(query, algorithm=algo, k=5)
            for query in QUERIES
            for algo in ALGOS
        }
        failures = []

        def client(seed: int) -> None:
            requests = [
                QueryRequest("toy", query, algorithm=algo, k=5)
                for query in QUERIES
                for algo in ALGOS
            ]
            # Stagger each client's order so threads interleave work.
            rotated = requests[seed:] + requests[:seed]
            try:
                for response in service.search_many(rotated):
                    base = expected[(response.request.query, response.request.algorithm)]
                    assert response.ok, response.error
                    assert response.result.scores() == base.scores()
                    assert response.result.signatures() == base.signatures()
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []

    def test_engine_search_many_parity(self, toy_engine):
        queries = QUERIES * 3
        sequential = [toy_engine.search(q, k=4) for q in queries]
        batched = toy_engine.search_many(queries, k=4, max_workers=8)
        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert bat.scores() == seq.scores()
            assert bat.signatures() == seq.signatures()

    def test_engine_search_many_raises_like_search(self, toy_engine):
        with pytest.raises(KeywordNotFoundError):
            toy_engine.search_many(["gray", "zzz_nope"])


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_exceeded_is_structured(self, toy_db):
        gate = threading.Event()

        class SlowEngine:
            params = SearchParams()

            def search(self, query, *, algorithm, params):
                gate.wait(5.0)
                raise AssertionError("should not matter for the response")

        with QueryService(max_workers=2) as svc:
            svc.register_engine("slow", SlowEngine())
            response = svc.search("slow", "gray", timeout=0.05)
            gate.set()
        assert not response.ok
        assert response.error_type == "DeadlineExceededError"
        with pytest.raises(DeadlineExceededError):
            response.raise_for_error()

    def test_fast_query_beats_deadline(self, service):
        response = service.search("toy", "gray transaction", timeout=30.0)
        assert response.ok

    def test_batch_default_timeout_applies(self, toy_engine):
        gate = threading.Event()

        class SlowEngine:
            params = SearchParams()

            def search(self, query, *, algorithm, params):
                gate.wait(5.0)
                return toy_engine.search("gray", algorithm=algorithm, params=params)

        with QueryService(max_workers=4) as svc:
            svc.register_engine("toy", toy_engine)
            svc.register_engine("slow", SlowEngine())
            responses = svc.search_many(
                [("toy", "gray"), ("slow", "gray")], timeout=0.1
            )
            gate.set()
        assert responses[0].ok
        assert responses[1].error_type == "DeadlineExceededError"

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            QueryRequest("toy", "gray", timeout=0.0)

    def test_deadline_miss_is_recorded_once(self, toy_engine):
        """The abandoned worker's eventual completion must not add a
        second request (or a latency sample) for the same logical
        request."""
        release = threading.Event()

        class SlowEngine:
            params = SearchParams()

            def search(self, query, *, algorithm, params):
                release.wait(5.0)
                return toy_engine.search("gray", algorithm=algorithm, params=params)

        with QueryService(max_workers=2) as svc:
            svc.register_engine("slow", SlowEngine())
            response = svc.search("slow", "gray", timeout=0.05)
            assert response.error_type == "DeadlineExceededError"
            release.set()
        # close() (via the context manager) waited for the abandoned
        # worker, so its metrics gate has definitely been evaluated.
        exported = svc.metrics()
        assert exported["requests_total"] == 1
        assert exported["errors_total"] == 1
        assert exported["algorithms"]["bidirectional"]["latency_count"] == 0


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_export_reflects_traffic(self, service):
        service.search("toy", "gray transaction")
        service.search("toy", "gray transaction")
        service.search("toy", "zzz_nope")
        service.search("toy", "vldb", algorithm="si-backward")
        exported = service.metrics()
        assert exported["requests_total"] == 4
        assert exported["cache_hits"] == 1
        assert exported["errors"] == {"KeywordNotFoundError": 1}
        assert exported["algorithms"]["bidirectional"]["latency_p50"] is not None
        assert exported["cache"]["size"] == 2
        assert exported["datasets"]["built"] == ["toy"]

    def test_metrics_are_json_serializable(self, service):
        import json

        service.search("toy", "gray")
        json.dumps(service.metrics())

    def test_closed_service_rejects_batches(self, toy_engine):
        svc = QueryService()
        svc.register_engine("toy", toy_engine)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.search("toy", "gray", timeout=1.0)
