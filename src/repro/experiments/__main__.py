"""CLI entry point: ``python -m repro.experiments [ids...]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import REGISTRY


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the paper's tables and figures on the synthetic "
            "datasets (see DESIGN.md Section 4 for the experiment index)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (or 'all'); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name in REGISTRY:
            print(name)
        return 0

    names = list(REGISTRY) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2

    for name in names:
        start = time.perf_counter()
        report = REGISTRY[name]()
        print(report.render())
        print(f"[{name} took {time.perf_counter() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
