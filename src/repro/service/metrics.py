"""Service-side observability: latency percentiles, hit rates, errors.

The north-star deployment serves heavy traffic, so the service records
what an operator would page on — per-algorithm latency distributions,
cache effectiveness and error counts — and exports everything as one
plain dict (:meth:`ServiceMetrics.export`) ready for JSON or a metrics
agent, with no dependency on any particular telemetry stack.

Latencies are kept in a bounded per-algorithm reservoir (most recent
``window`` samples): a long-lived service must not grow memory with
query count, and recent samples are the ones percentile alerts care
about anyway.

When constructed with a :class:`~repro.telemetry.MetricsRegistry`, the
same events additionally feed Prometheus-style families (request
counters, error counters, bucketed latency histograms) — the mergeable,
scrapeable view.  :meth:`export` keeps its exact historical shape either
way; the registry is exported separately by the owning service.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Optional

import numpy as np

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ServiceMetrics", "percentile"]

#: Percentiles exported per algorithm.
EXPORTED_PERCENTILES = (50.0, 90.0, 99.0)


def percentile(samples: list[float], q: float) -> Optional[float]:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``samples``,
    ``None`` on an empty list."""
    if not samples:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    return float(np.percentile(samples, q))


class ServiceMetrics:
    """Thread-safe counters and latency reservoirs for one service."""

    def __init__(
        self, window: int = 2048, *, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self._window = window
        self._lock = threading.Lock()
        self._latencies: dict[str, deque] = {}
        self._requests: Counter = Counter()
        self._errors: Counter = Counter()
        self._cancellations: Counter = Counter()
        self._reclaimed_seconds = 0.0
        self._overrun_seconds = 0.0
        self._cache_hits = 0
        self._cache_misses = 0
        self._registry = registry
        if registry is not None:
            self._req_counter = registry.counter(
                "repro_requests_total",
                "Requests handled (including errors)",
                labels=("algorithm",),
            )
            self._err_counter = registry.counter(
                "repro_errors_total",
                "Requests that ended in a structured error",
                labels=("type",),
            )
            self._cancel_counter = registry.counter(
                "repro_cancellations_total",
                "Cooperatively stopped searches",
                labels=("reason",),
            )
            self._reclaimed_counter = registry.counter(
                "repro_cancel_reclaimed_seconds_total",
                "Deadline budget handed back by cooperative cancellation",
            )
            self._overrun_counter = registry.counter(
                "repro_cancel_overrun_seconds_total",
                "Time searches ran past their deadline before stopping",
            )
            self._hit_counter = registry.counter(
                "repro_cache_hits_total", "Result cache hits"
            )
            self._miss_counter = registry.counter(
                "repro_cache_misses_total", "Result cache misses"
            )
            self._latency_hist = registry.histogram(
                "repro_request_latency_seconds",
                "Uncached request latency",
                labels=("algorithm",),
            )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_request(
        self, algorithm: str, seconds: float, *, cached: Optional[bool]
    ) -> None:
        """Record one completed request.

        ``cached`` is True for a hit, False for a miss, None when the
        request bypassed the cache (``use_cache=False``) — bypasses are
        not cache lookups, so they leave the hit rate alone.  Cached
        responses skip the latency reservoir: mixing ~microsecond cache
        reads into the search distribution would make every percentile
        meaningless.
        """
        with self._lock:
            self._requests[algorithm] += 1
            if cached is not True:
                if cached is False:
                    self._cache_misses += 1
                reservoir = self._latencies.get(algorithm)
                if reservoir is None:
                    reservoir = self._latencies[algorithm] = deque(
                        maxlen=self._window
                    )
                reservoir.append(float(seconds))
            else:
                self._cache_hits += 1
        if self._registry is not None:
            self._req_counter.inc(algorithm=algorithm)
            if cached is True:
                self._hit_counter.inc()
            else:
                if cached is False:
                    self._miss_counter.inc()
                self._latency_hist.observe(float(seconds), algorithm=algorithm)

    def record_error(self, algorithm: str, error_type: str) -> None:
        with self._lock:
            self._requests[algorithm] += 1
            self._errors[error_type] += 1
        if self._registry is not None:
            self._req_counter.inc(algorithm=algorithm)
            self._err_counter.inc(type=error_type)

    def record_cancellation(
        self,
        reason: str,
        *,
        reclaimed_seconds: float = 0.0,
        overrun_seconds: float = 0.0,
    ) -> None:
        """Record one cooperatively cancelled search.

        Fleet-wide counters, deliberately not broken down per
        algorithm: a cancellation is a property of the request's
        deadline, and the per-algorithm request/error tables already
        carry the structured ``DeadlineExceededError`` /
        ``SearchCancelledError`` entries.

        ``reason`` is the token's: ``"deadline"`` (counted as
        ``deadline_exceeded``) or ``"cancelled"`` (an explicit cancel —
        client disconnect, ``DELETE /search/<id>``, batch drain).

        ``reclaimed_seconds`` is the *measurable* capacity win: how far
        ahead of the request's deadline budget the worker was freed
        (explicit cancels reclaim ``deadline - return``; a
        deadline-fired cancel reclaims the unknowable remainder of the
        search, which shows up in throughput, not here).
        ``overrun_seconds`` is how long past its deadline the search
        kept running before the cooperative check fired — bounded by
        the check interval, and the number to alert on if a
        non-cooperative section ever grows.
        """
        bucket = "deadline_exceeded" if reason == "deadline" else "cancelled"
        with self._lock:
            self._cancellations[bucket] += 1
            self._reclaimed_seconds += max(0.0, reclaimed_seconds)
            self._overrun_seconds += max(0.0, overrun_seconds)
        if self._registry is not None:
            self._cancel_counter.inc(reason=bucket)
            self._reclaimed_counter.inc(max(0.0, reclaimed_seconds))
            self._overrun_counter.inc(max(0.0, overrun_seconds))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export(self, *, include_samples: bool = False) -> dict:
        """Everything as one plain, JSON-serializable dict.

        ``include_samples=True`` adds each algorithm's raw latency
        reservoir under ``latency_samples`` — percentiles of percentiles
        are meaningless, so a multi-worker aggregator (the cluster tier)
        needs the samples themselves to merge distributions exactly.
        """
        with self._lock:
            lookups = self._cache_hits + self._cache_misses
            algorithms = {}
            for algorithm in sorted(self._requests):
                samples = list(self._latencies.get(algorithm, ()))
                entry = {
                    "requests": self._requests[algorithm],
                    "latency_count": len(samples),
                    "latency_mean": (
                        sum(samples) / len(samples) if samples else None
                    ),
                }
                for q in EXPORTED_PERCENTILES:
                    entry[f"latency_p{q:g}"] = percentile(samples, q)
                if include_samples:
                    entry["latency_samples"] = samples
                algorithms[algorithm] = entry
            return {
                "requests_total": sum(self._requests.values()),
                "errors_total": sum(self._errors.values()),
                "errors": dict(sorted(self._errors.items())),
                "cancellations": {
                    "cancelled": self._cancellations["cancelled"],
                    "deadline_exceeded": self._cancellations["deadline_exceeded"],
                    "reclaimed_seconds": self._reclaimed_seconds,
                    "overrun_seconds": self._overrun_seconds,
                },
                "cache_hits": self._cache_hits,
                "cache_misses": self._cache_misses,
                "cache_hit_rate": (self._cache_hits / lookups) if lookups else 0.0,
                "algorithms": algorithms,
            }

    def reset(self) -> None:
        with self._lock:
            self._latencies.clear()
            self._requests.clear()
            self._errors.clear()
            self._cancellations.clear()
            self._reclaimed_seconds = 0.0
            self._overrun_seconds = 0.0
            self._cache_hits = 0
            self._cache_misses = 0
