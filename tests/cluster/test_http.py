"""HTTP front-end: routes, status mapping, batch slots, health."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster.http import make_server, status_for_error
from repro.service.service import QueryService


@pytest.fixture(scope="module")
def http_service(toy_engine_session):
    service = QueryService()
    service.register_engine("toy", toy_engine_session)
    with service:
        yield service


@pytest.fixture(scope="module")
def server(http_service):
    server = make_server(http_service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(server, path, obj):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_search_ok(server, toy_engine_session):
    status, body = _post(
        server, "/search", {"dataset": "toy", "query": "gray transaction", "k": 3}
    )
    assert status == 200
    assert body["error"] is None
    local = toy_engine_session.search("gray transaction", k=3)
    assert [a["tree"]["score"] for a in body["result"]["answers"]] == local.scores()


def test_search_error_statuses(server):
    assert _post(server, "/search", {"dataset": "nope", "query": "x"})[0] == 404
    status, body = _post(server, "/search", {"dataset": "toy", "query": "zzznope"})
    assert status == 404
    assert body["error_type"] == "KeywordNotFoundError"
    # Malformed request object: 400 with a structured body.
    status, body = _post(server, "/search", {"bogus": 1})
    assert status == 400
    assert body["error_type"] == "ValueError"


def test_bad_json_and_unknown_route(server):
    request = urllib.request.Request(
        _url(server, "/search"), data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400
    assert _get(server, "/nope")[0] == 404
    assert _post(server, "/nope", {})[0] == 404


def test_batch_keeps_slots(server):
    status, body = _post(
        server,
        "/batch",
        {
            "requests": [
                {"dataset": "toy", "query": "gray transaction"},
                {"oops": True},
                {"dataset": "toy", "query": "zzznope"},
            ]
        },
    )
    assert status == 200  # per-item errors live inside the slots
    responses = body["responses"]
    assert len(responses) == 3
    assert responses[0]["error"] is None
    assert responses[1]["error_type"] == "ValueError"
    assert responses[2]["error_type"] == "KeywordNotFoundError"

    status, body = _post(server, "/batch", {"nope": 1})
    assert status == 400


def test_metrics_and_healthz(server):
    status, body = _get(server, "/metrics")
    assert status == 200
    assert body["requests_total"] >= 1
    status, body = _get(server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["datasets"] == ["toy"]


def test_healthz_reports_fleet_state(server, sharded):
    # Swap the bound service for the sharded tier: same facade, and
    # healthz now carries fleet liveness.
    original = server.service
    try:
        server.service = sharded
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["workers"] == 2
        assert body["alive"] == 2
        status, body = _post(
            server, "/search", {"dataset": "alpha", "query": "gray transaction"}
        )
        assert status == 200
        assert body["error"] is None
    finally:
        server.service = original


def test_status_for_error_mapping():
    assert status_for_error(None) == 200
    assert status_for_error("UnknownDatasetError") == 404
    assert status_for_error("KeywordNotFoundError") == 404
    assert status_for_error("EmptyQueryError") == 400
    assert status_for_error("DeadlineExceededError") == 504
    assert status_for_error("WorkerCrashedError") == 503
    assert status_for_error("SomethingElse") == 500
