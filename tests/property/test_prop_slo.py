"""Property: SLO window math is merge-invariant.

The supervisor computes burn rates from *merged* replica histograms
(cumulative buckets add across replicas).  For that to be sound, the
bad fraction — and therefore the burn rate — computed over the merged
export must equal the one computed over the union of the raw latency
samples.  Hypothesis pins this for arbitrary replica splits of an
arbitrary sample population, plus the supporting algebra
(``burn_rate`` scaling, bucket-threshold conservatism).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import MetricsRegistry, merge_registries
from repro.telemetry.slo import burn_rate, histogram_bad_fraction

BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

latencies = st.lists(
    st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=60,
)


def observe_all(samples: list[float]) -> dict:
    """One registry that saw every sample -> its exported histogram."""
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "latency", buckets=BUCKETS)
    for value in samples:
        hist.observe(value)
    return registry.export()


def split(samples: list[float], cuts: list[int]) -> list[list[float]]:
    """Partition samples into replica-sized chunks at the given cuts."""
    bounds = sorted(cut % (len(samples) + 1) for cut in cuts)
    parts, start = [], 0
    for cut in bounds + [len(samples)]:
        parts.append(samples[start:cut])
        start = cut
    return parts


@st.composite
def replica_splits(draw):
    samples = draw(latencies)
    cuts = draw(st.lists(st.integers(min_value=0), min_size=0, max_size=4))
    threshold = draw(st.sampled_from(BUCKETS))
    return samples, split(samples, cuts), threshold


class TestMergeInvariance:
    @settings(max_examples=200, deadline=None)
    @given(replica_splits())
    def test_bad_fraction_over_merge_equals_union(self, case):
        samples, parts, threshold = case
        merged = merge_registries([observe_all(part) for part in parts])
        union = observe_all(samples)

        def bad_fraction(export: dict) -> float:
            (sample,) = export["lat"]["samples"]
            return histogram_bad_fraction(
                sample["buckets"], sample["count"], threshold
            )

        assert bad_fraction(merged) == pytest.approx(bad_fraction(union))

    @settings(max_examples=200, deadline=None)
    @given(replica_splits())
    def test_merged_count_and_buckets_are_sums(self, case):
        samples, parts, _ = case
        merged = merge_registries([observe_all(part) for part in parts])
        union = observe_all(samples)
        (merged_sample,) = merged["lat"]["samples"]
        (union_sample,) = union["lat"]["samples"]
        assert merged_sample["count"] == union_sample["count"] == len(samples)
        assert merged_sample["buckets"] == union_sample["buckets"]
        assert merged_sample["sum"] == pytest.approx(union_sample["sum"])

    @settings(max_examples=200, deadline=None)
    @given(replica_splits(), st.floats(min_value=0.001, max_value=0.5))
    def test_burn_rate_is_merge_invariant(self, case, budget):
        samples, parts, threshold = case
        merged = merge_registries([observe_all(part) for part in parts])
        (sample,) = merged["lat"]["samples"]
        total = sample["count"]
        fraction = histogram_bad_fraction(sample["buckets"], total, threshold)
        via_merge = burn_rate(fraction * total, total, budget)
        exact_bad = sum(1 for value in samples if value > threshold)
        # The bucketed count can only over-estimate badness (conservative
        # rounding up to the next bound), never under-estimate.
        assert via_merge * budget * total >= exact_bad - 1e-9


class TestAlgebra:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=1000),
        st.floats(min_value=0.001, max_value=1.0),
    )
    def test_burn_rate_scales_with_bad_fraction(self, bad, extra, budget):
        total = bad + extra
        rate = burn_rate(bad, total, budget)
        assert rate == pytest.approx((bad / total) / budget)
        assert rate >= 0
        # Doubling both bad and total leaves the rate unchanged.
        assert burn_rate(2 * bad, 2 * total, budget) == pytest.approx(rate)

    @settings(max_examples=200, deadline=None)
    @given(latencies, st.sampled_from(BUCKETS))
    def test_bad_fraction_bounded_and_conservative(self, samples, threshold):
        export = observe_all(samples)
        (sample,) = export["lat"]["samples"]
        fraction = histogram_bad_fraction(
            sample["buckets"], sample["count"], threshold
        )
        assert 0.0 <= fraction <= 1.0
        exact = sum(1 for v in samples if v > threshold) / len(samples)
        assert fraction >= exact - 1e-9
        assert not math.isnan(fraction)
