"""Synthetic dataset generators (substrate S14).

Each generator returns a deterministic :class:`~repro.relational.Database`
whose *shape* matches the corresponding real dataset of the paper's
Section 5 — Zipfian term frequencies, hub nodes with large fan-in,
link tuples as first-class rows, preferential-attachment citations —
scaled down to sizes a pure-Python search explores in seconds
(substitution documented in DESIGN.md Section 3).
"""

from repro.datasets.dblp import DBLP_SCHEMA, DblpConfig, make_dblp
from repro.datasets.imdb import IMDB_SCHEMA, ImdbConfig, make_imdb
from repro.datasets.names import NamePool
from repro.datasets.patents import PATENTS_SCHEMA, PatentsConfig, make_patents
from repro.datasets.vocab import TOPIC_WORDS, ZipfVocabulary, make_vocabulary

__all__ = [
    "DBLP_SCHEMA",
    "DblpConfig",
    "make_dblp",
    "IMDB_SCHEMA",
    "ImdbConfig",
    "make_imdb",
    "PATENTS_SCHEMA",
    "PatentsConfig",
    "make_patents",
    "NamePool",
    "TOPIC_WORDS",
    "ZipfVocabulary",
    "make_vocabulary",
]
