"""Ground-truth relevant answers (paper Sections 5.2 and 5.4).

The paper judges relevance manually for the sample queries and, for the
generated workload, "executed SQL queries to find relevant answers" —
i.e. the results of the planted join network.  We compute the analogous
set programmatically: every answer tree of at most the planted size,
found by the exhaustive oracle.  All algorithms share the same tree
model, so recall/precision against this set is well defined.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.answer import AnswerTree, Signature
from repro.core.exhaustive import exhaustive_answers
from repro.core.scoring import Scorer

__all__ = ["relevant_answers", "relevant_signatures"]


def relevant_answers(
    graph,
    keyword_sets: Sequence[frozenset[int]],
    *,
    max_tree_size: int,
    scorer: Optional[Scorer] = None,
) -> list[AnswerTree]:
    """All (rotation-deduplicated, best-per-root) answer trees with at
    most ``max_tree_size`` nodes, best score first."""
    if max_tree_size < 1:
        raise ValueError(f"max_tree_size must be >= 1, got {max_tree_size!r}")
    answers = exhaustive_answers(graph, keyword_sets, scorer)
    return [tree for tree in answers if tree.size() <= max_tree_size]


def relevant_signatures(
    graph,
    keyword_sets: Sequence[frozenset[int]],
    *,
    max_tree_size: int,
    scorer: Optional[Scorer] = None,
) -> set[Signature]:
    """Rotation-invariant signatures of the relevant set (what the
    metrics match output answers against)."""
    return {
        tree.signature()
        for tree in relevant_answers(
            graph, keyword_sets, max_tree_size=max_tree_size, scorer=scorer
        )
    }
