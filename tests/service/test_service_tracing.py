"""End-to-end tracing through ``QueryService``: span trees, engine-stage
attributes, pop-sampled profiles, the slow-query log, and the registry
families the service feeds."""

import pytest

from repro.core.params import SearchParams
from repro.service import QueryRequest, QueryService


@pytest.fixture
def service(toy_engine):
    with QueryService(cache_capacity=64, max_workers=4) as svc:
        svc.register_engine("toy", toy_engine)
        yield svc


def _find(node, name):
    """Depth-first search of a span-tree node list for a span name."""
    for child in node:
        if child["name"] == name:
            return child
        found = _find(child.get("children", ()), name)
        if found is not None:
            return found
    return None


class TestSpanTree:
    def test_search_produces_worker_engine_expand_tree(self, service):
        response = service.search("toy", "gray transaction")
        assert response.ok
        assert response.trace_id is not None
        tree = service.trace(response.trace_id)
        assert tree is not None
        assert tree["trace_id"] == response.trace_id
        (root,) = [r for r in tree["roots"] if r["name"] == "worker"]
        assert root["attributes"]["dataset"] == "toy"
        assert root["attributes"]["algorithm"] == "bidirectional"
        engine = _find(root["children"], "engine")
        assert engine is not None
        stages = {child["name"] for child in engine["children"]}
        assert "resolve" in stages
        assert "expand[bidir]" in stages
        assert "emit" in stages

    def test_expand_span_carries_pop_and_frontier_attributes(self, service):
        response = service.search("toy", "gray transaction")
        tree = service.trace(response.trace_id)
        expand = _find(tree["roots"], "expand[bidir]")
        attrs = expand["attributes"]
        assert attrs["pops"] >= 1
        assert attrs["nodes_touched"] >= 1
        assert "frontiers" in attrs
        assert attrs["complete"] is True

    def test_algorithm_selects_expand_span_name(self, service):
        response = service.search("toy", "gray", algorithm="si-backward")
        tree = service.trace(response.trace_id)
        assert _find(tree["roots"], "expand[si]") is not None

    def test_caller_supplied_trace_id_is_honoured(self, service):
        request = QueryRequest(
            dataset="toy",
            query="gray",
            trace_id="f" * 32,
            parent_span_id="0" * 16,
            request_id="req-1",
        )
        response = service.search(request)
        assert response.trace_id == "f" * 32
        assert response.request_id == "req-1"
        tree = service.trace("f" * 32)
        (root,) = [r for r in tree["roots"] if r["name"] == "worker"]
        assert root["parent_id"] == "0" * 16
        assert root["attributes"]["request_id"] == "req-1"

    def test_cache_hit_skips_engine_spans(self, service):
        first = service.search("toy", "selinger")
        second = service.search("toy", "selinger")
        assert second.cached
        tree = service.trace(second.trace_id)
        (root,) = [r for r in tree["roots"] if r["name"] == "worker"]
        assert root["attributes"]["cached"] is True
        assert _find(root["children"], "engine") is None
        assert second.trace_id != first.trace_id

    def test_error_response_is_stamped_and_marked(self, service):
        request = QueryRequest(dataset="nope", query="x", request_id="req-err")
        response = service.search(request)
        assert not response.ok
        assert response.request_id == "req-err"
        assert response.trace_id is not None
        tree = service.trace(response.trace_id)
        (root,) = tree["roots"]
        assert root["status"] == "error"
        assert root["attributes"]["error_type"] == "UnknownDatasetError"


class TestProfiling:
    def test_trace_every_n_pops_samples_trajectory(self, service):
        params = SearchParams(trace_every_n_pops=1)
        response = service.search("toy", "gray transaction", params=params)
        tree = service.trace(response.trace_id)
        expand = _find(tree["roots"], "expand[bidir]")
        attrs = expand["attributes"]
        assert attrs["profile_every"] == 1
        profile = attrs["profile"]
        assert len(profile) >= 1
        sample = profile[0]
        assert sample["pops"] == 1
        assert "frontiers" in sample

    def test_sampling_off_by_default(self, service):
        response = service.search("toy", "gray transaction")
        tree = service.trace(response.trace_id)
        expand = _find(tree["roots"], "expand[bidir]")
        assert "profile" not in expand["attributes"]


class TestSlowLog:
    def test_threshold_zero_records_every_query(self, toy_engine):
        with QueryService(slow_query_threshold=0.0) as svc:
            svc.register_engine("toy", toy_engine)
            response = svc.search("toy", "gray")
            entries = svc.slow_queries()
            assert len(entries) == 1
            entry = entries[0]
            assert entry["trace_id"] == response.trace_id
            assert entry["request"]["dataset"] == "toy"
            assert entry["span_tree"]["span_count"] >= 1

    def test_default_threshold_skips_fast_queries(self, service):
        service.search("toy", "gray")
        assert service.slow_queries() == []


class TestTracingDisabled:
    def test_no_trace_ids_no_spans(self, toy_engine):
        with QueryService(tracing=False) as svc:
            svc.register_engine("toy", toy_engine)
            response = svc.search("toy", "gray")
            assert response.ok
            assert response.trace_id is None
            assert response.spans is None
            assert svc.trace("anything") is None

    def test_request_id_still_echoed(self, toy_engine):
        with QueryService(tracing=False) as svc:
            svc.register_engine("toy", toy_engine)
            request = QueryRequest(dataset="toy", query="gray", request_id="r1")
            assert svc.search(request).request_id == "r1"


class TestRegistryFamilies:
    def test_metrics_exports_registry_families(self, service):
        service.search("toy", "gray")
        service.search("toy", "gray")  # cache hit
        exported = service.metrics()
        registry = exported["registry"]
        assert isinstance(registry, dict)
        requests = registry["repro_requests_total"]["samples"]
        assert sum(s["value"] for s in requests) == 2
        hits = registry["repro_cache_hits_total"]["samples"]
        assert hits and hits[0]["value"] == 1
        latency = registry["repro_request_latency_seconds"]
        assert latency["type"] == "histogram"
        assert sum(s["count"] for s in latency["samples"]) >= 1
