"""Relational schema model: tables, columns, foreign keys.

This is the substrate under both the graph builder (tuples become nodes,
foreign keys become edges; paper Section 2.1) and the Sparse baseline
(candidate networks are enumerated over the *schema graph*; paper
Sections 5 and 6 / Hristidis et al. VLDB 2003).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError

__all__ = ["Table", "ForeignKey", "Schema"]


@dataclass(frozen=True)
class Table:
    """A relation.

    Parameters
    ----------
    name:
        Relation name; also matched by keyword queries (a keyword equal
        to a relation name matches every tuple of the relation, paper
        Section 2.2).
    columns:
        All column names, including the primary key.
    pk:
        Primary-key column, defaulting to ``"id"``.
    text_columns:
        Columns whose values are tokenized into the keyword index.
    """

    name: str
    columns: tuple[str, ...]
    pk: str = "id"
    text_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column in table {self.name!r}")
        if self.pk not in self.columns:
            raise SchemaError(f"pk {self.pk!r} is not a column of {self.name!r}")
        for col in self.text_columns:
            if col not in self.columns:
                raise UnknownColumnError(f"{self.name}.{col}")

    def has_column(self, column: str) -> bool:
        return column in self.columns


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key ``table.column -> ref_table.ref_column``.

    ``weight`` is the forward edge weight in the data graph (paper
    Section 2.3: "The weights of forward edges ... are defined by the
    schema, and default to 1").
    """

    table: str
    column: str
    ref_table: str
    ref_column: str = "id"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise SchemaError(f"foreign key weight must be > 0, got {self.weight!r}")


@dataclass
class Schema:
    """A set of tables plus foreign keys, with validation on construction."""

    tables: tuple[Table, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()
    _by_name: dict[str, Table] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {}
        for table in self.tables:
            if table.name in self._by_name:
                raise SchemaError(f"duplicate table {table.name!r}")
            self._by_name[table.name] = table
        for fk in self.foreign_keys:
            src = self.table(fk.table)
            dst = self.table(fk.ref_table)
            if not src.has_column(fk.column):
                raise UnknownColumnError(f"{fk.table}.{fk.column}")
            if not dst.has_column(fk.ref_column):
                raise UnknownColumnError(f"{fk.ref_table}.{fk.ref_column}")
            if fk.ref_column != dst.pk:
                raise SchemaError(
                    f"foreign key {fk.table}.{fk.column} must reference the "
                    f"primary key of {fk.ref_table} (got {fk.ref_column!r})"
                )

    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._by_name

    def table_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables)

    def fks_from(self, table: str) -> Iterator[ForeignKey]:
        """Foreign keys whose *source* is ``table``."""
        self.table(table)
        return (fk for fk in self.foreign_keys if fk.table == table)

    def fks_to(self, table: str) -> Iterator[ForeignKey]:
        """Foreign keys whose *target* is ``table``."""
        self.table(table)
        return (fk for fk in self.foreign_keys if fk.ref_table == table)

    def adjacent_tables(self, table: str) -> set[str]:
        """Tables joined to ``table`` by some FK in either direction.

        This is the neighbourhood in the *schema graph* used by
        candidate-network enumeration.
        """
        out = {fk.ref_table for fk in self.fks_from(table)}
        out.update(fk.table for fk in self.fks_to(table))
        return out

    def joins_between(self, a: str, b: str) -> list[ForeignKey]:
        """All FKs connecting tables ``a`` and ``b`` in either direction."""
        self.table(a)
        self.table(b)
        return [
            fk
            for fk in self.foreign_keys
            if (fk.table == a and fk.ref_table == b)
            or (fk.table == b and fk.ref_table == a)
        ]
