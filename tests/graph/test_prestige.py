"""Biased PageRank prestige (paper Section 2.3)."""

import numpy as np
import pytest

from repro.graph.prestige import compute_prestige, prestige_transition_matrix

from tests.helpers import build_graph


class TestTransitionMatrix:
    def test_columns_are_stochastic(self):
        g = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        matrix = prestige_transition_matrix(g)
        sums = np.asarray(matrix.sum(axis=0)).ravel()
        assert np.allclose(sums, 1.0)

    def test_probability_inverse_to_weight(self):
        # Node 0 has forward edges to 1 (w=1) and 2 (w=3): the walk must
        # prefer the lighter edge 3:1.
        g = build_graph(3, [(0, 1, 1.0), (0, 2, 3.0)])
        matrix = prestige_transition_matrix(g).toarray()
        # Out-edges of node 0: forward (0->1, w 1), (0->2, w 3) only
        # (no backward edges enter 0's out list except from derived
        # edges of incoming forward edges, of which there are none).
        p1, p2 = matrix[1, 0], matrix[2, 0]
        assert p1 / p2 == pytest.approx(3.0)

    def test_isolated_node_has_zero_column(self):
        g = build_graph(3, [(0, 1)])
        matrix = prestige_transition_matrix(g).toarray()
        assert matrix[:, 2].sum() == 0.0


class TestComputePrestige:
    def test_sums_to_one_and_positive(self):
        g = build_graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        p = compute_prestige(g)
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0).all()

    def test_symmetric_cycle_is_uniform(self):
        g = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        p = compute_prestige(g)
        assert np.allclose(p, 0.25, atol=1e-6)

    def test_hub_collects_prestige(self):
        # Star: many nodes point at the hub; hub should rank highest.
        edges = [(i, 0) for i in range(1, 8)]
        g = build_graph(8, edges)
        p = compute_prestige(g)
        assert p[0] == pytest.approx(p.max())
        assert p[0] > 2 * p[1]

    def test_dangling_nodes_handled(self):
        g = build_graph(3, [(0, 1)])  # node 2 isolated
        p = compute_prestige(g)
        assert p.sum() == pytest.approx(1.0)
        assert p[2] > 0.0

    def test_empty_graph(self):
        g = build_graph(0, [])
        assert compute_prestige(g).shape == (0,)

    def test_damping_validation(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            compute_prestige(g, damping=0.0)
        with pytest.raises(ValueError):
            compute_prestige(g, damping=1.0)

    def test_teleport_bias(self):
        g = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        biased = compute_prestige(g, teleport=[1.0, 0.0, 0.0, 0.0])
        assert biased[0] == pytest.approx(biased.max())

    def test_teleport_validation(self):
        g = build_graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            compute_prestige(g, teleport=[1.0])
        with pytest.raises(ValueError):
            compute_prestige(g, teleport=[0.0, 0.0])

    def test_agrees_with_networkx(self):
        """Independent oracle: networkx.pagerank on the weighted
        transition graph (weights = inverse edge weight)."""
        import networkx as nx

        g = build_graph(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5, 2.0)])
        ours = compute_prestige(g, damping=0.85, tol=1e-12)

        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(6))
        for u in g.nodes():
            for v, w, _ in g.out_edges(u):
                # Parallel edges collapse by summed inverse weight.
                if nxg.has_edge(u, v):
                    nxg[u][v]["weight"] += 1.0 / w
                else:
                    nxg.add_edge(u, v, weight=1.0 / w)
        theirs = nx.pagerank(nxg, alpha=0.85, weight="weight", tol=1e-12)
        for node in range(6):
            assert ours[node] == pytest.approx(theirs[node], abs=1e-6)
