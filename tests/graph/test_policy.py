"""Edge-type constraints and prioritization (paper Section 1 extension)."""

import pytest

from repro.graph.policy import EdgePolicy, apply_edge_policy


class TestEdgePolicy:
    def test_default_keeps_everything(self):
        policy = EdgePolicy()
        assert policy.multiplier("a", "b", True) == 1.0
        assert policy.multiplier(None, None, False) == 1.0

    def test_exact_rule_wins_over_wildcard(self):
        policy = EdgePolicy(
            rules={("a", "b"): 2.0, ("a", "*"): 5.0, ("*", "b"): 7.0}
        )
        assert policy.multiplier("a", "b", True) == 2.0
        assert policy.multiplier("a", "c", True) == 5.0
        assert policy.multiplier("x", "b", True) == 7.0
        assert policy.multiplier("x", "y", True) == 1.0

    def test_none_drops(self):
        policy = EdgePolicy(rules={("cites", "*"): None})
        assert policy.multiplier("cites", "paper", True) is None

    def test_forward_only(self):
        policy = EdgePolicy(forward_only=True)
        assert policy.multiplier("a", "b", True) == 1.0
        assert policy.multiplier("a", "b", False) is None

    def test_default_none_restricts_to_rules(self):
        policy = EdgePolicy(default=None, rules={("a", "b"): 1.0})
        assert policy.multiplier("a", "b", True) == 1.0
        assert policy.multiplier("b", "a", True) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgePolicy(rules={("a", "b"): 0.0})
        with pytest.raises(ValueError):
            EdgePolicy(default=-1.0)


class TestApplyEdgePolicy:
    def test_identity_policy_preserves_graph(self, toy_engine):
        graph = toy_engine.graph
        view = apply_edge_policy(graph, EdgePolicy())
        assert view.num_nodes == graph.num_nodes
        assert view.num_edges == graph.num_edges
        for u in graph.nodes():
            assert list(view.out_edges(u)) == list(graph.out_edges(u))

    def test_drop_rule_removes_both_directions_of_type(self, toy_engine):
        graph = toy_engine.graph
        policy = EdgePolicy(rules={("cites", "*"): None, ("*", "cites"): None})
        view = apply_edge_policy(graph, policy)
        for u in view.nodes():
            for v, _, _ in view.out_edges(u):
                assert view.table(u) != "cites"
                assert view.table(v) != "cites"
        assert view.num_edges < graph.num_edges

    def test_multiplier_reweights(self, toy_engine):
        graph = toy_engine.graph
        view = apply_edge_policy(graph, EdgePolicy(rules={("writes", "author"): 4.0}))
        for u in graph.nodes():
            if graph.table(u) != "writes":
                continue
            for (v, w, fwd), (v2, w2, fwd2) in zip(
                graph.out_edges(u), view.out_edges(u)
            ):
                if graph.table(v) == "author" and fwd:
                    assert w2 == pytest.approx(4.0 * w)

    def test_metadata_and_prestige_shared(self, toy_engine):
        graph = toy_engine.graph
        view = apply_edge_policy(graph, EdgePolicy())
        assert view.label(0) == graph.label(0)
        assert view.node_prestige(0) == graph.node_prestige(0)
        assert view.ref(0) == graph.ref(0)

    def test_inverse_weight_sums_rebuilt(self, toy_engine):
        graph = toy_engine.graph
        view = apply_edge_policy(graph, EdgePolicy(rules={("*", "paper"): 2.0}))
        for v in view.nodes():
            expected = sum(1.0 / w for _, w, _ in view.in_edges(v))
            assert view.in_inv_weight_sum(v) == pytest.approx(expected)


class TestConstrainedSearch:
    def test_citation_free_answers(self, toy_engine):
        # 'gray selinger' connects via citation (short) or would need
        # longer author-paper chains; banning cites removes the
        # citation-mediated answers entirely.
        constrained = toy_engine.constrained(
            EdgePolicy(rules={("cites", "*"): None, ("*", "cites"): None})
        )
        result = constrained.search("gray selinger", k=10)
        for answer in result.answers:
            tables = {constrained.graph.table(n) for n in answer.tree.nodes()}
            assert "cites" not in tables

    def test_unconstrained_uses_citations(self, toy_engine):
        result = toy_engine.search("gray selinger", k=1)
        tables = {toy_engine.graph.table(n) for n in result.best().tree.nodes()}
        assert "cites" in tables

    def test_deprioritizing_changes_ranking_not_reachability(self, toy_engine):
        penalized = toy_engine.constrained(
            EdgePolicy(rules={("cites", "*"): 10.0, ("*", "cites"): 10.0})
        )
        base = toy_engine.search("gray selinger", k=5)
        heavy = penalized.search("gray selinger", k=5)
        assert base.answers and heavy.answers
        # Citation paths still exist but cost more.
        base_best = base.best().tree
        heavy_equiv = [
            a for a in heavy.answers
            if a.tree.signature() == base_best.signature()
        ]
        if heavy_equiv:
            assert heavy_equiv[0].tree.edge_score > base_best.edge_score

    def test_all_algorithms_respect_constraints(self, toy_engine):
        constrained = toy_engine.constrained(
            EdgePolicy(rules={("cites", "*"): None, ("*", "cites"): None})
        )
        for algorithm in ("bidirectional", "si-backward", "mi-backward"):
            result = constrained.search("gray transaction", algorithm=algorithm)
            assert result.answers, algorithm
            for answer in result.answers:
                tables = {
                    constrained.graph.table(n) for n in answer.tree.nodes()
                }
                assert "cites" not in tables, algorithm
