"""Lazy priority queues."""

import pytest

from repro.core.heaps import LazyMaxHeap, LazyMinHeap


class TestLazyMinHeap:
    def test_pop_order(self):
        heap = LazyMinHeap()
        heap.push("b", 2.0)
        heap.push("a", 1.0)
        heap.push("c", 3.0)
        assert heap.pop() == ("a", 1.0)
        assert heap.pop() == ("b", 2.0)
        assert heap.pop() == ("c", 3.0)

    def test_decrease_key_via_repush(self):
        heap = LazyMinHeap()
        heap.push("x", 5.0)
        heap.push("y", 3.0)
        heap.push("x", 1.0)
        assert heap.pop() == ("x", 1.0)
        assert heap.pop() == ("y", 3.0)
        assert len(heap) == 0

    def test_increase_key_via_repush(self):
        heap = LazyMinHeap()
        heap.push("x", 1.0)
        heap.push("x", 9.0)
        heap.push("y", 5.0)
        assert heap.pop() == ("y", 5.0)
        assert heap.pop() == ("x", 9.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            LazyMinHeap().pop()

    def test_peek_skips_stale(self):
        heap = LazyMinHeap()
        heap.push("x", 1.0)
        heap.push("x", 4.0)
        assert heap.peek_priority() == 4.0
        assert len(heap) == 1

    def test_peek_empty_is_none(self):
        assert LazyMinHeap().peek_priority() is None

    def test_remove(self):
        heap = LazyMinHeap()
        heap.push("x", 1.0)
        heap.push("y", 2.0)
        heap.remove("x")
        assert "x" not in heap
        assert heap.pop() == ("y", 2.0)

    def test_contains_and_len(self):
        heap = LazyMinHeap()
        heap.push("x", 1.0)
        assert "x" in heap and "y" not in heap
        assert len(heap) == 1 and bool(heap)
        heap.pop()
        assert not heap

    def test_items_are_live_entries(self):
        heap = LazyMinHeap()
        heap.push("x", 1.0)
        heap.push("x", 2.0)
        heap.push("y", 3.0)
        assert dict(heap.items()) == {"x": 2.0, "y": 3.0}

    def test_get_priority(self):
        heap = LazyMinHeap()
        heap.push("x", 1.5)
        assert heap.get_priority("x") == 1.5
        assert heap.get_priority("z") is None

    def test_fifo_tiebreak_is_deterministic(self):
        heap = LazyMinHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"


class TestLazyMaxHeap:
    def test_pop_order(self):
        heap = LazyMaxHeap()
        heap.push("low", 1.0)
        heap.push("high", 9.0)
        heap.push("mid", 5.0)
        assert [heap.pop()[0] for _ in range(3)] == ["high", "mid", "low"]

    def test_priority_increase(self):
        heap = LazyMaxHeap()
        heap.push("x", 1.0)
        heap.push("y", 2.0)
        heap.push("x", 3.0)
        assert heap.pop() == ("x", 3.0)

    def test_peek(self):
        heap = LazyMaxHeap()
        heap.push("x", 1.0)
        heap.push("x", 0.5)
        assert heap.peek_priority() == 0.5
        assert heap.pop() == ("x", 0.5)
        assert heap.peek_priority() is None
