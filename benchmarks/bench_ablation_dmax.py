"""ABL2 bench: the dmax depth cutoff trade-off."""

from repro.experiments.ablations import run_ablation_dmax

from conftest import as_float, run_report


def test_dmax_ablation(benchmark):
    report = run_report(benchmark, run_ablation_dmax)
    assert [row[0] for row in report.rows] == ["4", "6", "8", "10"]
    recalls = [as_float(row[1]) for row in report.rows if row[1] != "-"]
    pops = [as_float(row[2]) for row in report.rows if row[2] != "-"]
    # Recall is non-decreasing in dmax; exploration cost non-decreasing.
    assert recalls == sorted(recalls)
    assert pops == sorted(pops)
    # The paper's default dmax=8 reaches (near-)full recall here; the
    # residue is relevant trees beyond the finite output window.
    assert recalls[-2] >= 0.85
