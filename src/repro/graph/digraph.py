"""Mutable weighted directed data graph (the BANKS data model, Section 2.1).

A :class:`DataGraph` is the *construction-time* representation: nodes are
entities (tuples, XML elements, web pages) and edges are forward
relationships (foreign keys, containment, hrefs).  Once built it is
frozen into an immutable, compact :class:`~repro.graph.searchgraph.SearchGraph`
that additionally materializes the derived backward edges and is what the
search algorithms run on.

Only small node identifiers, labels and table tags live in the graph;
attribute values stay in the relational store, mirroring the paper's
"the in-memory graph structure is really only an index" (Section 5.1).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

from repro.errors import GraphError, GraphFrozenError, UnknownNodeError
from repro.graph.weights import DEFAULT_FORWARD_WEIGHT

__all__ = ["DataGraph"]


class DataGraph:
    """Weighted directed graph under construction.

    Nodes are dense integer ids assigned by :meth:`add_node` in order.
    Edges are *forward* edges only; backward edges are derived at freeze
    time (see :mod:`repro.graph.weights`).

    Parallel edges are allowed (two relationships may link the same pair
    of tuples); self loops are rejected because answer trees never use
    them and they would corrupt the backward-weight indegree count.
    """

    def __init__(self) -> None:
        self._labels: list[str] = []
        self._tables: list[Optional[str]] = []
        self._refs: list[Optional[tuple[str, Hashable]]] = []
        self._edges: list[tuple[int, int, float]] = []
        self._indegree: list[int] = []
        self._outdegree: list[int] = []
        self._frozen = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        label: str = "",
        *,
        table: Optional[str] = None,
        ref: Optional[tuple[str, Hashable]] = None,
    ) -> int:
        """Add a node and return its integer id.

        Parameters
        ----------
        label:
            Human-readable display label (used by renderers only).
        table:
            Name of the relation this node's tuple belongs to, if any.
        ref:
            Back-reference ``(table_name, primary_key)`` into the
            relational store, if the node was built from a tuple.
        """
        self._check_mutable()
        node = len(self._labels)
        self._labels.append(label)
        self._tables.append(table)
        self._refs.append(ref)
        self._indegree.append(0)
        self._outdegree.append(0)
        return node

    def add_edge(self, u: int, v: int, weight: float = DEFAULT_FORWARD_WEIGHT) -> None:
        """Add a forward edge ``u -> v`` with the given positive weight."""
        self._check_mutable()
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self loops are not allowed (node {u})")
        if weight <= 0.0:
            raise GraphError(f"edge weight must be > 0, got {weight!r}")
        self._edges.append((u, v, float(weight)))
        self._outdegree[u] += 1
        self._indegree[v] += 1

    def add_nodes(self, labels: Iterable[str]) -> list[int]:
        """Add one node per label; convenience for tests and examples."""
        return [self.add_node(label) for label in labels]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of *forward* edges."""
        return len(self._edges)

    def label(self, node: int) -> str:
        self._check_node(node)
        return self._labels[node]

    def table(self, node: int) -> Optional[str]:
        self._check_node(node)
        return self._tables[node]

    def ref(self, node: int) -> Optional[tuple[str, Hashable]]:
        self._check_node(node)
        return self._refs[node]

    def indegree(self, node: int) -> int:
        """Forward indegree (used for backward-edge weights)."""
        self._check_node(node)
        return self._indegree[node]

    def outdegree(self, node: int) -> int:
        self._check_node(node)
        return self._outdegree[node]

    def forward_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, weight)`` for every forward edge, insertion order."""
        return iter(self._edges)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataGraph(nodes={self.num_nodes}, forward_edges={self.num_edges})"

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------
    def freeze(self, prestige=None):
        """Freeze into an immutable :class:`SearchGraph`.

        Parameters
        ----------
        prestige:
            Optional precomputed per-node prestige vector.  When omitted
            the search graph is built with uniform prestige and
            :func:`repro.graph.prestige.compute_prestige` can be applied
            afterwards via :meth:`SearchGraph.with_prestige`.
        """
        from repro.graph.searchgraph import SearchGraph  # local: avoid cycle

        self._frozen = True
        return SearchGraph._from_datagraph(self, prestige=prestige)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise GraphFrozenError("DataGraph has been frozen; build a new one to mutate")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._labels):
            raise UnknownNodeError(node)
