"""Property tests: lazy heaps behave like a sorted reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heaps import LazyMaxHeap, LazyMinHeap

# Operation stream: (item, priority) pushes interleaved with pops.
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(min_value=0, max_value=20),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        st.tuples(st.just("pop"), st.just(0), st.just(0.0)),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=100, deadline=None)
def test_min_heap_matches_reference_model(operations):
    heap = LazyMinHeap()
    model: dict[int, float] = {}
    for op, item, priority in operations:
        if op == "push":
            heap.push(item, priority)
            model[item] = priority
        else:
            if model:
                got_item, got_priority = heap.pop()
                best = min(model.values())
                assert got_priority == best
                assert model[got_item] == got_priority
                del model[got_item]
            else:
                try:
                    heap.pop()
                    assert False, "pop from empty must raise"
                except IndexError:
                    pass
    assert len(heap) == len(model)
    assert dict(heap.items()) == model


@given(ops)
@settings(max_examples=100, deadline=None)
def test_max_heap_matches_reference_model(operations):
    heap = LazyMaxHeap()
    model: dict[int, float] = {}
    for op, item, priority in operations:
        if op == "push":
            heap.push(item, priority)
            model[item] = priority
        else:
            if model:
                got_item, got_priority = heap.pop()
                assert got_priority == max(model.values())
                assert model[got_item] == got_priority
                del model[got_item]
    peek = heap.peek_priority()
    if model:
        assert peek == max(model.values())
    else:
        assert peek is None


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_full_drain_is_sorted(pushes):
    heap = LazyMinHeap()
    for item, priority in pushes:
        heap.push(item, priority)
    drained = []
    while heap:
        drained.append(heap.pop()[1])
    assert drained == sorted(drained)
