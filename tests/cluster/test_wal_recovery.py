"""Fault injection: a SIGKILL'd replica recovers via WAL replay.

The acceptance scenario for the durability subsystem: with ``wal_dir``
set, a worker killed ``-9`` after N committed mutations restarts and
**replays the supervisor-written mutation log to exactly dataset
version N** — zero drift in ``health()``, post-mutation answers served
— where the PR-4 behaviour was to warm from the snapshot and silently
miss every commit.
"""

import signal
import time

import pytest

from repro.cluster import ShardedQueryService
from repro.service.service import QueryRequest
from repro.service.wire import request_to_dict, response_from_dict

NUM_COMMITS = 5


def replica_answers(fleet, worker_id: int, query: str):
    """Ask one specific replica directly (bypassing routing)."""
    payload = fleet.pool.request(
        worker_id, request_to_dict(QueryRequest(dataset="toy", query=query))
    ).result(timeout=60)
    return response_from_dict(payload)


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def wal_fleet(tmp_path, toy_snapshot):
    """Two workers, the dataset on both replicas, durable WAL enabled."""
    service = ShardedQueryService(
        {"toy": toy_snapshot},
        num_workers=2,
        default_replicas=2,
        health_interval=0.1,
        wal_dir=tmp_path / "wal",
    )
    service.warmup()
    yield service
    service.close()


def commit_stream(fleet, count: int, prefix: str = "walpaper") -> dict:
    outcome = None
    for i in range(count):
        outcome = fleet.apply(
            "toy",
            [
                {
                    "op": "add_node",
                    "label": f"{prefix} {i}",
                    "table": "paper",
                    "text": f"{prefix}{i} recovery",
                },
                {"op": "add_edge", "u": -1, "v": 3},
            ],
        )
    return outcome


class TestKill9Recovery:
    def test_sigkilled_replica_replays_to_exact_version(self, wal_fleet):
        fleet = wal_fleet
        outcome = commit_stream(fleet, NUM_COMMITS)
        assert outcome["version"] == NUM_COMMITS
        assert outcome["wal_seq"] == NUM_COMMITS
        assert outcome["drift"] is False

        # SIGKILL one replica mid-stream: no drain, no goodbye.
        victim = 0
        process = fleet.pool.process(victim)
        assert process is not None and process.is_alive()
        process.kill()
        assert wait_until(
            lambda: fleet.pool.restarts().get(victim, 0) >= 1
            and fleet.pool.alive().get(victim, False)
        ), "supervisor never restarted the killed worker"

        # The replacement must replay the WAL to exactly version N —
        # not 0 (snapshot warm, the PR-4 lossy behaviour), not N-1.
        assert wait_until(
            lambda: fleet.dataset_versions(timeout=5.0).get("toy", {})
            == {"0": NUM_COMMITS, "1": NUM_COMMITS}
        ), fleet.dataset_versions(timeout=5.0)

        health = fleet.health()
        assert health["version_drift"] == []
        assert health["wal_seq"] == {"toy": NUM_COMMITS}
        assert health["versions"]["toy"] == {
            "0": NUM_COMMITS,
            "1": NUM_COMMITS,
        }

        # ...and serves post-mutation answers from the replayed state.
        response = replica_answers(fleet, victim, f"walpaper{NUM_COMMITS - 1}")
        assert response.ok, response.error
        assert response.result.answers

    def test_fleet_keeps_committing_after_recovery(self, wal_fleet):
        fleet = wal_fleet
        commit_stream(fleet, 2)
        process = fleet.pool.process(1)
        process.kill()
        assert wait_until(
            lambda: fleet.pool.restarts().get(1, 0) >= 1
            and fleet.pool.alive().get(1, False)
        )
        # Later commits land on both replicas (seq-tagged broadcasts;
        # a replayed record is acknowledged idempotently, never
        # double-applied).
        outcome = commit_stream(fleet, 2, prefix="afterkill")
        assert wait_until(
            lambda: fleet.dataset_versions(timeout=5.0).get("toy", {})
            == {"0": outcome["version"], "1": outcome["version"]}
        )
        assert outcome["drift"] is False or fleet.health()["version_drift"] == []
        for worker_id in (0, 1):
            response = replica_answers(fleet, worker_id, "afterkill1")
            assert response.ok, response.error
        metrics = fleet.metrics()
        assert metrics["cluster"]["wal_seq"] == {"toy": outcome["version"]}

    def test_reload_resets_wal_and_later_applies_still_land(
        self, wal_fleet, toy_snapshot
    ):
        """A fleet reload bumps replica versions past the log's lineage;
        the supervisor must reset the log to match or every subsequent
        apply would be skipped as already-replayed."""
        fleet = wal_fleet
        commit_stream(fleet, 2)
        outcome = fleet.reload("toy", toy_snapshot, force=True)
        assert fleet.wal_seqs()["toy"] == outcome["version"]
        after = fleet.apply(
            "toy", [{"op": "add_node", "label": "r", "text": "postreloadfleet"}]
        )
        assert after["applied"] == 1
        assert after["version"] == after["wal_seq"] == outcome["version"] + 1
        for worker_id in (0, 1):
            response = replica_answers(fleet, worker_id, "postreloadfleet")
            assert response.ok, response.error

    def test_noop_reload_keeps_the_log_replayable(
        self, wal_fleet, toy_snapshot
    ):
        """A digest-matched (no-op) reload changes nothing — wiping the
        log would throw away still-replayable history."""
        fleet = wal_fleet
        commit_stream(fleet, 2)
        seq_before = fleet.wal_seqs()["toy"]
        # Replicas have committed since warmup, so their digests cannot
        # match and the un-forced reload resets; first roll them back
        # to snapshot state, after which a reload no-ops everywhere.
        fleet.reload("toy", toy_snapshot, force=True)
        seq_reset = fleet.wal_seqs()["toy"]
        outcome = fleet.reload("toy", toy_snapshot)
        assert all(not flag for flag in outcome["reloaded"].values())
        assert fleet.wal_seqs()["toy"] == seq_reset
        assert seq_before == 2  # sanity: commits really happened

    def test_empty_batch_does_not_desync_wal_sequences(self, wal_fleet):
        """An empty batch is a version no-op on every replica, so it
        must not consume a WAL sequence number — that record would bump
        nothing and skew the idempotent-skip comparison forever."""
        fleet = wal_fleet
        commit_stream(fleet, 1)
        outcome = fleet.apply("toy", [])
        assert outcome["applied"] == 0
        assert fleet.wal_seqs()["toy"] == 1  # no record appended
        after = fleet.apply(
            "toy", [{"op": "add_node", "label": "e", "text": "postempty"}]
        )
        assert after["applied"] == 1
        assert after["version"] == after["wal_seq"] == 2
        for worker_id in (0, 1):
            assert replica_answers(fleet, worker_id, "postempty").ok

    def test_stale_wal_behind_reprovisioned_snapshot_is_reset(
        self, tmp_path, toy_engine_session
    ):
        """A snapshot re-provisioned past the log's lineage supersedes
        its records; keeping them would make every new append's seq
        trail replica versions (read as already-applied skips)."""
        from repro.service.snapshot import save_engine
        from repro.wal import MutationLog

        snap = save_engine(
            tmp_path / "toy.snap", toy_engine_session, version=7
        )
        wal_dir = tmp_path / "wal"
        with MutationLog(wal_dir / "toy.wal", start_seq=0) as stale:
            stale.append([{"op": "add_node", "label": "old"}])  # seq 1 << 7
        with ShardedQueryService(
            {"toy": snap}, num_workers=1, health_interval=0.2, wal_dir=wal_dir
        ) as fleet:
            fleet.warmup()
            assert fleet.wal_seqs() == {"toy": 7}
            outcome = fleet.apply(
                "toy", [{"op": "add_node", "label": "n", "text": "freshword"}]
            )
            assert outcome["applied"] == 1
            assert outcome["wal_seq"] == 8
            assert replica_answers(fleet, 0, "freshword").ok

    def test_sigkill_constant_is_what_kill_sends(self):
        """`process.kill()` is SIGKILL on POSIX — pin the assumption the
        fault injection relies on."""
        assert signal.SIGKILL.value == 9


@pytest.fixture()
def ops_fleet(tmp_path, toy_snapshot):
    """The kill-9 fleet with aggressive SLO windows so an availability
    burn-rate alert can fire and clear within a test's patience."""
    from repro.telemetry.slo import SloObjective

    # health_interval bounds crash *detection*: until the monitor's next
    # sweep the dead slot stays down, so 0.5s guarantees the 0.05s SLO
    # ticker snapshots the outage (alive 1/2) several times before the
    # respawn — the breach fires deterministically instead of racing.
    service = ShardedQueryService(
        {"toy": toy_snapshot},
        num_workers=2,
        default_replicas=2,
        health_interval=0.5,
        wal_dir=tmp_path / "wal",
        slo_objectives=[
            SloObjective(
                name="availability",
                kind="availability",
                budget=0.02,
                fast_window=0.3,
                slow_window=0.6,
                burn_threshold=1.5,
            )
        ],
        slo_interval=0.05,
    )
    service.warmup()
    yield service
    service.close()


class TestOperationalIntelligence:
    """The ISSUE-7 acceptance scenario: one kill -9, and the incident's
    whole arc — crash, restart, WAL replay, SLO breach and clearance —
    is in the supervisor's event log and on one dashboard page."""

    def test_kill9_incident_is_fully_recorded(self, ops_fleet):
        from repro.telemetry.dashboard import render_dashboard

        fleet = ops_fleet
        commit_stream(fleet, NUM_COMMITS)
        time.sleep(0.7)  # let any startup SLO wobble settle and clear
        pre_kill_seq = fleet.events()["last_seq"]

        process = fleet.pool.process(0)
        process.kill()
        assert wait_until(
            lambda: fleet.pool.restarts().get(0, 0) >= 1
            and fleet.pool.alive().get(0, False)
        ), "supervisor never restarted the killed worker"
        assert wait_until(
            lambda: fleet.dataset_versions(timeout=5.0).get("toy", {})
            == {"0": NUM_COMMITS, "1": NUM_COMMITS}
        )

        def kinds():
            return {e["kind"] for e in fleet.events()["events"]}

        assert wait_until(
            lambda: {"worker_crash", "worker_restart", "wal_replay"}
            <= kinds()
        ), kinds()

        events = fleet.events()["events"]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs), "merged log lost seq order"
        by_kind: dict[str, list] = {}
        for event in events:
            by_kind.setdefault(event["kind"], []).append(event)

        crash = by_kind["worker_crash"][0]
        assert crash["severity"] == "error"
        assert crash["extra"]["worker_id"] == 0
        assert crash["source"] == "pool"
        restart = by_kind["worker_restart"][0]
        assert restart["seq"] > crash["seq"]
        assert restart["extra"]["restarts"] >= 1

        # The respawned replica's replay, pulled from the worker's own
        # log and re-sequenced into the supervisor's: right dataset,
        # right seq, attributed to the worker that replayed.
        replays = [
            e for e in by_kind["wal_replay"] if e["seq"] > pre_kill_seq
        ]
        assert replays, by_kind["wal_replay"]
        replay = replays[-1]
        assert replay["dataset"] == "toy"
        assert replay["extra"]["wal_seq"] == NUM_COMMITS
        assert replay["extra"]["replayed"] == NUM_COMMITS
        assert replay["source"].startswith("worker-")

        # The availability burn-rate alert fired during the outage and
        # cleared once the replacement worker reported alive.  (The
        # breach can be sequenced just before the crash event — the SLO
        # ticker and the crash handler race within the same tick — so
        # anchor on the pre-kill head, not the crash's seq.)
        def breach_then_clear():
            current = fleet.events(pull=False)["events"]
            breaches = [
                e
                for e in current
                if e["kind"] == "slo_breach" and e["seq"] > pre_kill_seq
            ]
            if not breaches:
                return False
            return any(
                e["kind"] == "slo_clear" and e["seq"] > breaches[0]["seq"]
                for e in current
            )

        assert wait_until(breach_then_clear), [
            (e["kind"], e["seq"]) for e in fleet.events(pull=False)["events"]
        ]
        breach = next(
            e
            for e in fleet.events(pull=False)["events"]
            if e["kind"] == "slo_breach" and e["seq"] > pre_kill_seq
        )
        assert breach["extra"]["objective"] == "availability"

        # ...and the whole incident is on one dashboard page.
        html = render_dashboard(fleet.dashboard_data())
        for needle in (
            "worker_crash",
            "worker_restart",
            "wal_replay",
            "slo_breach",
            "slo_clear",
            "availability",
            "toy",
        ):
            assert needle in html, f"dashboard missing {needle!r}"


class TestWithoutWal:
    def test_no_wal_dir_keeps_in_memory_semantics(self, tmp_path, toy_snapshot):
        """Without wal_dir nothing is written and apply reports no
        wal_seq — the PR-4 behaviour is untouched."""
        with ShardedQueryService(
            {"toy": toy_snapshot}, num_workers=1, health_interval=0.2
        ) as fleet:
            fleet.warmup()
            outcome = fleet.apply(
                "toy", [{"op": "add_node", "label": "x", "text": "nowalword"}]
            )
            assert "wal_seq" not in outcome
            assert fleet.wal_seqs() == {}
            assert "wal_seq" not in fleet.health()
