"""Benchmark harness glue.

Each benchmark runs one experiment from :mod:`repro.experiments` once
(``pedantic`` mode — these are macro-benchmarks whose interesting output
is the printed table, not a statistically tight timing), prints the
regenerated table, and applies *loose* shape assertions so a silently
broken reproduction fails the bench run.

Scale every dataset up or down with the ``REPRO_SCALE`` env var.
"""

from __future__ import annotations

import json
import os


def emit_json(row: dict) -> None:
    """Print one JSON result row; also append it to ``BENCH_JSON_OUT``
    when set (how CI collects rows as workflow artifacts)."""
    line = json.dumps(row)
    print(line)
    path = os.environ.get("BENCH_JSON_OUT")
    if path:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")


def run_report(benchmark, fn, **kwargs):
    """Run ``fn`` under pytest-benchmark and print its Report."""
    report = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(report.render())
    return report


def cell(report, row: int, col: int) -> str:
    return report.rows[row][col]


def as_float(text: str) -> float:
    return float(text.replace(",", ""))
